// A deliberately pathological input for the robustness machinery: three
// goroutines in a circular wait (each sends on its own channel, then
// receives from the next). The interlocking order constraints force the
// blocking queries into real DPLL search, so tight step budgets
// (`--solver-steps`) exhaust the degradation ladder and wall-clock bounds
// (`--timeout`, `--channel-timeout`) are actually exercised. CI runs
// `gcatch check` over this file under `--timeout 1` to prove a bounded
// run always terminates with honest output.
package main

func main() {
	ch0 := make(chan int)
	ch1 := make(chan int)
	ch2 := make(chan int)
	go func() {
		ch0 <- 1
		<-ch1
	}()
	go func() {
		ch1 <- 1
		<-ch2
	}()
	go func() {
		ch2 <- 1
		<-ch0
	}()
	<-ch0
}
