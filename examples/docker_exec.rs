//! Figure 1 of the paper: the previously unknown Docker bug in `Exec()` —
//! the child goroutine's send on `outDone` leaks when the context is
//! cancelled first — and GFix's one-line Strategy-I patch.
//!
//! Run with: `cargo run --example docker_exec`

use gcatch_suite::{gcatch, gfix, ir, sim};

const DOCKER_EXEC: &str = r#"
package docker

func StdCopy() error {
    return nil
}

func Exec(ctx context.Context) error {
    outDone := make(chan error)
    go func() {
        err := StdCopy()
        outDone <- err
    }()
    select {
    case err := <-outDone:
        if err != nil {
            return err
        }
    case <-ctx.Done():
        return ctx.Err()
    }
    return nil
}

func main() {
    ctx, cancel := context.WithCancel(context.Background())
    cancel()
    Exec(ctx)
}
"#;

fn main() {
    let pipeline = gfix::Pipeline::from_source(DOCKER_EXEC).expect("Figure 1 parses");

    // Static detection: GCatch reports the child's send as the root cause,
    // with the solver's witness interleaving (the paper's "3 → ... → 14 →
    // 6 → 7" order).
    let results = pipeline.run(&gcatch::DetectorConfig::default());
    let bug = results
        .bugs
        .iter()
        .find(|b| b.primitive_name == "outDone")
        .expect("the Figure 1 bug is detected");
    println!("=== GCatch report ===\n{bug}");

    // Dynamic confirmation: explore schedules until the leak shows up.
    let module = ir::lower_source(DOCKER_EXEC).unwrap();
    let simulator = sim::Simulator::new(&module);
    let leaky = simulator
        .explore(&sim::Config::default(), 0..60)
        .into_iter()
        .find(|r| r.is_blocking());
    match leaky {
        Some(run) => {
            println!("=== leak witnessed (seed search) ===");
            for b in &run.blocked {
                println!(
                    "goroutine {} blocked in {} at {} ({:?})",
                    b.id, b.func, b.span, b.reason
                );
            }
        }
        None => println!("(no leak within 60 seeds — rerun with more)"),
    }

    // The fix: exactly the paper's patch — buffer size 0 → 1.
    let patch = results.patches.first().expect("Strategy I applies");
    assert_eq!(patch.strategy, gfix::Strategy::IncreaseBuffer);
    println!("\n=== GFix patch ({}) ===", patch.strategy);
    println!("{}", patch.description);
    assert!(patch.after.contains("make(chan error, 1)"));

    let v = gfix::validate(&patch.before, &patch.after, "main", 60);
    println!("\n=== validation ===");
    println!(
        "bug realized: {} | patch never blocks: {} | semantics preserved: {}",
        v.bug_realized, v.patch_blocks_never, v.semantics_preserved
    );
    assert!(v.is_correct());
    println!("\nDocker applied this exact patch upstream (paper, §1).");
}
