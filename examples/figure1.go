// Figure 1 of the GCatch/GFix paper (ASPLOS '21): the Docker#24991
// blocking bug. The child goroutine sends on the unbuffered channel
// `outDone`; if the parent takes the ctx.Done() select arm first, the
// child blocks forever and leaks.
func Exec(ctx context.Context) error {
	outDone := make(chan error)
	go func() {
		outDone <- nil
	}()
	select {
	case err := <-outDone:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	Exec(ctx)
}
