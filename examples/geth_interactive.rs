//! Figure 4 of the paper: the go-ethereum multiple-operations bug — the
//! producer loops sending on `scheduler` while the consumer may return via
//! `abort`, leaving the producer blocked forever — and GFix's Strategy-III
//! stop-channel patch.
//!
//! Run with: `cargo run --example geth_interactive`

use gcatch_suite::{gcatch, gfix};

const GETH_INTERACTIVE: &str = r#"
package geth

func Input() (string, error) {
    return "line", nil
}

func Interactive(abort chan struct{}) {
    scheduler := make(chan string)
    go func() {
        for {
            line, err := Input()
            if err != nil {
                close(scheduler)
                return
            }
            scheduler <- line
        }
    }()
    for {
        select {
        case <-abort:
            return
        case _, ok := <-scheduler:
            if !ok {
                return
            }
        }
    }
}

func main() {
    abort := make(chan struct{}, 1)
    abort <- struct{}{}
    Interactive(abort)
}
"#;

fn main() {
    let pipeline = gfix::Pipeline::from_source(GETH_INTERACTIVE).expect("Figure 4 parses");
    let results = pipeline.run(&gcatch::DetectorConfig::default());

    let bug = results
        .bugs
        .iter()
        .find(|b| b.primitive_name == "scheduler")
        .expect("the Figure 4 bug is detected");
    println!("=== GCatch report ===\n{bug}");

    // A buffer bump cannot fix this (the send is in a loop); the dispatcher
    // falls through to Strategy III.
    let patch = results.patches.first().expect("Strategy III applies");
    assert_eq!(patch.strategy, gfix::Strategy::AddStopChannel);
    println!("=== GFix patch ({}) ===", patch.strategy);
    println!("{}\n", patch.description);
    println!("--- patched Interactive ---\n{}", patch.after);

    // The paper's patch shape: a stop channel closed by defer, and the
    // blocking send wrapped in a select.
    assert!(patch.after.contains("stop := make(chan struct{})"));
    assert!(patch.after.contains("defer close(stop)"));
    assert!(patch.after.contains("case <-stop:"));

    let v = gfix::validate(&patch.before, &patch.after, "main", 40);
    assert!(v.bug_realized, "abort-first schedules leak the producer");
    assert!(v.patch_blocks_never);
    println!(
        "validation: bug realized, patch never blocks ({} changed lines; paper avg 10.3 for S-III)",
        patch.changed_lines
    );
}
