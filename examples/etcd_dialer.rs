//! Figure 3 of the paper: the etcd missing-interaction bug — `t.Fatalf`
//! skips the final send, leaving `Start` blocked on `<-stop` forever — and
//! GFix's Strategy-II `defer` patch.
//!
//! Run with: `cargo run --example etcd_dialer`

use gcatch_suite::{gcatch, gfix};

const ETCD_DIALER: &str = r#"
package etcd

func Start(stop chan struct{}) {
    <-stop
}

func Dial() (int, error) {
    return 0, errors.New("connection refused")
}

func TestRWDialer(t *testing.T) {
    stop := make(chan struct{})
    go Start(stop)
    conn, err := Dial()
    _ = conn
    if err != nil {
        t.Fatalf("dial failed")
    }
    stop <- struct{}{}
}
"#;

fn main() {
    let pipeline = gfix::Pipeline::from_source(ETCD_DIALER).expect("Figure 3 parses");
    let results = pipeline.run(&gcatch::DetectorConfig::default());

    let bug = results
        .bugs
        .iter()
        .find(|b| b.primitive_name == "stop")
        .expect("the Figure 3 bug is detected");
    println!("=== GCatch report ===\n{bug}");

    let patch = results.patches.first().expect("Strategy II applies");
    assert_eq!(patch.strategy, gfix::Strategy::DeferOperation);
    println!("=== GFix patch ({}) ===", patch.strategy);
    println!("{}\n", patch.description);
    println!("--- patched test ---\n{}", patch.after);
    println!(
        "changed lines: {} (paper: Strategy-II patches change 4 lines)",
        patch.changed_lines
    );

    // The paper's patch defers the send so every exit path (including the
    // Fatal) performs it.
    assert!(patch.after.contains("defer func() {"));

    let v = gfix::validate(&patch.before, &patch.after, "TestRWDialer", 40);
    assert!(v.bug_realized, "Fatal skips the send and leaks Start");
    assert!(v.is_correct());
    println!("validation: bug realized, patch correct, semantics preserved");
}
