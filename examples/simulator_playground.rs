//! A tour of the runtime simulator: outcomes, blocked-goroutine reports,
//! schedule exploration, and sleep injection — the substrate behind the
//! paper's §5.3 patch validation.
//!
//! Run with: `cargo run --example simulator_playground`

use gcatch_suite::ir;
use gcatch_suite::sim::{Config, Outcome, Simulator};

fn show(title: &str, src: &str, seeds: u64) {
    println!("== {title} ==");
    let module = ir::lower_source(src).expect("program lowers");
    let sim = Simulator::new(&module);
    let mut counts = std::collections::BTreeMap::new();
    for report in sim.explore(&Config::default(), 0..seeds) {
        let key = match &report.outcome {
            Outcome::Clean => "clean",
            Outcome::Leak => "goroutine leak",
            Outcome::GlobalDeadlock => "global deadlock",
            Outcome::Panic(_) => "panic",
            Outcome::StepLimit => "step limit",
        };
        *counts.entry(key).or_insert(0usize) += 1;
    }
    for (outcome, n) in &counts {
        println!("  {outcome}: {n}/{seeds} schedules");
    }
    // Show one blocked-goroutine report if any schedule blocked.
    if let Some(blocked_run) = sim
        .explore(&Config::default(), 0..seeds)
        .iter()
        .find(|r| r.is_blocking())
    {
        for b in &blocked_run.blocked {
            println!(
                "  e.g. goroutine {} blocked in `{}` at {} ({:?})",
                b.id, b.func, b.span, b.reason
            );
        }
    }
    println!();
}

fn main() {
    show(
        "rendezvous (always clean)",
        "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n fmt.Println(<-ch)\n}",
        20,
    );

    show(
        "racy select (sometimes leaks — Figure 1's shape)",
        r#"
func main() {
    done := make(chan int)
    quit := make(chan int, 1)
    quit <- 1
    go func() {
        done <- 1
    }()
    select {
    case <-done:
    case <-quit:
    }
}
"#,
        40,
    );

    show(
        "self deadlock (always global deadlock)",
        "func main() {\n ch := make(chan int)\n ch <- 1\n}",
        5,
    );

    show(
        "send on closed channel (always panic)",
        "func main() {\n ch := make(chan int, 1)\n close(ch)\n ch <- 1\n}",
        5,
    );

    // Deterministic replay: the same seed reproduces the same run exactly.
    let module = ir::lower_source(
        "func main() {\n ch := make(chan int, 2)\n go func() {\n  ch <- 1\n  ch <- 2\n }()\n fmt.Println(<-ch + <-ch)\n}",
    )
    .unwrap();
    let sim = Simulator::new(&module);
    let a = sim.run(&Config {
        seed: 9,
        ..Config::default()
    });
    let b = sim.run(&Config {
        seed: 9,
        ..Config::default()
    });
    assert_eq!(a.steps, b.steps);
    println!(
        "deterministic replay: seed 9 → {} steps, output {:?} (twice)",
        a.steps, a.output
    );

    // Sleep injection perturbs interleavings without changing semantics.
    let slept = sim.run(&Config {
        seed: 9,
        sleep_injection: true,
        ..Config::default()
    });
    println!(
        "sleep injection: {} steps (schedule changed), output {:?} (semantics kept)",
        slept.steps, slept.output
    );
}
