//! Quickstart: detect and fix a blocking misuse-of-channel bug in five
//! steps — parse, detect, fix, validate, diff.
//!
//! Run with: `cargo run --example quickstart`

use gcatch_suite::{gcatch, gfix};

const BUGGY: &str = r#"
package main

func fetch() error {
    return nil
}

func Query() {
    result := make(chan error)
    timeout := make(chan struct{}, 1)
    timeout <- struct{}{}
    go func() {
        result <- fetch()
    }()
    select {
    case err := <-result:
        _ = err
    case <-timeout:
        return
    }
}

func main() {
    Query()
}
"#;

fn main() {
    // 1. Parse and lower.
    let pipeline = gfix::Pipeline::from_source(BUGGY).expect("valid GoLite");

    // 2. Detect: GCatch's BMOC detector plus the five traditional checkers.
    let results = pipeline.run(&gcatch::DetectorConfig::default());
    println!("=== bugs ({}) ===", results.bugs.len());
    for bug in &results.bugs {
        println!("{bug}");
    }

    // 3. Fix: the dispatcher picked the simplest strategy for each bug.
    let patch = results.patches.first().expect("this bug is fixable");
    println!("=== patch ({} / {}) ===", patch.strategy, patch.description);
    println!("changed lines: {}", patch.changed_lines);

    // 4. Validate dynamically: the original must block under some schedule,
    //    the patched program under none.
    let v = gfix::validate(&patch.before, &patch.after, "main", 40);
    println!("=== validation ===");
    println!("bug realized dynamically:  {}", v.bug_realized);
    println!("patch never blocks:        {}", v.patch_blocks_never);
    println!("semantics preserved:       {}", v.semantics_preserved);
    println!("instruction overhead:      {:+.2}%", v.overhead() * 100.0);

    // 5. Show the line-level diff.
    println!("=== patched program ===");
    for (before, after) in patch.before.lines().zip(patch.after.lines()) {
        if before != after {
            println!("- {before}");
            println!("+ {after}");
        }
    }
}
