// Batch-corpus module: a goroutine sends on a channel nobody ever
// receives from — it leaks unconditionally.
package main

func main() {
	ch := make(chan int)
	go func() {
		ch <- 7
	}()
}
