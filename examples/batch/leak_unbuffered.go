// Batch-corpus module: the classic select-based leak (paper Figure 1
// shape). The child sends on an unbuffered channel; if the parent takes
// the done arm first, the child blocks forever.
package main

func work(done chan int) int {
	out := make(chan int)
	go func() {
		out <- 42
	}()
	select {
	case v := <-out:
		return v
	case <-done:
		return 0
	}
}

func main() {
	done := make(chan int, 1)
	done <- 1
	work(done)
}
