// Batch-corpus module: a clean unbuffered rendezvous — the send always
// pairs with the receive.
package main

func main() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	<-ch
}
