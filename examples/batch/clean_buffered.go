// Batch-corpus module: a clean producer/consumer over a buffered
// channel — no bugs to report.
package main

func main() {
	ch := make(chan int, 2)
	ch <- 1
	ch <- 2
	<-ch
	<-ch
}
