// Batch-corpus module: two sends race for one receive on an unbuffered
// channel; the loser blocks forever.
package main

func main() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	go func() {
		ch <- 2
	}()
	<-ch
}
