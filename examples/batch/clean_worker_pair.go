// Batch-corpus module: two buffered hand-offs chained through a helper —
// clean under every schedule.
package main

func relay(in chan int, out chan int) {
	out <- <-in
}

func main() {
	a := make(chan int, 1)
	b := make(chan int, 1)
	a <- 5
	go relay(a, b)
	<-b
}
