//! `gcatch` — command-line front end for the GCatch/GFix reproduction.
//!
//! ```console
//! $ gcatch check file.go              # detect bugs (BMOC + traditional)
//! $ gcatch check --json --stats file.go
//! $ gcatch check --only bmoc --jobs 4 file.go
//! $ gcatch fix file.go                # detect, patch, print the diffs
//! $ gcatch fix --write file.go        # apply patches in place, to fixpoint
//! $ gcatch simulate file.go --seeds 50 --entry main
//! $ gcatch extended file.go           # §6 send-on-closed panic detector
//! ```

use gcatch_suite::gcatch::events::Field;
use gcatch_suite::gcatch::{
    derive_run_id, faults, obs_zero_time, read_manifest, render_explain, render_json_with,
    render_prometheus, render_stats_json, run_worker, serve_socket, serve_stdio, write_manifest,
    AliasMode, BatchConfig, BatchEngine, BatchJob, Budget, Coordinator, Counter, DetectorConfig,
    Event, EventBus, EventKind, FaultPlan, GCatch, HedgePolicy, Incident, IncidentKind, JobCtx,
    JobRecord, Journal, JournalCodec, Metric, ObsScope, Selection, ServeConfig, SolverStrategy,
    SweepConfig, SweepLayout, Telemetry, TraceLevel, Tracer, WorkKind, WorkerConfig,
};
use gcatch_suite::{gfix, sim};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "check" => cmd_check(rest),
        "fix" => cmd_fix(rest),
        "simulate" => cmd_simulate(rest),
        "extended" => cmd_extended(rest),
        "batch" => cmd_batch(rest),
        "sweep" => cmd_sweep(rest),
        "worker" => cmd_worker(rest),
        "serve" => cmd_serve(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("gcatch: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: gcatch <command> [options] <file.go>

commands:
  check [--json] [--stats] [--explain] [--trace FILE] [--only C] [--skip C] [--jobs N]
        [--timeout SECS] [--channel-timeout MS] [--solver-steps N] [--solver-mode M]
        [--alias-mode M] [--no-share-encodings] [--step-pool N]
        [--metrics-out FILE] [--events-out FILE] [--strict]
                        detect concurrency bugs via the checker registry;
                        --only/--skip select checkers by name (repeatable,
                        comma-separated lists accepted), --jobs shards the
                        BMOC detector over N worker threads (0 = all cores),
                        --json emits structured diagnostics, --stats adds
                        pipeline counters, stage timings, and percentiles,
                        --explain adds per-bug provenance (channel, paths,
                        solver verdict), --trace writes a Chrome trace-event
                        JSON of the analysis spans to FILE
  fix [--write] [--explain] [--trace FILE]
                        detect and patch, re-running detection on each
                        patched source until a fixpoint; --write applies
                        the final result in place (atomically, via a
                        temp file + rename)
  simulate [--seeds N] [--entry F]
                        explore schedules and report outcomes
  batch [--jobs N] [--max-attempts N] [--backoff-ms MS] [--hedge-ms MS] [--no-hedge]
        [--inject-faults RATE] [--fault-seed N] [--journal FILE | --resume FILE]
        [--report FILE] [--json] [--stats] [--strict] [--explain] [--trace FILE]
        [--metrics-out FILE] [--events-out FILE] [--progress]
        [--timeout SECS] [--channel-timeout MS] [--solver-steps N] [--solver-mode M]
        [--alias-mode M] [--no-share-encodings] [--step-pool N]
        <file.go|dir>...
                        check many modules under a supervised worker pool:
                        failed modules retry with exponential backoff,
                        persistent failures are quarantined after
                        --max-attempts, and stragglers past the p99 job
                        time are hedged with a second dispatch (first
                        result wins). --journal appends each decided job
                        to a crash-safe JSONL checkpoint; --resume JOURNAL
                        skips the jobs it already decided. --inject-faults
                        arms the deterministic fault layer (see below).
                        Directories expand to their *.go files
                        (non-recursive, sorted)
  sweep [--workers N] [--dir DIR] [--lease-ms MS] [--max-releases N]
        [--max-attempts N] [--backoff-ms MS]
        [--inject-faults RATE] [--fault-seed N]
        [--report FILE] [--json] [--stats] [--strict] [--progress]
        [--metrics-out FILE] [--events-out FILE]
        [--timeout SECS] [--channel-timeout MS] [--solver-steps N] [--solver-mode M]
        [--alias-mode M] [--no-share-encodings] [--step-pool N]
        <file.go|dir>...
                        check many modules across a fleet of --workers N
                        worker *processes* coordinated through an on-disk
                        lease queue under --dir (a fresh temp directory by
                        default). Each worker claims one job at a time via
                        an O_EXCL lease file, heartbeats while it works,
                        and journals every decision to its own crash-safe
                        JSONL journal; the coordinator re-leases jobs from
                        workers that die (even SIGKILLed) or miss the
                        heartbeat deadline, quarantines jobs released more
                        than --max-releases times, and finally merges all
                        journals into one report that is byte-identical to
                        a single-process `gcatch batch --no-hedge` run over
                        the same modules. A job decided by two workers
                        keeps exactly one record (first durable decision
                        wins) and surfaces a duplicate-decision warning on
                        stderr without changing the report bytes
  worker --dir DIR --id W [--lease-ms MS] [exec flags as for sweep]
                        internal: one sweep worker process (spawned by
                        `gcatch sweep`; runnable by hand for debugging)
  serve (--socket PATH | --stdio) [--workers N] [--max-queue N]
        [--request-timeout-ms MS] [--cache-dir DIR] [--max-cache N]
        [--inject-faults RATE] [--fault-seed N]
        [--metrics-out FILE] [--events-out FILE]
        [--channel-timeout MS] [--solver-steps N] [--solver-mode M]
        [--alias-mode M] [--no-share-encodings] [--step-pool N]
                        crash-only analysis daemon speaking a JSON-lines
                        protocol (one request object per line, each
                        echoing its client-supplied id): ops `check`,
                        `explain`, and `fix-dry-run` take a `module` path
                        and run on a bounded worker pool; `status` and
                        `shutdown` answer inline. Every request runs
                        isolated under its own deadline — panics and
                        expired deadlines come back as structured
                        incident responses, never a dead connection.
                        Past --max-queue outstanding requests admission
                        control sheds deterministically with an
                        `overloaded` response and a retry-after hint.
                        `check` responses are cached by content hash
                        under --cache-dir through an fsync'd journal
                        index that drops torn entries on startup, so a
                        kill -9 mid-request plus restart replays
                        responses byte-identical to a cold single-shot
                        `gcatch check --json`. SIGTERM/SIGINT drain
                        gracefully (finish in flight, flush, exit 0)
  extended [--json] [--stats] [--explain] [--trace FILE] [--jobs N]
        [--timeout SECS] [--channel-timeout MS] [--solver-steps N] [--solver-mode M]
        [--alias-mode M] [--no-share-encodings] [--step-pool N]
        [--metrics-out FILE] [--events-out FILE] [--strict]
                        run the send-on-closed (panic) detector (paper §6)

budgets (check / extended):
  --timeout SECS        wall-clock deadline for the whole run
  --channel-timeout MS  wall-clock deadline per analyzed channel
  --solver-steps N      solver step limit per query (default 400000)
  --solver-mode M       constraint-solver strategy: `incremental` (default;
                        one persistent solver per channel, combos solved as
                        assumption queries against a shared encoding),
                        `fresh` (one solver per query), or `rescan` (fresh
                        solvers with the legacy clone-and-rescan engine);
                        all three produce identical reports
  --alias-mode M        alias-analysis scheduling: `demand` (default;
                        points-to components solved lazily, only for the
                        code slices the checkers actually query) or
                        `eager` (whole module up front); reports are
                        byte-identical either way
  --no-share-encodings  disable the cross-channel verdict cache that lets
                        structurally identical channels share solver work
                        (sharing never changes the reports)
  --step-pool N         global solver-step pool shared by all queries
                        a channel that exhausts its budget is retried at
                        degraded limits (reduced unroll, then a reduced
                        Pset); if the last rung still exhausts it, the run
                        keeps going and reports an incident for the channel
  --strict              treat any incident (panic or exhausted budget) as
                        fatal: exit 2 instead of 0/1

observability (check / extended / batch):
  --metrics-out FILE    write every pipeline counter, stage timing, and
                        histogram as Prometheus text exposition under the
                        stable gcatch_* name schema (written atomically at
                        the end of the run; batch also republishes the
                        file every ~200 ms while running)
  --events-out FILE     write the structured run event stream as JSONL;
                        every event carries the run id plus the job,
                        attempt, and channel that produced it, so one
                        grep reconstructs any job's full lifecycle
  --progress            (batch) render a live progress line on stderr:
                        done/retried/hedged/quarantined counts, p50/p99
                        job wall, and an ETA; auto-disabled when stderr
                        is not a tty or under --json
  --explain             (batch) print each quarantined job's flight
                        recorder: the last lifecycle lines (attempts,
                        faults, retries, incidents) before the job was
                        given up on

fault injection (batch):
  --inject-faults RATE  inject deterministic faults (panics, delays,
                        solver-step exhaustion) at named sites with the
                        given probability; decisions are a pure function
                        of (--fault-seed, site, job, attempt), so a fixed
                        seed reproduces the exact failure schedule
  --fault-seed N        seed for the fault schedule (default 0)

environment:
  GCATCH_TRACE_LEVEL    overrides the tracing level (off, spans, full);
                        without it, --trace records at full detail
  GCATCH_FAULT_RATE     arm fault injection without CLI flags (batch);
                        GCATCH_FAULT_SEED, GCATCH_FAULT_SITES, and
                        GCATCH_FAULT_DELAY_MS refine the plan
  GCATCH_OBS_ZERO_TIME  zero every --metrics-out/--events-out timestamp
                        and derive the run id deterministically (golden
                        files, byte-exact diffs)

fault injection (sweep adds three process-level sites):
  sweep.worker          a worker self-terminates right after claiming a
                        job (exit code 17); the coordinator re-leases
  sweep.heartbeat       a worker never writes heartbeats; the coordinator
                        kills and replaces it after the staleness deadline
  sweep.lease           a worker stops renewing one claim's lease; the
                        lease expires mid-job and the job is re-leased
                        while the original owner keeps working (the
                        duplicate-decision path)

exit status: 0 = clean, 1 = bugs found, 2 = usage or input error;
with --strict, a run that recorded incidents (or, for batch/sweep,
quarantined any job) also exits 2";

/// A parsed `--flag [value]` pair.
type Flag = (String, Option<String>);

/// `(name, takes_value)` — the flags a command accepts.
type FlagSpec = (&'static str, bool);

// Every command's accepted-flag table is composed from these shared
// groups by [`spec`], so each flag's name and arity is declared exactly
// once — a new flag (say, serve's `--socket`) registers in one place and
// cannot drift between the commands that accept it.

/// Output shaping shared by check/extended/batch/sweep.
const REPORT_FLAGS: &[FlagSpec] = &[("json", false), ("stats", false), ("strict", false)];

/// The observability sinks (`--metrics-out` / `--events-out`).
const OBS_FLAGS: &[FlagSpec] = &[("metrics-out", true), ("events-out", true)];

/// The whole-run wall-clock budget.
const TIMEOUT_FLAG: &[FlagSpec] = &[("timeout", true)];

/// Per-analysis knobs that shape every report byte (alias scheduling,
/// solver strategy and budgets, encoding sharing).
const ANALYSIS_FLAGS: &[FlagSpec] = &[
    ("channel-timeout", true),
    ("solver-steps", true),
    ("solver-mode", true),
    ("alias-mode", true),
    ("no-share-encodings", false),
    ("step-pool", true),
];

/// Retry policy shared by batch/sweep/worker.
const RETRY_FLAGS: &[FlagSpec] = &[("max-attempts", true), ("backoff-ms", true)];

/// The deterministic fault-injection plan.
const FAULT_FLAGS: &[FlagSpec] = &[("inject-faults", true), ("fault-seed", true)];

/// Composes a command's flag table from shared groups plus
/// command-specific extras.
fn spec(groups: &[&[FlagSpec]], extra: &[FlagSpec]) -> Vec<FlagSpec> {
    let mut out: Vec<FlagSpec> = Vec::new();
    for group in groups {
        out.extend_from_slice(group);
    }
    out.extend_from_slice(extra);
    out
}

/// Splits flags from the single positional file argument, rejecting any
/// flag not in `spec` (exit code 2 at the caller).
fn parse_common(rest: &[String], spec: &[FlagSpec]) -> Result<(String, Vec<Flag>), String> {
    let mut file = None;
    let mut flags = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let Some(&(_, takes_value)) = spec.iter().find(|(n, _)| *n == name) else {
                let known: Vec<String> = spec.iter().map(|(n, _)| format!("--{n}")).collect();
                return Err(if known.is_empty() {
                    format!("unknown flag `--{name}` (this command takes no flags)")
                } else {
                    format!("unknown flag `--{name}` (known: {})", known.join(", "))
                });
            };
            let value = if takes_value {
                Some(
                    it.next()
                        .ok_or_else(|| format!("--{name} needs a value"))?
                        .clone(),
                )
            } else {
                None
            };
            flags.push((name.to_string(), value));
        } else if file.is_none() {
            file = Some(arg.clone());
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    let file = file.ok_or("missing input file")?;
    Ok((file, flags))
}

fn has_flag(flags: &[Flag], name: &str) -> bool {
    flags.iter().any(|(n, _)| n == name)
}

/// The value of a single-occurrence flag, if present.
fn flag_value<'a>(flags: &'a [Flag], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, v)| v.as_deref())
}

/// Resolves the tracing level: `GCATCH_TRACE_LEVEL` overrides everything;
/// otherwise `--trace FILE` implies full detail and its absence disables
/// tracing entirely (zero overhead on the hot path).
fn trace_level(trace_path: Option<&str>) -> Result<TraceLevel, String> {
    match std::env::var("GCATCH_TRACE_LEVEL") {
        Ok(v) => TraceLevel::parse(&v).map_err(|e| format!("bad GCATCH_TRACE_LEVEL: {e}")),
        Err(_) => Ok(if trace_path.is_some() {
            TraceLevel::Full
        } else {
            TraceLevel::Off
        }),
    }
}

/// Writes a trace snapshot as Chrome trace-event JSON.
fn write_trace(path: &str, snapshot: &gcatch_suite::gcatch::TraceSnapshot) -> Result<(), String> {
    std::fs::write(path, snapshot.render_chrome())
        .map_err(|e| format!("cannot write trace file {path}: {e}"))
}

/// A run-level (`run_start`/`run_end`) event: group 0, no job/channel
/// correlation, so canonical ordering brackets the stream with it.
fn run_event(kind: EventKind, fields: Vec<(&'static str, Field)>) -> Event {
    Event {
        kind,
        group: 0,
        job: None,
        attempt: None,
        channel: None,
        fields,
    }
}

/// All values of a repeatable flag, with comma-separated lists split up.
fn flag_values(flags: &[Flag], name: &str) -> Vec<String> {
    flags
        .iter()
        .filter(|(n, _)| n == name)
        .filter_map(|(_, v)| v.as_deref())
        .flat_map(|v| v.split(','))
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect()
}

fn parse_jobs(flags: &[Flag]) -> Result<usize, String> {
    flags
        .iter()
        .find(|(n, _)| n == "jobs")
        .and_then(|(_, v)| v.as_deref())
        .map_or(Ok(0), str::parse)
        .map_err(|e| format!("bad --jobs: {e}"))
}

/// The value of an integer flag, if present; a malformed value is a usage
/// error (exit code 2 at the caller).
fn parse_u64_flag(flags: &[Flag], name: &str) -> Result<Option<u64>, String> {
    flag_value(flags, name)
        .map(|v| v.parse::<u64>().map_err(|e| format!("bad --{name}: {e}")))
        .transpose()
}

/// The budget-related detector configuration shared by `check` and
/// `extended`.
fn budget_config(flags: &[Flag]) -> Result<DetectorConfig, String> {
    let mut config = DetectorConfig {
        jobs: parse_jobs(flags)?,
        timeout: parse_u64_flag(flags, "timeout")?.map(Duration::from_secs),
        channel_timeout: parse_u64_flag(flags, "channel-timeout")?.map(Duration::from_millis),
        solver_step_pool: parse_u64_flag(flags, "step-pool")?,
        ..DetectorConfig::default()
    };
    if let Some(steps) = parse_u64_flag(flags, "solver-steps")? {
        config.solver_steps = steps;
    }
    if let Some(mode) = flag_value(flags, "solver-mode") {
        config.solver_strategy = SolverStrategy::parse(mode).ok_or_else(|| {
            format!("bad --solver-mode: `{mode}` (expected incremental, fresh, or rescan)")
        })?;
    }
    config.share_encodings = !has_flag(flags, "no-share-encodings");
    Ok(config)
}

/// The alias-analysis scheduling mode (`--alias-mode`), defaulting to
/// demand-driven solving. Not part of [`DetectorConfig`] because it is
/// fixed at session construction, before any checker runs.
fn alias_mode(flags: &[Flag]) -> Result<AliasMode, String> {
    match flag_value(flags, "alias-mode") {
        Some(v) => AliasMode::parse(v)
            .ok_or_else(|| format!("bad --alias-mode: `{v}` (expected eager or demand)")),
        None => Ok(AliasMode::default()),
    }
}

/// Exit code for a diagnostics run: bugs mean 1, incidents under
/// `--strict` mean 2 (honest-failure semantics), otherwise 0.
fn diagnostics_exit(found_bugs: bool, incidents: &[Incident], strict: bool) -> ExitCode {
    if strict && !incidents.is_empty() {
        ExitCode::from(2)
    } else if found_bugs {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Shared body of `check` and `extended`: run the selected checkers and
/// print diagnostics as text or JSON.
fn run_diagnostics(
    path: &str,
    flags: &[Flag],
    selection: Selection,
    empty_message: &str,
) -> Result<ExitCode, String> {
    let json = has_flag(flags, "json");
    let want_stats = has_flag(flags, "stats");
    let explain = has_flag(flags, "explain");
    let strict = has_flag(flags, "strict");
    let trace_path = flag_value(flags, "trace");
    let metrics_out = flag_value(flags, "metrics-out");
    let events_out = flag_value(flags, "events-out");
    let zero_time = obs_zero_time();
    let bus = events_out.map(|_| {
        Arc::new(EventBus::new(
            derive_run_id(&[path.to_string()], zero_time),
            zero_time,
        ))
    });
    if let Some(bus) = &bus {
        bus.emit(run_event(
            EventKind::RunStart,
            vec![("modules", Field::U64(1))],
        ));
    }
    let level = trace_level(trace_path)?;
    let mut config = budget_config(flags)?;
    config.obs = ObsScope {
        bus: bus.clone(),
        ..ObsScope::default()
    };
    let alias = alias_mode(flags)?;
    let src = read_source(path)?;
    let started = std::time::Instant::now();
    let module = gcatch_suite::ir::lower_source(&src)?;
    let gcatch = GCatch::with_options(&module, level, alias);
    selection.validate(gcatch.registry())?;
    let diagnostics = gcatch.diagnostics(&config, &selection);
    let incidents = gcatch.incidents();
    gcatch
        .session()
        .telemetry()
        .observe(Metric::ModuleWallNs, started.elapsed().as_nanos() as u64);
    let stats = gcatch.stats();
    if let Some(tp) = trace_path {
        write_trace(tp, &gcatch.trace_snapshot())?;
    }
    if let Some(mp) = metrics_out {
        write_sink(mp, &render_prometheus(&stats, zero_time));
    }
    if let (Some(bus), Some(ep)) = (&bus, events_out) {
        bus.emit(run_event(
            EventKind::RunEnd,
            vec![
                ("diagnostics", Field::U64(diagnostics.len() as u64)),
                ("incidents", Field::U64(incidents.len() as u64)),
            ],
        ));
        write_sink(ep, &bus.render_jsonl());
    }
    if json {
        println!(
            "{}",
            render_json_with(&diagnostics, want_stats.then_some(&stats), &incidents)
        );
        return Ok(diagnostics_exit(
            !diagnostics.is_empty(),
            &incidents,
            strict,
        ));
    }
    if diagnostics.is_empty() {
        println!("{path}: {empty_message}");
        for incident in &incidents {
            print!("{}", incident.render());
        }
        if want_stats {
            print!("{}", stats.render_text());
        }
        return Ok(diagnostics_exit(false, &incidents, strict));
    }
    println!("{path}: {} diagnostic(s)\n", diagnostics.len());
    if explain {
        print!("{}", render_explain(&diagnostics));
    } else {
        for d in &diagnostics {
            println!(
                "{} [{}] ({}) {}",
                d.id,
                d.severity.name(),
                d.checker,
                d.report
            );
        }
    }
    for incident in &incidents {
        print!("{}", incident.render());
    }
    if want_stats {
        print!("{}", stats.render_text());
    }
    Ok(diagnostics_exit(true, &incidents, strict))
}

fn cmd_check(rest: &[String]) -> Result<ExitCode, String> {
    let spec = spec(
        &[REPORT_FLAGS, OBS_FLAGS, TIMEOUT_FLAG, ANALYSIS_FLAGS],
        &[
            ("explain", false),
            ("trace", true),
            ("only", true),
            ("skip", true),
            ("jobs", true),
        ],
    );
    let (path, flags) = parse_common(rest, &spec)?;
    let selection = Selection {
        only: flag_values(&flags, "only"),
        skip: flag_values(&flags, "skip"),
    };
    run_diagnostics(&path, &flags, selection, "no concurrency bugs detected")
}

fn cmd_extended(rest: &[String]) -> Result<ExitCode, String> {
    let spec = spec(
        &[REPORT_FLAGS, OBS_FLAGS, TIMEOUT_FLAG, ANALYSIS_FLAGS],
        &[("explain", false), ("trace", true), ("jobs", true)],
    );
    let (path, flags) = parse_common(rest, &spec)?;
    let selection = Selection {
        only: vec!["send-on-closed".to_string()],
        skip: Vec::new(),
    };
    run_diagnostics(
        &path,
        &flags,
        selection,
        "no send-on-closed panics detected",
    )
}

/// How many detect→patch rounds `fix` will attempt before declaring the
/// source non-converging (each round applies one patch, so this also caps
/// the number of patches).
const MAX_FIX_ROUNDS: usize = 32;

fn cmd_fix(rest: &[String]) -> Result<ExitCode, String> {
    let spec: &[FlagSpec] = &[("write", false), ("explain", false), ("trace", true)];
    let (path, flags) = parse_common(rest, spec)?;
    let write = has_flag(&flags, "write");
    let explain = has_flag(&flags, "explain");
    let trace_path = flag_value(&flags, "trace");
    let level = trace_level(trace_path)?;
    let config = DetectorConfig::default();
    let original = read_source(&path)?;

    // Detect → apply the first patch → re-detect on the patched source,
    // until no patch applies. Re-detection is required for soundness: a
    // patch can shift line numbers and even unblock previously-masked
    // schedules, so later patches from the *first* run may no longer apply.
    let mut source = original.clone();
    let mut applied = 0usize;
    let mut initial_bugs = 0usize;
    let mut last_rejections = Vec::new();
    for round in 0..MAX_FIX_ROUNDS {
        let pipeline = gfix::Pipeline::from_source(&source)?;
        // Trace only the first round: it sees the original source, and a
        // per-round trace file would overwrite itself anyway.
        let results = if round == 0 {
            let (results, _, snapshot) = pipeline.run_traced(&config, &Selection::default(), level);
            if let Some(tp) = trace_path {
                write_trace(tp, &snapshot)?;
            }
            results
        } else {
            pipeline.run(&config)
        };
        if round == 0 {
            initial_bugs = results.bugs.len();
            if results.bugs.is_empty() {
                println!("{path}: no concurrency bugs detected");
                return Ok(ExitCode::SUCCESS);
            }
            println!("{path}: {} bug(s) detected\n", results.bugs.len());
            if explain {
                for bug in &results.bugs {
                    print!("{bug}");
                    match &bug.provenance {
                        Some(p) => print!("{}", p.render()),
                        None => {
                            println!("  why: reported by a flow-analysis checker (no solver query)")
                        }
                    }
                    println!();
                }
            }
        }
        last_rejections = results
            .rejections
            .iter()
            .map(|(b, w)| (b.primitive_name.clone(), w.clone()))
            .collect();
        let Some(patch) = results.patches.first() else {
            break;
        };
        println!(
            "[{}] {} ({} changed lines)",
            patch.strategy, patch.description, patch.changed_lines
        );
        for (before, after) in patch.before.lines().zip(patch.after.lines()) {
            if before != after {
                println!("  - {before}");
                println!("  + {after}");
            }
        }
        println!();
        source = patch.after.clone();
        applied += 1;
    }
    for (name, why) in &last_rejections {
        println!("not fixed: {name} — {why}");
    }
    println!("{applied} patch(es) applied (fixpoint after {applied} round(s))");
    if write && applied > 0 {
        write_atomic(&path, &source)?;
        println!("wrote patched source to {path} ({applied} patch(es) applied)");
    }
    Ok(if initial_bugs > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Replaces `path` atomically: the new contents go to a temp file in the
/// same directory, which is then renamed over the original, so an
/// interrupted `fix --write` can never leave a truncated source file.
/// The containing directory is fsynced after the rename so the new name
/// itself survives a crash, not just the bytes behind it.
fn write_atomic(path: &str, contents: &str) -> Result<(), String> {
    use std::io::Write;
    let target = std::path::Path::new(path);
    let dir = match target.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => std::path::Path::new("."),
    };
    let file_name = target
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("out.go");
    let tmp = dir.join(format!(".{}.gcatch-tmp-{}", file_name, std::process::id()));
    let result = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, target)?;
        gcatch_suite::gcatch::sweep::fsync_dir(dir)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| format!("cannot write {path}: {e}"))
}

/// Writes an observability sink file (`--metrics-out` / `--events-out`).
/// A sink failure — full disk, yanked directory — must never kill the run
/// that produced the results: it degrades to a structured `sink` incident
/// on stderr, and the run's own exit code stands.
fn write_sink(path: &str, contents: &str) {
    if let Err(message) = write_atomic(path, contents) {
        let incident = Incident {
            kind: IncidentKind::Sink,
            name: path.to_string(),
            message,
            rung: 0,
            flight: Vec::new(),
        };
        eprint!("gcatch: warning: {}", incident.render());
    }
}

fn cmd_simulate(rest: &[String]) -> Result<ExitCode, String> {
    let (path, flags) = parse_common(rest, &[("seeds", true), ("entry", true)])?;
    let seeds: u64 = flags
        .iter()
        .find(|(n, _)| n == "seeds")
        .and_then(|(_, v)| v.as_deref())
        .map_or(Ok(30), str::parse)
        .map_err(|e| format!("bad --seeds: {e}"))?;
    let entry = flags
        .iter()
        .find(|(n, _)| n == "entry")
        .and_then(|(_, v)| v.clone())
        .unwrap_or_else(|| "main".to_string());
    let src = read_source(&path)?;
    let module = gcatch_suite::ir::lower_source(&src)?;
    let simulator = sim::Simulator::new(&module);
    let config = sim::Config {
        entry,
        ..sim::Config::default()
    };
    let mut blocked = 0usize;
    let mut panicked = 0usize;
    let mut clean = 0usize;
    let mut sample: Option<sim::RunReport> = None;
    for report in simulator.explore(&config, 0..seeds) {
        match report.outcome {
            sim::Outcome::Clean => clean += 1,
            sim::Outcome::Panic(_) => panicked += 1,
            sim::Outcome::Leak | sim::Outcome::GlobalDeadlock => {
                blocked += 1;
                if sample.is_none() {
                    sample = Some(report);
                }
            }
            sim::Outcome::StepLimit => {}
        }
    }
    println!("{path}: {seeds} schedules — {clean} clean, {blocked} blocked, {panicked} panicked");
    if let Some(report) = sample {
        println!("example blocked schedule:");
        for b in &report.blocked {
            println!(
                "  goroutine {} blocked in `{}` at {} ({:?})",
                b.id, b.func, b.span, b.reason
            );
        }
    }
    Ok(if blocked + panicked > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Like [`parse_common`], but collects *all* positional arguments (the
/// batch command takes many files/directories).
fn parse_multi(rest: &[String], spec: &[FlagSpec]) -> Result<(Vec<String>, Vec<Flag>), String> {
    let mut inputs = Vec::new();
    let mut flags = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let Some(&(_, takes_value)) = spec.iter().find(|(n, _)| *n == name) else {
                let known: Vec<String> = spec.iter().map(|(n, _)| format!("--{n}")).collect();
                return Err(format!(
                    "unknown flag `--{name}` (known: {})",
                    known.join(", ")
                ));
            };
            let value = if takes_value {
                Some(
                    it.next()
                        .ok_or_else(|| format!("--{name} needs a value"))?
                        .clone(),
                )
            } else {
                None
            };
            flags.push((name.to_string(), value));
        } else {
            inputs.push(arg.clone());
        }
    }
    if inputs.is_empty() {
        return Err("missing input files (batch takes one or more files or directories)".into());
    }
    Ok((inputs, flags))
}

/// Expands the batch inputs into a deduplicated module list: files pass
/// through as-is; a directory contributes its `*.go` files
/// (non-recursive), sorted by name so the job set — and therefore the
/// journal fingerprint — is stable across runs.
fn expand_modules(inputs: &[String]) -> Result<Vec<String>, String> {
    let mut modules = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for input in inputs {
        let path = std::path::Path::new(input);
        let mut batch = Vec::new();
        if path.is_dir() {
            let entries =
                std::fs::read_dir(path).map_err(|e| format!("cannot read {input}: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("cannot read {input}: {e}"))?;
                let p = entry.path();
                if p.is_file() && p.extension().is_some_and(|e| e == "go") {
                    batch.push(p.to_string_lossy().into_owned());
                }
            }
            batch.sort();
            if batch.is_empty() {
                return Err(format!("{input} contains no .go files"));
            }
        } else if path.is_file() {
            batch.push(input.clone());
        } else {
            return Err(format!("cannot read {input}: not a file or directory"));
        }
        for m in batch {
            if seen.insert(m.clone()) {
                modules.push(m);
            }
        }
    }
    Ok(modules)
}

/// JSON string escaping for the batch report (mirrors the diagnostics
/// renderer so module names round-trip through the journal).
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Extracts the `"bugs":N` count from a batch job payload. The payload is
/// produced by [`run_batch_module`], whose escaped module name can never
/// contain a raw `"`, so the first `","bugs":` is always the real field.
fn payload_bugs(payload: &str) -> usize {
    payload
        .find("\",\"bugs\":")
        .map(|i| {
            payload[i + 9..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

/// Renders the merged batch/sweep report from decided records, returning
/// `(report, total_bugs)`. The output is deterministic — submission
/// order, no attempt counts or timings, payloads that are pure functions
/// of each module — so a resumed batch, and a multi-process sweep, are
/// byte-identical to an uninterrupted single-process run. Sweep reuses
/// this renderer verbatim (including `"command":"batch"`): the report
/// describes *what was decided*, not which topology decided it.
fn render_batch_report(records: &[JobRecord<String>], quarantined: usize) -> (String, usize) {
    let mut total_bugs = 0usize;
    let mut report = String::from("{\"version\":1,\"command\":\"batch\",\"modules\":[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            report.push(',');
        }
        match &rec.payload {
            Some(p) => {
                total_bugs += payload_bugs(p);
                report.push_str(p);
            }
            None => {
                report.push_str("{\"module\":\"");
                json_escape(&rec.id, &mut report);
                report.push_str("\",\"quarantined\":true,\"message\":\"");
                if let Some(inc) = &rec.incident {
                    json_escape(&inc.message, &mut report);
                }
                // The flight-recorder dump rides along unconditionally:
                // it is deterministic (attempt lifecycle only, no wall
                // times), so the report stays byte-identical whether or
                // not observability flags were passed.
                report.push_str("\",\"flight\":[");
                if let Some(inc) = &rec.incident {
                    for (i, line) in inc.flight.iter().enumerate() {
                        if i > 0 {
                            report.push(',');
                        }
                        report.push('"');
                        json_escape(line, &mut report);
                        report.push('"');
                    }
                }
                report.push_str("]}");
            }
        }
    }
    report.push_str("],\"total_bugs\":");
    report.push_str(&total_bugs.to_string());
    report.push_str(",\"quarantined\":");
    report.push_str(&quarantined.to_string());
    report.push('}');
    (report, total_bugs)
}

/// One batch job: lower and check a single module, returning a
/// self-contained JSON payload. Failures surface as `Err` so the engine
/// retries (transient, e.g. injected faults) or quarantines
/// (deterministic, e.g. a syntax error) the module instead of killing the
/// sweep.
fn run_batch_module(
    path: &str,
    base: &DetectorConfig,
    alias: AliasMode,
    telemetry: &Telemetry,
    bus: &Option<Arc<EventBus>>,
    ctx: &JobCtx,
) -> Result<String, String> {
    let src = read_source(path)?;
    let started = std::time::Instant::now();
    let module = gcatch_suite::ir::lower_source(&src)?;
    let gcatch = GCatch::with_options(&module, TraceLevel::Off, alias);
    // The flight recorder is always attached (its lines feed the
    // quarantine postmortem, which must be byte-identical whether or not
    // --events-out was passed); the bus only when the run armed one.
    let config = DetectorConfig {
        cancel: Some(ctx.cancel.clone()),
        obs: ObsScope {
            bus: bus.clone(),
            flight: Some(ctx.flight.clone()),
            job: Some(ctx.job_id.clone()),
            group: Some(ctx.index as u64),
            attempt: Some(ctx.attempt),
        },
        ..base.clone()
    };
    let diagnostics = gcatch.diagnostics(&config, &Selection::default());
    let incidents = gcatch.incidents();
    // An injected fault contained by an inner degradation rung would leave
    // a partial report behind; surface it as a failed attempt so the retry
    // produces a clean, deterministic payload instead.
    if let Some(inc) = incidents.iter().find(|i| faults::is_injected(&i.message)) {
        return Err(inc.message.clone());
    }
    // A hedge twin that lost the race ran under a fired cancel token; its
    // partial results must never win, so degrade them to a failed attempt.
    if ctx.cancel.is_cancelled() {
        return Err("cancelled mid-run".to_string());
    }
    gcatch
        .session()
        .telemetry()
        .observe(Metric::ModuleWallNs, started.elapsed().as_nanos() as u64);
    telemetry.absorb(&gcatch.stats());
    let mut payload = String::from("{\"module\":\"");
    json_escape(path, &mut payload);
    payload.push_str("\",\"bugs\":");
    payload.push_str(&diagnostics.len().to_string());
    payload.push_str(",\"report\":");
    payload.push_str(&render_json_with(&diagnostics, None, &incidents));
    payload.push('}');
    Ok(payload)
}

fn cmd_batch(rest: &[String]) -> Result<ExitCode, String> {
    let spec = spec(
        &[
            REPORT_FLAGS,
            OBS_FLAGS,
            RETRY_FLAGS,
            FAULT_FLAGS,
            TIMEOUT_FLAG,
            ANALYSIS_FLAGS,
        ],
        &[
            ("jobs", true),
            ("hedge-ms", true),
            ("no-hedge", false),
            ("journal", true),
            ("resume", true),
            ("report", true),
            ("explain", false),
            ("progress", false),
            ("trace", true),
        ],
    );
    let (inputs, flags) = parse_multi(rest, &spec)?;
    let modules = expand_modules(&inputs)?;
    let json = has_flag(&flags, "json");
    let want_stats = has_flag(&flags, "stats");
    let strict = has_flag(&flags, "strict");
    let explain = has_flag(&flags, "explain");
    let trace_path = flag_value(&flags, "trace");
    let level = trace_level(trace_path)?;
    let metrics_out = flag_value(&flags, "metrics-out");
    let events_out = flag_value(&flags, "events-out");
    let zero_time = obs_zero_time();
    let bus =
        events_out.map(|_| Arc::new(EventBus::new(derive_run_id(&modules, zero_time), zero_time)));
    if let Some(bus) = &bus {
        // Worker count is deliberately absent: the stream must be
        // byte-identical across --jobs once timestamps are normalized.
        bus.emit(run_event(
            EventKind::RunStart,
            vec![("modules", Field::U64(modules.len() as u64))],
        ));
    }

    let (plan, fault_seed) = fault_plan(&flags)?;

    let max_attempts = parse_u64_flag(&flags, "max-attempts")?.unwrap_or(3);
    if max_attempts == 0 {
        return Err("--max-attempts must be at least 1".into());
    }
    let workers = match parse_jobs(&flags)? {
        0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
        n => n,
    };
    let mut batch = BatchConfig {
        workers,
        max_attempts: max_attempts as u32,
        ..BatchConfig::default()
    };
    if let Some(ms) = parse_u64_flag(&flags, "backoff-ms")? {
        batch.backoff.base = Duration::from_millis(ms);
    }
    batch.backoff.seed = fault_seed.unwrap_or(0);
    batch.hedge = if has_flag(&flags, "no-hedge") {
        None
    } else {
        let mut hedge = HedgePolicy::default();
        if let Some(ms) = parse_u64_flag(&flags, "hedge-ms")? {
            hedge.min_age = Duration::from_millis(ms);
        }
        Some(hedge)
    };
    batch.faults = plan.map(Arc::new);

    // Each job runs its analysis single-threaded: the fault schedule keys
    // on deterministic per-channel decisions, and parallelism comes from
    // the worker pool above instead.
    let mut base = budget_config(&flags)?;
    base.jobs = 1;
    let alias = alias_mode(&flags)?;

    let journal_flag = flag_value(&flags, "journal");
    let resume_flag = flag_value(&flags, "resume");
    if journal_flag.is_some() && resume_flag.is_some() {
        return Err("--journal and --resume are mutually exclusive".into());
    }
    let codec = JournalCodec::raw_json();
    let (journal, restored) = match (journal_flag, resume_flag) {
        (Some(p), None) => {
            let journal = Journal::create(std::path::Path::new(p), &modules)
                .map_err(|e| format!("cannot create journal {p}: {e}"))?;
            (Some(journal), BTreeMap::new())
        }
        (None, Some(p)) => {
            let (journal, restored) =
                Journal::open_resume(std::path::Path::new(p), &modules, &codec)?;
            (Some(journal), restored)
        }
        _ => (None, BTreeMap::new()),
    };

    let telemetry = Telemetry::new();
    let tracer = Tracer::new(level);
    let jobs: Vec<BatchJob<String>> = modules
        .iter()
        .map(|path| {
            let base = base.clone();
            let telemetry = &telemetry;
            let path = path.clone();
            let bus = bus.clone();
            BatchJob::new(path.clone(), move |ctx| {
                run_batch_module(&path, &base, alias, telemetry, &bus, ctx)
            })
        })
        .collect();
    let mut engine = BatchEngine::new(batch, &telemetry, &tracer);
    if let Some(bus) = &bus {
        engine = engine.with_events(bus);
    }
    let progress = has_flag(&flags, "progress")
        && !json
        && std::io::IsTerminal::is_terminal(&std::io::stderr());
    if progress {
        engine = engine.with_progress(
            |snap| {
                use std::io::Write;
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r\x1b[K{}", snap.render_line());
                let _ = err.flush();
            },
            Duration::from_millis(100),
        );
    }
    // While the batch runs, a ticker thread periodically republishes the
    // metrics file so external scrapers see live progress; the final
    // (authoritative) exposition is rewritten after the run completes.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let outcome = std::thread::scope(|scope| {
        let ticker = metrics_out.map(|path| {
            let stop = &stop;
            let telemetry = &telemetry;
            scope.spawn(move || {
                // A failing live republish degrades to one warning, not a
                // warning every tick and never an aborted batch; the final
                // post-run write reports again through write_sink.
                let mut warned = false;
                loop {
                    for _ in 0..8 {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    let rendered = render_prometheus(&telemetry.snapshot(), zero_time);
                    if let Err(e) = write_atomic(path, &rendered) {
                        if !warned {
                            eprintln!("gcatch: warning: live metrics republish failed: {e}");
                            warned = true;
                        }
                    }
                }
            })
        });
        let outcome = engine.run(&jobs, journal.as_ref().map(|j| (j, &codec)), restored);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(t) = ticker {
            let _ = t.join();
        }
        outcome
    });
    if progress {
        eprint!("\r\x1b[K");
    }
    drop(jobs);
    if let Some(tp) = trace_path {
        write_trace(tp, &tracer.snapshot())?;
    }
    if let Some(err) = &outcome.journal_error {
        eprintln!("gcatch: warning: journal write failed: {err}");
    }

    let (report, total_bugs) = render_batch_report(&outcome.records, outcome.quarantined);

    if let Some(path) = flag_value(&flags, "report") {
        write_atomic(path, &format!("{report}\n"))?;
    }
    let stats = telemetry.snapshot();
    if let Some(mp) = metrics_out {
        write_sink(mp, &render_prometheus(&stats, zero_time));
    }
    if let (Some(bus), Some(ep)) = (&bus, events_out) {
        bus.emit(run_event(
            EventKind::RunEnd,
            vec![
                ("modules", Field::U64(outcome.records.len() as u64)),
                ("executed", Field::U64(outcome.executed as u64)),
                ("resumed", Field::U64(outcome.resumed as u64)),
                ("quarantined", Field::U64(outcome.quarantined as u64)),
                ("total_bugs", Field::U64(total_bugs as u64)),
            ],
        ));
        write_sink(ep, &bus.render_jsonl());
    }
    if json {
        if want_stats {
            let mut with_stats = report[..report.len() - 1].to_string();
            with_stats.push_str(",\"stats\":");
            with_stats.push_str(&render_stats_json(&stats));
            with_stats.push('}');
            println!("{with_stats}");
        } else {
            println!("{report}");
        }
    } else {
        println!(
            "batch: {} module(s) — {} executed, {} resumed, {} quarantined",
            outcome.records.len(),
            outcome.executed,
            outcome.resumed,
            outcome.quarantined
        );
        for rec in &outcome.records {
            match &rec.payload {
                Some(p) => println!("  {}: {} bug(s)", rec.id, payload_bugs(p)),
                None => {
                    let why = rec.incident.as_ref().map_or("", |inc| inc.message.as_str());
                    println!("  {}: quarantined — {why}", rec.id);
                    if explain {
                        if let Some(inc) = &rec.incident {
                            print!("{}", inc.render());
                        }
                    }
                }
            }
        }
        println!("total: {total_bugs} bug(s)");
        if want_stats {
            print!("{}", stats.render_text());
        }
    }
    Ok(if strict && outcome.quarantined > 0 {
        ExitCode::from(2)
    } else if total_bugs > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Exec-layer flags shared by `batch`, `sweep`, and `worker`: everything
/// here shapes a job's decided record (attempt budget, backoff schedule,
/// fault plan, analysis budgets), so `sweep` forwards them verbatim to
/// every worker process — otherwise the merged report would diverge from
/// a single-process `batch` run over the same modules.
fn exec_flags() -> Vec<FlagSpec> {
    spec(
        &[RETRY_FLAGS, FAULT_FLAGS, TIMEOUT_FLAG, ANALYSIS_FLAGS],
        &[],
    )
}

/// Resolves the fault plan shared by batch/sweep/worker: CLI flags
/// override the `GCATCH_FAULT_*` environment. Also returns the CLI
/// `--fault-seed` (it doubles as the retry-backoff seed).
fn fault_plan(flags: &[Flag]) -> Result<(Option<FaultPlan>, Option<u64>), String> {
    let fault_rate = flag_value(flags, "inject-faults")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|e| format!("bad --inject-faults: {e}"))
        })
        .transpose()?;
    let fault_seed = parse_u64_flag(flags, "fault-seed")?;
    if fault_seed.is_some() && fault_rate.is_none() {
        return Err("--fault-seed needs --inject-faults".into());
    }
    let plan = match fault_rate {
        Some(rate) => {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("bad --inject-faults: {rate} is not in [0, 1]"));
            }
            Some(FaultPlan::new(rate, fault_seed.unwrap_or(0)))
        }
        None => FaultPlan::from_env()?,
    };
    Ok((plan, fault_seed))
}

/// The engine configuration a sweep worker runs each claimed job under:
/// identical to `cmd_batch`'s in every record-shaping knob, pinned to one
/// thread and no hedging so each decision is a pure function of its
/// module. This is what makes the merged sweep report byte-identical to
/// `gcatch batch --no-hedge` regardless of fleet size, kills, or
/// re-leases.
fn worker_engine_config(
    flags: &[Flag],
    plan: Option<Arc<FaultPlan>>,
    fault_seed: Option<u64>,
) -> Result<BatchConfig, String> {
    let max_attempts = parse_u64_flag(flags, "max-attempts")?.unwrap_or(3);
    if max_attempts == 0 {
        return Err("--max-attempts must be at least 1".into());
    }
    let mut batch = BatchConfig {
        workers: 1,
        max_attempts: max_attempts as u32,
        ..BatchConfig::default()
    };
    if let Some(ms) = parse_u64_flag(flags, "backoff-ms")? {
        batch.backoff.base = Duration::from_millis(ms);
    }
    batch.backoff.seed = fault_seed.unwrap_or(0);
    batch.hedge = None;
    batch.faults = plan;
    Ok(batch)
}

/// The subset of `flags` in [`EXEC_FLAGS`], re-rendered as command-line
/// arguments for a spawned worker process.
fn forward_exec_flags(flags: &[Flag]) -> Vec<String> {
    let exec = exec_flags();
    let mut out = Vec::new();
    for (name, value) in flags {
        if exec.iter().any(|(n, _)| n == name) {
            out.push(format!("--{name}"));
            if let Some(v) = value {
                out.push(v.clone());
            }
        }
    }
    out
}

/// Like [`parse_multi`] but for commands that take no positional
/// arguments at all (`gcatch worker`).
fn parse_flags_only(rest: &[String], spec: &[FlagSpec]) -> Result<Vec<Flag>, String> {
    let mut flags = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        let Some(&(_, takes_value)) = spec.iter().find(|(n, _)| *n == name) else {
            let known: Vec<String> = spec.iter().map(|(n, _)| format!("--{n}")).collect();
            return Err(format!(
                "unknown flag `--{name}` (known: {})",
                known.join(", ")
            ));
        };
        let value = if takes_value {
            Some(
                it.next()
                    .ok_or_else(|| format!("--{name} needs a value"))?
                    .clone(),
            )
        } else {
            None
        };
        flags.push((name.to_string(), value));
    }
    Ok(flags)
}

/// One sweep worker process (spawned by `gcatch sweep`): claims jobs from
/// the on-disk lease queue and runs each through a single-job batch
/// engine that journals the decided record to this worker's own journal.
fn cmd_worker(rest: &[String]) -> Result<ExitCode, String> {
    let spec = spec(
        &[&exec_flags()],
        &[("dir", true), ("id", true), ("lease-ms", true)],
    );
    let flags = parse_flags_only(rest, &spec)?;
    let dir = flag_value(&flags, "dir").ok_or("worker needs --dir")?;
    let id = flag_value(&flags, "id")
        .ok_or("worker needs --id")?
        .to_string();
    let lease = Duration::from_millis(parse_u64_flag(&flags, "lease-ms")?.unwrap_or(1_000).max(20));

    let layout = SweepLayout::new(dir);
    let ids = read_manifest(&layout)?;
    let (plan, fault_seed) = fault_plan(&flags)?;
    let plan = plan.map(Arc::new);
    let batch = worker_engine_config(&flags, plan.clone(), fault_seed)?;
    let mut base = budget_config(&flags)?;
    base.jobs = 1;
    let alias = alias_mode(&flags)?;

    let codec = JournalCodec::raw_json();
    let journal = Journal::create(&layout.journal_path(&id), &ids)
        .map_err(|e| format!("cannot create worker journal: {e}"))?;
    let telemetry = Telemetry::new();
    let tracer = Tracer::new(TraceLevel::Off);
    let bus: Option<Arc<EventBus>> = None;
    let config = WorkerConfig {
        id,
        lease,
        poll: Duration::from_millis(10),
        plan,
    };
    run_worker(&layout, &ids, &config, |_, module| {
        let path = module.to_string();
        let job = BatchJob::new(path.clone(), {
            let base = base.clone();
            let bus = bus.clone();
            let telemetry = &telemetry;
            move |ctx| run_batch_module(&path, &base, alias, telemetry, &bus, ctx)
        });
        let engine = BatchEngine::new(batch.clone(), &telemetry, &tracer);
        let outcome = engine.run(&[job], Some((&journal, &codec)), BTreeMap::new());
        match outcome.journal_error {
            Some(err) => Err(format!("journal write failed: {err}")),
            None => Ok(()),
        }
    })?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep(rest: &[String]) -> Result<ExitCode, String> {
    let spec = spec(
        &[REPORT_FLAGS, OBS_FLAGS, &exec_flags()],
        &[
            ("workers", true),
            ("dir", true),
            ("lease-ms", true),
            ("max-releases", true),
            ("report", true),
            ("progress", false),
        ],
    );
    let (inputs, flags) = parse_multi(rest, &spec)?;
    let modules = expand_modules(&inputs)?;
    let json = has_flag(&flags, "json");
    let want_stats = has_flag(&flags, "stats");
    let strict = has_flag(&flags, "strict");
    let metrics_out = flag_value(&flags, "metrics-out");
    let events_out = flag_value(&flags, "events-out");

    // Validate every exec-layer flag up front so usage errors surface
    // here, with exit code 2, instead of inside a spawned worker.
    let (plan, fault_seed) = fault_plan(&flags)?;
    worker_engine_config(&flags, plan.map(Arc::new), fault_seed)?;
    budget_config(&flags)?;
    alias_mode(&flags)?;

    let workers = match parse_u64_flag(&flags, "workers")?.unwrap_or(4) {
        0 => return Err("--workers must be at least 1".into()),
        n => n as usize,
    };
    let lease_ms = parse_u64_flag(&flags, "lease-ms")?.unwrap_or(1_000).max(20);
    let max_releases = parse_u64_flag(&flags, "max-releases")?.unwrap_or(3);

    // The sweep directory: caller-provided (kept afterwards, must be
    // fresh) or an ephemeral temp directory (removed after the run).
    let ephemeral = flag_value(&flags, "dir").is_none();
    let root = match flag_value(&flags, "dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("gcatch-sweep-{}", std::process::id())),
    };
    let layout = SweepLayout::new(&root);
    if layout.manifest_path().exists() {
        return Err(format!(
            "sweep directory {} already contains a manifest; use a fresh --dir",
            root.display()
        ));
    }
    layout
        .init()
        .map_err(|e| format!("cannot create sweep directory {}: {e}", root.display()))?;
    write_manifest(&layout, &modules).map_err(|e| format!("cannot write sweep manifest: {e}"))?;

    let zero_time = obs_zero_time();
    let bus =
        events_out.map(|_| Arc::new(EventBus::new(derive_run_id(&modules, zero_time), zero_time)));
    if let Some(bus) = &bus {
        bus.emit(run_event(
            EventKind::RunStart,
            vec![("modules", Field::U64(modules.len() as u64))],
        ));
    }

    let telemetry = Telemetry::new();
    let lease = Duration::from_millis(lease_ms);
    let config = SweepConfig {
        workers,
        lease,
        max_releases,
        poll: Duration::from_millis(15),
        stale_after: lease * 4,
    };
    let mut coordinator = Coordinator::new(layout.clone(), modules.clone(), config, &telemetry);
    if let Some(bus) = &bus {
        coordinator = coordinator.with_events(bus);
    }
    let progress = has_flag(&flags, "progress")
        && !json
        && std::io::IsTerminal::is_terminal(&std::io::stderr());
    if progress {
        coordinator = coordinator.with_progress(
            |snap| {
                use std::io::Write;
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r\x1b[K{}", snap.render_line());
                let _ = err.flush();
            },
            Duration::from_millis(100),
        );
    }

    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the gcatch executable: {e}"))?;
    let forwarded = forward_exec_flags(&flags);
    let outcome = coordinator.run(|name| {
        std::process::Command::new(&exe)
            .arg("worker")
            .arg("--dir")
            .arg(&root)
            .arg("--id")
            .arg(name)
            .arg("--lease-ms")
            .arg(lease_ms.to_string())
            .args(&forwarded)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
    })?;
    if progress {
        eprint!("\r\x1b[K");
    }

    // Duplicate decisions never change the report (the kept record is
    // byte-identical to what a single-process run would have produced);
    // they surface as warnings and structured incidents instead.
    for dup in &outcome.merge.duplicates {
        let incident = dup.incident();
        eprintln!(
            "gcatch: warning: duplicate decision for {}: {}",
            dup.job, incident.message
        );
    }

    let records = &outcome.merge.records;
    let quarantined = records.iter().filter(|r| r.payload.is_none()).count();
    let (report, total_bugs) = render_batch_report(records, quarantined);

    if let Some(path) = flag_value(&flags, "report") {
        write_atomic(path, &format!("{report}\n"))?;
    }
    let stats = telemetry.snapshot();
    if let Some(mp) = metrics_out {
        write_sink(mp, &render_prometheus(&stats, zero_time));
    }
    if let (Some(bus), Some(ep)) = (&bus, events_out) {
        bus.emit(run_event(
            EventKind::RunEnd,
            vec![
                ("modules", Field::U64(records.len() as u64)),
                ("quarantined", Field::U64(quarantined as u64)),
                ("total_bugs", Field::U64(total_bugs as u64)),
                ("workers_spawned", Field::U64(outcome.workers_spawned)),
                ("workers_lost", Field::U64(outcome.workers_lost)),
                ("releases", Field::U64(outcome.jobs_releases)),
            ],
        ));
        write_sink(ep, &bus.render_jsonl());
    }
    if json {
        if want_stats {
            let mut with_stats = report[..report.len() - 1].to_string();
            with_stats.push_str(",\"stats\":");
            with_stats.push_str(&render_stats_json(&stats));
            with_stats.push('}');
            println!("{with_stats}");
        } else {
            println!("{report}");
        }
    } else {
        println!(
            "sweep: {} module(s) — {} workers spawned, {} lost, {} releases, {} quarantined",
            records.len(),
            outcome.workers_spawned,
            outcome.workers_lost,
            outcome.jobs_releases,
            quarantined
        );
        for rec in records.iter() {
            match &rec.payload {
                Some(p) => println!("  {}: {} bug(s)", rec.id, payload_bugs(p)),
                None => {
                    let why = rec.incident.as_ref().map_or("", |inc| inc.message.as_str());
                    println!("  {}: quarantined — {why}", rec.id);
                }
            }
        }
        println!("total: {total_bugs} bug(s)");
        if want_stats {
            print!("{}", stats.render_text());
        }
    }
    if outcome.interrupted {
        eprintln!(
            "gcatch: sweep interrupted — {} decided job(s) merged, {} undecided",
            records.len(),
            outcome.merge.missing.len()
        );
    }
    if ephemeral {
        let _ = std::fs::remove_dir_all(&root);
    }
    Ok(if outcome.interrupted {
        // The conventional 128 + SIGINT exit for a run wound down early;
        // decided work was merged and reported above.
        ExitCode::from(130)
    } else if strict && quarantined > 0 {
        ExitCode::from(2)
    } else if total_bugs > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Fingerprint of every flag that shapes a serve response byte. The
/// cache index records it in its header; an index written under a
/// different fingerprint is discarded wholesale on startup, because its
/// cached responses would no longer match what this daemon computes.
fn serve_fingerprint(flags: &[Flag]) -> String {
    let mut fp = String::from("v1");
    for (name, takes_value) in ANALYSIS_FLAGS {
        fp.push(';');
        fp.push_str(name);
        fp.push('=');
        if *takes_value {
            fp.push_str(flag_value(flags, name).unwrap_or("default"));
        } else {
            fp.push_str(if has_flag(flags, name) { "on" } else { "off" });
        }
    }
    fp
}

/// One serve work request, executed on a daemon pool thread. `check`
/// returns the exact report `gcatch check --json` would print for the
/// module (that byte-identity is what makes the response cache sound);
/// `explain` wraps the provenance text; `fix-dry-run` summarizes the
/// patches GFix would apply without writing anything.
fn serve_execute(
    op: WorkKind,
    source: &str,
    budget: &Budget,
    base: &DetectorConfig,
    alias: AliasMode,
) -> Result<String, String> {
    // The request deadline flows into the analysis budget, so a slow
    // module degrades through the usual rungs instead of running
    // unbounded; the daemon still issues the authoritative deadline
    // verdict after the call returns.
    let mut config = base.clone();
    if let Some(deadline) = budget.deadline() {
        config.timeout = Some(deadline.saturating_duration_since(std::time::Instant::now()));
    }
    match op {
        WorkKind::Check => {
            let module = gcatch_suite::ir::lower_source(source)?;
            let gcatch = GCatch::with_options(&module, TraceLevel::Off, alias);
            let diagnostics = gcatch.diagnostics(&config, &Selection::default());
            let incidents = gcatch.incidents();
            Ok(render_json_with(&diagnostics, None, &incidents))
        }
        WorkKind::Explain => {
            let module = gcatch_suite::ir::lower_source(source)?;
            let gcatch = GCatch::with_options(&module, TraceLevel::Off, alias);
            let diagnostics = gcatch.diagnostics(&config, &Selection::default());
            let text = render_explain(&diagnostics);
            let mut out = String::from("{\"diagnostics\":");
            out.push_str(&diagnostics.len().to_string());
            out.push_str(",\"explain\":\"");
            json_escape(&text, &mut out);
            out.push_str("\"}");
            Ok(out)
        }
        WorkKind::FixDryRun => {
            let pipeline = gfix::Pipeline::from_source(source)?;
            let results = pipeline.run(&config);
            let mut out = String::from("{\"bugs\":");
            out.push_str(&results.bugs.len().to_string());
            out.push_str(",\"patches\":[");
            for (i, patch) in results.patches.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"strategy\":\"");
                json_escape(&patch.strategy.to_string(), &mut out);
                out.push_str("\",\"description\":\"");
                json_escape(&patch.description, &mut out);
                out.push_str("\",\"changed_lines\":");
                out.push_str(&patch.changed_lines.to_string());
                out.push('}');
            }
            out.push_str("]}");
            Ok(out)
        }
    }
}

fn cmd_serve(rest: &[String]) -> Result<ExitCode, String> {
    let spec = spec(
        &[OBS_FLAGS, FAULT_FLAGS, ANALYSIS_FLAGS],
        &[
            ("socket", true),
            ("stdio", false),
            ("cache-dir", true),
            ("max-queue", true),
            ("workers", true),
            ("request-timeout-ms", true),
            ("max-cache", true),
            ("max-sessions", true),
        ],
    );
    let flags = parse_flags_only(rest, &spec)?;
    let socket = flag_value(&flags, "socket").map(std::path::PathBuf::from);
    let stdio = has_flag(&flags, "stdio");
    if socket.is_some() && stdio {
        return Err("--socket and --stdio are mutually exclusive".into());
    }
    if socket.is_none() && !stdio {
        return Err("serve needs --socket PATH or --stdio".into());
    }
    let (plan, _fault_seed) = fault_plan(&flags)?;
    // Each request analyzes single-threaded (parallelism comes from the
    // daemon's own pool), keeping fault schedules and reports identical
    // to single-shot runs.
    let mut base = budget_config(&flags)?;
    base.jobs = 1;
    let alias = alias_mode(&flags)?;
    let workers = parse_u64_flag(&flags, "workers")?.unwrap_or(4).max(1) as usize;
    let max_queue = parse_u64_flag(&flags, "max-queue")?.unwrap_or(64) as usize;
    let request_timeout = parse_u64_flag(&flags, "request-timeout-ms")?.map(Duration::from_millis);
    let cache_capacity = parse_u64_flag(&flags, "max-cache")?.unwrap_or(512).max(1) as usize;
    let max_sessions = parse_u64_flag(&flags, "max-sessions")?.unwrap_or(8) as usize;
    let cache_dir = flag_value(&flags, "cache-dir").map(std::path::PathBuf::from);
    let metrics_out = flag_value(&flags, "metrics-out");
    let events_out = flag_value(&flags, "events-out");
    let zero_time = obs_zero_time();
    let bus = events_out.map(|_| {
        Arc::new(EventBus::new(
            derive_run_id(&["serve".to_string()], zero_time),
            zero_time,
        ))
    });
    if let Some(bus) = &bus {
        bus.emit(run_event(
            EventKind::RunStart,
            vec![("modules", Field::U64(0))],
        ));
    }

    // Warm-session eligibility. Sessions carry analysis artifacts across
    // requests, so they are only sound when every request computes the
    // same bytes a cold run would: no budgets that could truncate a rung
    // mid-module, disentangling on (the dirty-set rule is scope-based),
    // and no fault plan other than one scoped to the session-loss site
    // itself (whose injection is handled inside `warm_check`).
    let warm_plan_ok = plan.as_ref().is_none_or(|p| {
        p.sites
            .as_ref()
            .is_some_and(|s| s.iter().all(|site| site == faults::SITE_SERVE_SESSION))
    });
    let warm_base_ok = base.timeout.is_none()
        && base.channel_timeout.is_none()
        && base.solver_step_pool.is_none()
        && base.disentangle;
    let warm_store = (max_sessions > 0 && warm_plan_ok && warm_base_ok)
        .then(|| Arc::new(gcatch_suite::gcatch::WarmSessions::new(max_sessions)));

    let config = ServeConfig {
        workers,
        max_queue,
        request_timeout,
        cache_dir,
        cache_capacity,
        config_fingerprint: serve_fingerprint(&flags),
        plan: plan.map(Arc::new),
        warm: warm_store.clone(),
    };
    let telemetry = Telemetry::new();
    let executor = |op: WorkKind, path: &str, source: &str, budget: &Budget| {
        // Timed requests bypass the warm layer: a deadline can truncate
        // analysis rungs, and truncated verdicts must never be harvested
        // into (or replayed from) a session.
        if op == WorkKind::Check && budget.deadline().is_none() {
            if let Some(store) = warm_store.as_deref() {
                let outcome = gcatch_suite::gcatch::warm_check(store, path, source, &base, alias)?;
                if outcome.reused {
                    telemetry.add(Counter::SessionsReused, 1);
                }
                telemetry.add(Counter::ChannelsReplayed, outcome.replayed);
                telemetry.add(Counter::ChannelsReanalyzed, outcome.reanalyzed);
                telemetry.add(Counter::SessionEvictions, outcome.evicted);
                if let Some(bus) = &bus {
                    if outcome.reused {
                        bus.emit(Event {
                            kind: EventKind::SessionReuse,
                            group: 0,
                            job: Some(path.to_string()),
                            attempt: None,
                            channel: None,
                            fields: vec![
                                ("replayed", Field::U64(outcome.replayed)),
                                ("reanalyzed", Field::U64(outcome.reanalyzed)),
                            ],
                        });
                    }
                    if outcome.evicted > 0 || outcome.fault_evicted {
                        bus.emit(Event {
                            kind: EventKind::SessionEvict,
                            group: 0,
                            job: Some(path.to_string()),
                            attempt: None,
                            channel: None,
                            fields: vec![
                                ("evicted", Field::U64(outcome.evicted)),
                                ("fault", Field::Bool(outcome.fault_evicted)),
                            ],
                        });
                    }
                }
                return Ok(outcome.json);
            }
        }
        serve_execute(op, source, budget, &base, alias)
    };

    // Same live-republish ticker as batch: scrapers watching
    // --metrics-out see the request counters move while the daemon runs.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let summary = std::thread::scope(|scope| {
        let ticker = metrics_out.map(|path| {
            let stop = &stop;
            let telemetry = &telemetry;
            scope.spawn(move || {
                let mut warned = false;
                loop {
                    for _ in 0..8 {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    let rendered = render_prometheus(&telemetry.snapshot(), zero_time);
                    if let Err(e) = write_atomic(path, &rendered) {
                        if !warned {
                            eprintln!("gcatch: warning: live metrics republish failed: {e}");
                            warned = true;
                        }
                    }
                }
            })
        });
        let summary = match &socket {
            Some(path) => serve_socket(path, &config, &executor, &telemetry, bus.clone()),
            None => serve_stdio(&config, &executor, &telemetry, bus.clone()),
        };
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(t) = ticker {
            let _ = t.join();
        }
        summary
    })?;

    let stats = telemetry.snapshot();
    if let Some(mp) = metrics_out {
        write_sink(mp, &render_prometheus(&stats, zero_time));
    }
    if let (Some(bus), Some(ep)) = (&bus, events_out) {
        bus.emit(run_event(
            EventKind::RunEnd,
            vec![
                ("requests", Field::U64(summary.requests)),
                ("shed", Field::U64(summary.shed)),
                ("failed", Field::U64(summary.failed)),
                ("cache_hits", Field::U64(summary.cache_hits)),
            ],
        ));
        write_sink(ep, &bus.render_jsonl());
    }
    // The summary goes to stderr: in --stdio mode stdout is the protocol
    // stream and must carry response lines only.
    eprintln!(
        "gcatch: serve drained — {} request(s), {} shed, {} failed, {} cache hit(s), \
         cache warm {} / dropped {}",
        summary.requests,
        summary.shed,
        summary.failed,
        summary.cache_hits,
        summary.cache_warm,
        summary.cache_dropped,
    );
    Ok(ExitCode::SUCCESS)
}
