//! `gcatch` — command-line front end for the GCatch/GFix reproduction.
//!
//! ```console
//! $ gcatch check file.go              # detect bugs (BMOC + traditional)
//! $ gcatch fix file.go                # detect, patch, print the diffs
//! $ gcatch fix --write file.go        # apply the patched source in place
//! $ gcatch simulate file.go --seeds 50 --entry main
//! $ gcatch extended file.go           # §6 send-on-closed panic detector
//! ```

use gcatch_suite::gcatch::{Detector, DetectorConfig, GCatch};
use gcatch_suite::{gfix, sim};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "check" => cmd_check(rest),
        "fix" => cmd_fix(rest),
        "simulate" => cmd_simulate(rest),
        "extended" => cmd_extended(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("gcatch: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: gcatch <command> [options] <file.go>

commands:
  check                 detect BMOC and traditional concurrency bugs
  fix [--write]         detect and patch; --write applies the result in place
  simulate [--seeds N] [--entry F]
                        explore schedules and report outcomes
  extended              run the send-on-closed (panic) detector (paper §6)

exit status: 0 = clean, 1 = bugs found, 2 = usage or input error";

/// A parsed `--flag [value]` pair.
type Flag = (String, Option<String>);

/// Splits flags from the single positional file argument.
fn parse_common(rest: &[String]) -> Result<(String, Vec<Flag>), String> {
    let mut file = None;
    let mut flags = Vec::new();
    let mut it = rest.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let takes_value = matches!(name, "seeds" | "entry");
            let value = if takes_value {
                Some(it.next().ok_or_else(|| format!("--{name} needs a value"))?.clone())
            } else {
                None
            };
            flags.push((name.to_string(), value));
        } else if file.is_none() {
            file = Some(arg.clone());
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    let file = file.ok_or("missing input file")?;
    Ok((file, flags))
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_check(rest: &[String]) -> Result<ExitCode, String> {
    let (path, _) = parse_common(rest)?;
    let src = read_source(&path)?;
    let module = gcatch_suite::ir::lower_source(&src)?;
    let gcatch = GCatch::new(&module);
    let bugs = gcatch.detect_all(&DetectorConfig::default());
    if bugs.is_empty() {
        println!("{path}: no concurrency bugs detected");
        return Ok(ExitCode::SUCCESS);
    }
    println!("{path}: {} bug(s) detected\n", bugs.len());
    for bug in &bugs {
        println!("{bug}");
    }
    Ok(ExitCode::FAILURE)
}

fn cmd_fix(rest: &[String]) -> Result<ExitCode, String> {
    let (path, flags) = parse_common(rest)?;
    let write = flags.iter().any(|(n, _)| n == "write");
    let src = read_source(&path)?;
    let pipeline = gfix::Pipeline::from_source(&src)?;
    let results = pipeline.run(&DetectorConfig::default());
    if results.bugs.is_empty() {
        println!("{path}: no concurrency bugs detected");
        return Ok(ExitCode::SUCCESS);
    }
    println!("{path}: {} bug(s), {} patched\n", results.bugs.len(), results.patches.len());
    let mut final_source: Option<String> = None;
    for patch in &results.patches {
        println!("[{}] {} ({} changed lines)", patch.strategy, patch.description, patch.changed_lines);
        for (before, after) in patch.before.lines().zip(patch.after.lines()) {
            if before != after {
                println!("  - {before}");
                println!("  + {after}");
            }
        }
        println!();
        // Sequential application: re-run later patches on the updated source
        // would be the full story; applying the first is the common case.
        if final_source.is_none() {
            final_source = Some(patch.after.clone());
        }
    }
    for (bug, why) in &results.rejections {
        println!("not fixed: {} — {why}", bug.primitive_name);
    }
    if write {
        if let Some(out) = final_source {
            std::fs::write(&path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote patched source to {path} (first patch applied)");
        }
    }
    Ok(ExitCode::FAILURE)
}

fn cmd_simulate(rest: &[String]) -> Result<ExitCode, String> {
    let (path, flags) = parse_common(rest)?;
    let seeds: u64 = flags
        .iter()
        .find(|(n, _)| n == "seeds")
        .and_then(|(_, v)| v.as_deref())
        .map_or(Ok(30), str::parse)
        .map_err(|e| format!("bad --seeds: {e}"))?;
    let entry = flags
        .iter()
        .find(|(n, _)| n == "entry")
        .and_then(|(_, v)| v.clone())
        .unwrap_or_else(|| "main".to_string());
    let src = read_source(&path)?;
    let module = gcatch_suite::ir::lower_source(&src)?;
    let simulator = sim::Simulator::new(&module);
    let config = sim::Config { entry, ..sim::Config::default() };
    let mut blocked = 0usize;
    let mut panicked = 0usize;
    let mut clean = 0usize;
    let mut sample: Option<sim::RunReport> = None;
    for report in simulator.explore(&config, 0..seeds) {
        match report.outcome {
            sim::Outcome::Clean => clean += 1,
            sim::Outcome::Panic(_) => panicked += 1,
            sim::Outcome::Leak | sim::Outcome::GlobalDeadlock => {
                blocked += 1;
                if sample.is_none() {
                    sample = Some(report);
                }
            }
            sim::Outcome::StepLimit => {}
        }
    }
    println!("{path}: {seeds} schedules — {clean} clean, {blocked} blocked, {panicked} panicked");
    if let Some(report) = sample {
        println!("example blocked schedule:");
        for b in &report.blocked {
            println!("  goroutine {} blocked in `{}` at {} ({:?})", b.id, b.func, b.span, b.reason);
        }
    }
    Ok(if blocked + panicked > 0 { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn cmd_extended(rest: &[String]) -> Result<ExitCode, String> {
    let (path, _) = parse_common(rest)?;
    let src = read_source(&path)?;
    let module = gcatch_suite::ir::lower_source(&src)?;
    let detector = Detector::new(&module);
    let bugs = detector.detect_send_on_closed(&DetectorConfig::default());
    if bugs.is_empty() {
        println!("{path}: no send-on-closed panics detected");
        return Ok(ExitCode::SUCCESS);
    }
    println!("{path}: {} potential panic(s)\n", bugs.len());
    for bug in &bugs {
        println!("{bug}");
    }
    Ok(ExitCode::FAILURE)
}
