//! Umbrella crate re-exporting the full GCatch/GFix reproduction API.
pub use gcatch;
pub use gfix;
pub use go_corpus as corpus;
pub use golite;
pub use golite_ir as ir;
pub use golite_sim as sim;
pub use minismt;
