//! Chaos drills for `gcatch sweep`: SIGKILL a live worker mid-job,
//! suppress heartbeats and lease renewals, and assert that the merged
//! report stays byte-identical to a single-process `gcatch batch` run —
//! with every killed worker's jobs re-leased and zero decisions lost or
//! duplicated in the output.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn gcatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcatch-suite"))
}

/// A scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcatch-sweep-it-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The checked-in batch corpus, relative to the workspace root the test
/// binary runs from.
fn corpus() -> &'static str {
    "examples/batch"
}

/// The single-process reference report every sweep must reproduce
/// byte-for-byte. `--no-hedge` because sweep workers run hedge-free
/// single-job engines (hedging is a thread-pool latency optimization; a
/// lease queue re-leases stragglers instead).
fn batch_reference(inputs: &[&str], report: &Path) {
    let out = gcatch()
        .args(["batch", "--no-hedge", "--report", report.to_str().unwrap()])
        .args(inputs)
        .output()
        .expect("gcatch batch runs");
    assert!(
        out.status.code() == Some(0) || out.status.code() == Some(1),
        "batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn read_counter(metrics: &Path, name: &str) -> u64 {
    let text = std::fs::read_to_string(metrics).expect("metrics file");
    text.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} not found in {}", metrics.display()))
}

/// SIGKILL drill: start a sweep whose jobs are slowed by injected
/// `batch.delay` faults (report-neutral), SIGKILL the first live worker
/// we can find mid-job, and assert the coordinator re-leases its jobs,
/// the sweep completes, and the merged report is byte-identical to an
/// uninterrupted single-process batch run.
#[test]
fn sigkilled_worker_jobs_are_released_and_the_report_is_unchanged() {
    let dir = scratch("kill");
    let reference = dir.join("reference.json");
    batch_reference(&[corpus()], &reference);

    let sweep_dir = dir.join("sweep");
    let report = dir.join("sweep.json");
    let metrics = dir.join("metrics.prom");
    let mut child = gcatch()
        .args([
            "sweep",
            corpus(),
            "--workers",
            "2",
            "--lease-ms",
            "200",
            "--dir",
            sweep_dir.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        // Delay-only faults: every job attempt sleeps 300 ms but decides
        // identically, giving us a window to SIGKILL a busy worker.
        .env("GCATCH_FAULT_RATE", "1.0")
        .env("GCATCH_FAULT_SITES", "batch.delay")
        .env("GCATCH_FAULT_DELAY_MS", "300")
        .spawn()
        .expect("sweep starts");

    // Find a live worker pid from the sweep's pids/ directory and kill
    // it dead — no signal handler can run, exactly like an OOM kill.
    let pids_dir = sweep_dir.join("pids");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut killed = false;
    while Instant::now() < deadline && !killed {
        if let Ok(entries) = std::fs::read_dir(&pids_dir) {
            for entry in entries.flatten() {
                if let Ok(pid) = std::fs::read_to_string(entry.path())
                    .unwrap_or_default()
                    .trim()
                    .parse::<u32>()
                {
                    let out = Command::new("kill")
                        .args(["-9", &pid.to_string()])
                        .output()
                        .expect("kill runs");
                    if out.status.success() {
                        killed = true;
                        break;
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(killed, "never found a live worker to SIGKILL");

    let status = child.wait().expect("sweep finishes");
    assert_eq!(status.code(), Some(1), "corpus has bugs: sweep exits 1");

    let reference_bytes = std::fs::read(&reference).unwrap();
    let sweep_bytes = std::fs::read(&report).unwrap();
    assert!(!reference_bytes.is_empty());
    assert_eq!(
        reference_bytes, sweep_bytes,
        "SIGKILL changed the merged report"
    );
    assert!(
        read_counter(&metrics, "gcatch_workers_lost_total") >= 1,
        "the killed worker must be declared lost"
    );
    assert!(
        read_counter(&metrics, "gcatch_jobs_releases_total") >= 1,
        "the killed worker's job must be re-leased"
    );
    assert!(
        read_counter(&metrics, "gcatch_workers_spawned_total") >= 3,
        "a replacement worker must be spawned"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Duplicate-decision drill: `sweep.lease` at rate 1.0 stops every claim
/// from renewing, and `batch.delay` makes each job outlive its lease, so
/// the job is re-leased to a second worker while the first keeps working.
/// Both decide; the merge must keep exactly one record (the report stays
/// byte-identical) and surface the duplicate as a warning.
#[test]
fn duplicate_decisions_keep_one_record_and_surface_an_incident() {
    let dir = scratch("dup");
    let module = "examples/batch/leak_unbuffered.go";
    let reference = dir.join("reference.json");
    batch_reference(&[module], &reference);

    let report = dir.join("sweep.json");
    let out = gcatch()
        .args([
            "sweep",
            module,
            "--workers",
            "2",
            "--lease-ms",
            "100",
            // A generous re-lease budget: this drill is about duplicate
            // decisions, not the quarantine path.
            "--max-releases",
            "10",
            "--report",
            report.to_str().unwrap(),
        ])
        .env("GCATCH_FAULT_RATE", "1.0")
        .env("GCATCH_FAULT_SITES", "sweep.lease,batch.delay")
        .env("GCATCH_FAULT_DELAY_MS", "400")
        .output()
        .expect("sweep runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "module has a bug: sweep exits 1 (stderr: {})",
        String::from_utf8_lossy(&out.stderr)
    );

    let reference_bytes = std::fs::read(&reference).unwrap();
    let sweep_bytes = std::fs::read(&report).unwrap();
    assert_eq!(
        reference_bytes, sweep_bytes,
        "a duplicate decision corrupted the report"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("duplicate decision for examples/batch/leak_unbuffered.go"),
        "duplicate must surface on stderr, got: {stderr}"
    );
    assert!(
        stderr.contains("all decisions agreed"),
        "both decisions are pure functions of the module, got: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Heartbeat drill: `sweep.heartbeat` at rate 1.0 makes every worker
/// live-but-silent, so the coordinator must cull and replace the fleet on
/// staleness alone — and the sweep still converges to the exact
/// single-process report.
#[test]
fn silent_workers_are_culled_and_the_sweep_still_converges() {
    let dir = scratch("hb");
    let reference = dir.join("reference.json");
    batch_reference(&[corpus()], &reference);

    let report = dir.join("sweep.json");
    let metrics = dir.join("metrics.prom");
    let out = gcatch()
        .args([
            "sweep",
            corpus(),
            "--workers",
            "2",
            "--lease-ms",
            "150",
            "--report",
            report.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .env("GCATCH_FAULT_RATE", "1.0")
        .env("GCATCH_FAULT_SITES", "sweep.heartbeat,batch.delay")
        .env("GCATCH_FAULT_DELAY_MS", "250")
        .output()
        .expect("sweep runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&report).unwrap(),
        "heartbeat suppression changed the merged report"
    );
    assert!(
        read_counter(&metrics, "gcatch_workers_lost_total") >= 1,
        "silent workers must be culled"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Quarantine drill: `sweep.worker` at rate 1.0 kills every claimant, so
/// the job burns through its re-lease budget and the coordinator must
/// quarantine it with the full lease history attached — and terminate
/// rather than re-lease forever.
#[test]
fn release_cap_quarantines_with_the_coordinator_postmortem() {
    let dir = scratch("cap");
    let module = "examples/batch/leak_unbuffered.go";
    let report = dir.join("sweep.json");
    let out = gcatch()
        .args([
            "sweep",
            module,
            "--workers",
            "2",
            "--lease-ms",
            "200",
            "--max-releases",
            "2",
            "--strict",
            "--report",
            report.to_str().unwrap(),
        ])
        .env("GCATCH_FAULT_RATE", "1.0")
        .env("GCATCH_FAULT_SITES", "sweep.worker")
        .output()
        .expect("sweep runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "--strict + quarantine exits 2, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&report).unwrap();
    assert!(
        report.contains("\"quarantined\":true"),
        "job must be quarantined: {report}"
    );
    assert!(
        report.contains("re-lease budget 2"),
        "quarantine message names the budget: {report}"
    );
    assert!(
        report.contains("lost while holding lease"),
        "the coordinator's flight recorder rides along: {report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Fleet-size determinism: the merged report is byte-identical across
/// `--workers 1` and `--workers 4` (and to single-process batch), because
/// each decision is a pure function of its module.
#[test]
fn report_is_identical_across_fleet_sizes() {
    let dir = scratch("sizes");
    let reference = dir.join("reference.json");
    batch_reference(&[corpus()], &reference);
    let reference_bytes = std::fs::read(&reference).unwrap();

    for workers in ["1", "4"] {
        let report = dir.join(format!("sweep-{workers}.json"));
        let out = gcatch()
            .args([
                "sweep",
                corpus(),
                "--workers",
                workers,
                "--report",
                report.to_str().unwrap(),
            ])
            .output()
            .expect("sweep runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            reference_bytes,
            std::fs::read(&report).unwrap(),
            "--workers {workers} diverged from single-process batch"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Usage errors exit 2 before any worker spawns.
#[test]
fn sweep_usage_errors_exit_2() {
    for args in [
        vec!["sweep"],
        vec!["sweep", "--workers", "0", "examples/batch"],
        vec!["sweep", "--bogus-flag", "examples/batch"],
        vec!["sweep", "--fault-seed", "3", "examples/batch"],
        vec!["worker", "--id", "w0"],
        vec!["worker", "--dir", "/nonexistent-gcatch", "--id", "w0"],
    ] {
        let out = gcatch().args(&args).output().expect("gcatch runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
    }
}

/// SIGTERM drill: interrupt a live sweep coordinator mid-run. The
/// coordinator must write the shutdown marker, let workers finish their
/// current job, merge every decided job into the report, clean up pids/
/// and stale leases, and exit 130 — leaving no orphan workers behind.
#[test]
fn sigterm_interrupts_the_sweep_cleanly_with_partial_results() {
    let dir = scratch("term");
    let sweep_dir = dir.join("sweep");
    let report = dir.join("sweep.json");
    let mut child = gcatch()
        .args([
            "sweep",
            corpus(),
            "--workers",
            "2",
            "--dir",
            sweep_dir.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ])
        // Delay-only faults slow every job down so the interrupt lands
        // while most of the corpus is still undecided.
        .env("GCATCH_FAULT_RATE", "1.0")
        .env("GCATCH_FAULT_SITES", "batch.delay")
        .env("GCATCH_FAULT_DELAY_MS", "400")
        .stderr(Stdio::piped())
        .spawn()
        .expect("sweep starts");

    // Wait for the fleet to exist (a worker pid file appears), then
    // SIGTERM the coordinator.
    let pids_dir = sweep_dir.join("pids");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "workers never spawned");
        let live = std::fs::read_dir(&pids_dir).map(|d| d.count()).unwrap_or(0);
        if live > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let worker_pids: Vec<String> = std::fs::read_dir(&pids_dir)
        .unwrap()
        .flatten()
        .filter_map(|e| std::fs::read_to_string(e.path()).ok())
        .map(|p| p.trim().to_string())
        .collect();
    let out = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .output()
        .expect("kill runs");
    assert!(out.status.success(), "SIGTERM delivered");

    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .expect("stderr read");
    let status = child.wait().expect("sweep exits");
    assert_eq!(
        status.code(),
        Some(130),
        "interrupted sweep exits 130 (stderr: {stderr})"
    );
    assert!(stderr.contains("sweep interrupted"), "{stderr}");

    // No orphans: every worker the coordinator had spawned is gone.
    for pid in &worker_pids {
        let gone = Command::new("kill")
            .args(["-0", pid])
            .output()
            .expect("kill -0 runs");
        assert!(
            !gone.status.success(),
            "worker {pid} still alive after coordinator exit"
        );
    }
    // No stale state: pids/ is empty and no undecided job holds a lease.
    let pids_left = std::fs::read_dir(&pids_dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(pids_left, 0, "pids/ must be cleaned up");
    let leases_left = std::fs::read_dir(sweep_dir.join("leases"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leases_left, 0, "stale leases must be removed");
    // The shutdown marker persists so late-waking workers also stop.
    assert!(
        sweep_dir.join("shutdown").exists(),
        "shutdown marker must be written"
    );
    std::fs::remove_dir_all(&dir).ok();
}
