//! Integration tests for the `gcatch` CLI binary.

use std::process::Command;

fn gcatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcatch-suite"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("gcatch-cli-{name}-{}.go", std::process::id()));
    std::fs::write(&path, contents).expect("temp file written");
    path
}

const BUGGY: &str = r#"
package main

func main() {
    done := make(chan int)
    quit := make(chan int, 1)
    quit <- 1
    go func() {
        done <- 1
    }()
    select {
    case <-done:
    case <-quit:
    }
}
"#;

const CLEAN: &str = r#"
package main

func main() {
    ch := make(chan int)
    go func() {
        ch <- 1
    }()
    <-ch
}
"#;

#[test]
fn check_reports_bugs_with_exit_1() {
    let path = write_temp("check-buggy", BUGGY);
    let out = gcatch()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BMOC-C"), "stdout: {stdout}");
    assert!(stdout.contains("done"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_clean_program_exits_0() {
    let path = write_temp("check-clean", CLEAN);
    let out = gcatch()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn fix_prints_a_strategy1_diff() {
    let path = write_temp("fix-buggy", BUGGY);
    let out = gcatch()
        .args(["fix", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[S-I]"), "stdout: {stdout}");
    assert!(stdout.contains("make(chan int, 1)"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn fix_write_applies_the_patch() {
    let path = write_temp("fix-write", BUGGY);
    let out = gcatch()
        .args(["fix", "--write", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let patched = std::fs::read_to_string(&path).unwrap();
    assert!(
        patched.contains("done := make(chan int, 1)"),
        "patched:\n{patched}"
    );
    // The patched file must now be clean.
    let out = gcatch()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn simulate_counts_blocked_schedules() {
    let path = write_temp("simulate", BUGGY);
    let out = gcatch()
        .args(["simulate", path.to_str().unwrap(), "--seeds", "40"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blocked"), "stdout: {stdout}");
    assert!(
        stdout.contains("example blocked schedule"),
        "stdout: {stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn extended_detects_send_on_closed() {
    let src = r#"
package main

func main() {
    ch := make(chan int, 1)
    go func() {
        ch <- 1
    }()
    close(ch)
}
"#;
    let path = write_temp("extended", src);
    let out = gcatch()
        .args(["extended", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SendOnClosed"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = gcatch().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = gcatch().args(["bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = gcatch()
        .args(["check", "/nonexistent/x.go"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flags_are_rejected_with_exit_2() {
    let path = write_temp("unknown-flag", CLEAN);
    for args in [
        vec!["check", "--frobnicate"],
        vec!["check", "--write"], // a fix flag, not a check flag
        vec!["fix", "--json"],    // a check flag, not a fix flag
        vec!["simulate", "--jobs", "2"],
        vec!["simulate", "--trace", "/tmp/t.json"], // tracing is check/fix/extended only
        vec!["simulate", "--explain"],
        vec!["extended", "--only", "bmoc"],
        // The budget flags belong to check/extended only.
        vec!["fix", "--strict"],
        vec!["fix", "--timeout", "1"],
        vec!["simulate", "--timeout", "1"],
        vec!["simulate", "--channel-timeout", "5"],
        vec!["simulate", "--strict"],
        vec!["fix", "--solver-steps", "10"],
        vec!["simulate", "--step-pool", "100"],
    ] {
        let mut full = args.clone();
        let p = path.to_str().unwrap();
        full.push(p);
        let out = gcatch().args(&full).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} should be rejected"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown flag"),
            "stderr for {args:?}: {stderr}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn check_json_emits_structured_diagnostics() {
    let path = write_temp("check-json", BUGGY);
    let out = gcatch()
        .args(["check", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("{\"version\":1,\"diagnostics\":["),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"id\":\"GC-"), "stdout: {stdout}");
    assert!(stdout.contains("\"checker\":\"bmoc\""), "stdout: {stdout}");
    assert!(
        stdout.contains("\"severity\":\"error\""),
        "stdout: {stdout}"
    );
    assert!(
        !stdout.contains("\"stats\""),
        "no stats unless --stats: {stdout}"
    );

    let out = gcatch()
        .args(["check", "--json", "--stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"stats\":{\"counters\":{"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"solver_queries\":"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_only_and_skip_select_checkers() {
    let path = write_temp("check-only", BUGGY);
    let p = path.to_str().unwrap();
    // The bug is BMOC-only, so skipping bmoc makes the run clean...
    let out = gcatch()
        .args(["check", "--skip", "bmoc", p])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // ...and selecting only bmoc still reports it.
    let out = gcatch()
        .args(["check", "--only", "bmoc", p])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Unknown checker names are usage errors.
    let out = gcatch()
        .args(["check", "--only", "nope", p])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown checker"), "stderr: {stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_jobs_values_agree() {
    let path = write_temp("check-jobs", BUGGY);
    let p = path.to_str().unwrap();
    let run = |jobs: &str| {
        let out = gcatch()
            .args(["check", "--json", "--jobs", jobs, p])
            .output()
            .unwrap();
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(run("1"), run("8"), "--jobs must not change the diagnostics");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_stats_prints_counters() {
    let path = write_temp("check-stats", CLEAN);
    let out = gcatch()
        .args(["check", "--stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stage timings:"), "stdout: {stdout}");
    assert!(stdout.contains("channels_analyzed"), "stdout: {stdout}");
    // Durations render as fixed-point milliseconds, and the percentile
    // section reports every histogram metric.
    assert!(stdout.contains(" ms\n"), "stdout: {stdout}");
    assert!(
        stdout.contains("percentiles (p50/p90/p99/max):"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("channel_detect_ns"), "stdout: {stdout}");
    assert!(stdout.contains("solver_query_ns"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_trace_writes_chrome_trace_events() {
    let path = write_temp("check-trace", BUGGY);
    let trace = std::env::temp_dir().join(format!("gcatch-cli-trace-{}.json", std::process::id()));
    let out = gcatch()
        .args([
            "check",
            "--trace",
            trace.to_str().unwrap(),
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(text.starts_with("{\"traceEvents\":["), "trace: {text}");
    for needle in [
        "\"name\":\"session\"",
        "\"name\":\"bmoc_channel\"",
        "\"name\":\"dpll\"",
        "\"bmoc-worker-0\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in trace: {text}");
    }
    std::fs::remove_file(path).ok();
    std::fs::remove_file(trace).ok();
}

#[test]
fn trace_level_env_override_is_validated() {
    let path = write_temp("check-trace-env", CLEAN);
    let trace = std::env::temp_dir().join(format!("gcatch-cli-lvl-{}.json", std::process::id()));
    // A bad level is a usage error...
    let out = gcatch()
        .args(["check", "--trace", trace.to_str().unwrap()])
        .arg(path.to_str().unwrap())
        .env("GCATCH_TRACE_LEVEL", "verbose")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("GCATCH_TRACE_LEVEL"), "stderr: {stderr}");
    // ...and `off` suppresses recording even with --trace present.
    let out = gcatch()
        .args(["check", "--trace", trace.to_str().unwrap()])
        .arg(path.to_str().unwrap())
        .env("GCATCH_TRACE_LEVEL", "off")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(
        !text.contains("\"name\":\"session\""),
        "off level must record nothing: {text}"
    );
    std::fs::remove_file(path).ok();
    std::fs::remove_file(trace).ok();
}

#[test]
fn check_explain_prints_provenance() {
    let path = write_temp("check-explain", BUGGY);
    let out = gcatch()
        .args(["check", "--explain", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("why: channel `done`"), "stdout: {stdout}");
    assert!(
        stdout.contains("solver verdict `blocking`"),
        "stdout: {stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn check_json_carries_provenance() {
    let path = write_temp("check-json-prov", BUGGY);
    let out = gcatch()
        .args(["check", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"provenance\":{\"channel\":\"done\""),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("\"solver_verdict\":\"blocking\""),
        "stdout: {stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn fix_explain_and_trace_cover_the_first_round() {
    let path = write_temp("fix-explain", BUGGY);
    let trace = std::env::temp_dir().join(format!("gcatch-cli-fixtr-{}.json", std::process::id()));
    let out = gcatch()
        .args(["fix", "--explain", "--trace", trace.to_str().unwrap()])
        .arg(path.to_str().unwrap())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("why: channel `done`"), "stdout: {stdout}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(text.contains("\"name\":\"fix_bug\""), "trace: {text}");
    assert!(text.contains("\"name\":\"fix_applied\""), "trace: {text}");
    std::fs::remove_file(path).ok();
    std::fs::remove_file(trace).ok();
}

#[test]
fn bad_budget_flag_values_exit_2() {
    let path = write_temp("bad-budget", CLEAN);
    let p = path.to_str().unwrap();
    for args in [
        vec!["check", "--timeout", "abc"],
        vec!["check", "--channel-timeout", "-5"],
        vec!["check", "--solver-steps", "many"],
        vec!["extended", "--step-pool", "1.5"],
    ] {
        let mut full = args.clone();
        full.push(p);
        let out = gcatch().args(&full).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} should be rejected"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("bad --"), "stderr for {args:?}: {stderr}");
    }
    std::fs::remove_file(path).ok();
}

/// A checker that panics (the env-gated `panic-test` debug hook) must not
/// abort the run: the other checkers still report, exactly one incident is
/// printed, output is bit-identical across `--jobs`, and only `--strict`
/// turns the incident into exit code 2.
#[test]
fn panicking_checker_becomes_one_deterministic_incident() {
    let path = write_temp("panic-checker", CLEAN);
    let p = path.to_str().unwrap();
    let run = |extra: &[&str]| {
        let mut args = vec!["check"];
        args.extend_from_slice(extra);
        args.push(p);
        gcatch()
            .args(&args)
            .env("GCATCH_DEBUG_PANIC_CHECKER", "1")
            .output()
            .unwrap()
    };

    let out = run(&[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "incidents alone must not fail the run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(
        stdout.matches("incident:").count(),
        1,
        "exactly one incident: {stdout}"
    );
    assert!(
        stdout.contains("incident: checker `panic-test`: deliberate panic"),
        "stdout: {stdout}"
    );

    let jobs1 = run(&["--jobs", "1"]);
    let jobs4 = run(&["--jobs", "4"]);
    assert_eq!(
        jobs1.stdout, jobs4.stdout,
        "incident output must be bit-identical across --jobs"
    );

    let strict = run(&["--strict"]);
    assert_eq!(
        strict.status.code(),
        Some(2),
        "--strict turns incidents into exit 2"
    );

    let json = run(&["--json"]);
    let jtext = String::from_utf8_lossy(&json.stdout);
    assert!(
        jtext.contains("\"incidents\":[{\"kind\":\"checker\",\"name\":\"panic-test\""),
        "json: {jtext}"
    );
    std::fs::remove_file(path).ok();
}

/// A ring of circularly-waiting goroutines whose blocking queries need
/// real DPLL search — the CLI-level pathological input for the budget and
/// degradation-ladder flags (same shape as `examples/pathological.go`).
const RING: &str = r#"
package main

func main() {
    ch0 := make(chan int)
    ch1 := make(chan int)
    ch2 := make(chan int)
    go func() {
        ch0 <- 1
        <-ch1
    }()
    go func() {
        ch1 <- 1
        <-ch2
    }()
    go func() {
        ch2 <- 1
        <-ch0
    }()
    <-ch0
}
"#;

#[test]
fn exhausted_budget_reports_incidents_and_strict_exit() {
    let path = write_temp("budget-ring", RING);
    let p = path.to_str().unwrap();
    // 10 solver steps per query: every query gives up deterministically,
    // the ladder runs dry, and the run says so instead of reporting bugs.
    let out = gcatch()
        .args([
            "check",
            "--solver-steps",
            "10",
            "--channel-timeout",
            "60000",
            p,
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("incident: channel"), "stdout: {stdout}");
    assert!(
        stdout.contains("gave up at ladder rung"),
        "stdout: {stdout}"
    );

    let strict = gcatch()
        .args([
            "check",
            "--solver-steps",
            "10",
            "--channel-timeout",
            "60000",
            "--strict",
            p,
        ])
        .output()
        .unwrap();
    assert_eq!(
        strict.status.code(),
        Some(2),
        "--strict escalates incidents"
    );

    // The incomplete-channel count surfaces in --stats.
    let stats = gcatch()
        .args([
            "check",
            "--solver-steps",
            "10",
            "--channel-timeout",
            "60000",
            "--stats",
            p,
        ])
        .output()
        .unwrap();
    let stext = String::from_utf8_lossy(&stats.stdout);
    assert!(stext.contains("incomplete_channels"), "stats: {stext}");
    std::fs::remove_file(path).ok();
}

#[test]
fn ladder_recovers_findings_and_explains_the_rung() {
    let path = write_temp("ladder-ring", RING);
    let p = path.to_str().unwrap();
    // 200 steps per query: rung 0/1 formulas go Unknown, rung 2's
    // channel-only Pset shrinks them enough to solve.
    let out = gcatch()
        .args([
            "check",
            "--solver-steps",
            "200",
            "--channel-timeout",
            "60000",
            "--explain",
            p,
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "the ring deadlock must still be found: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("found at ladder rung"), "stdout: {stdout}");

    // And a whole-run --timeout is accepted and finishes promptly.
    let out = gcatch()
        .args(["check", "--timeout", "10", p])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(path).ok();
}

/// Two independent bugs: the old CLI applied only the first patch under
/// `--write`; the fixpoint loop must apply both.
const TWO_BUGS: &str = r#"
package main

func a() {
    d1 := make(chan int)
    go func() {
        d1 <- 1
    }()
    select {
    case <-d1:
    default:
    }
}

func b() {
    d2 := make(chan int)
    go func() {
        d2 <- 2
    }()
    select {
    case <-d2:
    default:
    }
}

func main() {
    a()
    b()
}
"#;

#[test]
fn fix_write_applies_all_patches_to_fixpoint() {
    let path = write_temp("fix-fixpoint", TWO_BUGS);
    let p = path.to_str().unwrap();
    let out = gcatch().args(["fix", "--write", p]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 patch(es) applied"), "stdout: {stdout}");
    let patched = std::fs::read_to_string(&path).unwrap();
    assert!(
        patched.contains("d1 := make(chan int, 1)"),
        "patched:\n{patched}"
    );
    assert!(
        patched.contains("d2 := make(chan int, 1)"),
        "patched:\n{patched}"
    );
    // The patched file must now be clean.
    let out = gcatch().args(["check", p]).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(path).ok();
}
