//! Integration tests for the `gcatch` CLI binary.

use std::process::Command;

fn gcatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcatch-suite"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("gcatch-cli-{name}-{}.go", std::process::id()));
    std::fs::write(&path, contents).expect("temp file written");
    path
}

const BUGGY: &str = r#"
package main

func main() {
    done := make(chan int)
    quit := make(chan int, 1)
    quit <- 1
    go func() {
        done <- 1
    }()
    select {
    case <-done:
    case <-quit:
    }
}
"#;

const CLEAN: &str = r#"
package main

func main() {
    ch := make(chan int)
    go func() {
        ch <- 1
    }()
    <-ch
}
"#;

#[test]
fn check_reports_bugs_with_exit_1() {
    let path = write_temp("check-buggy", BUGGY);
    let out = gcatch()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BMOC-C"), "stdout: {stdout}");
    assert!(stdout.contains("done"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_clean_program_exits_0() {
    let path = write_temp("check-clean", CLEAN);
    let out = gcatch()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn fix_prints_a_strategy1_diff() {
    let path = write_temp("fix-buggy", BUGGY);
    let out = gcatch()
        .args(["fix", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[S-I]"), "stdout: {stdout}");
    assert!(stdout.contains("make(chan int, 1)"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn fix_write_applies_the_patch() {
    let path = write_temp("fix-write", BUGGY);
    let out = gcatch()
        .args(["fix", "--write", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let patched = std::fs::read_to_string(&path).unwrap();
    assert!(
        patched.contains("done := make(chan int, 1)"),
        "patched:\n{patched}"
    );
    // The patched file must now be clean.
    let out = gcatch()
        .args(["check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn simulate_counts_blocked_schedules() {
    let path = write_temp("simulate", BUGGY);
    let out = gcatch()
        .args(["simulate", path.to_str().unwrap(), "--seeds", "40"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blocked"), "stdout: {stdout}");
    assert!(
        stdout.contains("example blocked schedule"),
        "stdout: {stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn extended_detects_send_on_closed() {
    let src = r#"
package main

func main() {
    ch := make(chan int, 1)
    go func() {
        ch <- 1
    }()
    close(ch)
}
"#;
    let path = write_temp("extended", src);
    let out = gcatch()
        .args(["extended", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SendOnClosed"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = gcatch().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = gcatch().args(["bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = gcatch()
        .args(["check", "/nonexistent/x.go"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flags_are_rejected_with_exit_2() {
    let path = write_temp("unknown-flag", CLEAN);
    for args in [
        vec!["check", "--frobnicate"],
        vec!["check", "--write"], // a fix flag, not a check flag
        vec!["fix", "--json"],    // a check flag, not a fix flag
        vec!["simulate", "--jobs", "2"],
        vec!["simulate", "--trace", "/tmp/t.json"], // tracing is check/fix/extended only
        vec!["simulate", "--explain"],
        vec!["extended", "--only", "bmoc"],
    ] {
        let mut full = args.clone();
        let p = path.to_str().unwrap();
        full.push(p);
        let out = gcatch().args(&full).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} should be rejected"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown flag"),
            "stderr for {args:?}: {stderr}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn check_json_emits_structured_diagnostics() {
    let path = write_temp("check-json", BUGGY);
    let out = gcatch()
        .args(["check", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("{\"version\":1,\"diagnostics\":["),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"id\":\"GC-"), "stdout: {stdout}");
    assert!(stdout.contains("\"checker\":\"bmoc\""), "stdout: {stdout}");
    assert!(
        stdout.contains("\"severity\":\"error\""),
        "stdout: {stdout}"
    );
    assert!(
        !stdout.contains("\"stats\""),
        "no stats unless --stats: {stdout}"
    );

    let out = gcatch()
        .args(["check", "--json", "--stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"stats\":{\"counters\":{"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"solver_queries\":"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_only_and_skip_select_checkers() {
    let path = write_temp("check-only", BUGGY);
    let p = path.to_str().unwrap();
    // The bug is BMOC-only, so skipping bmoc makes the run clean...
    let out = gcatch()
        .args(["check", "--skip", "bmoc", p])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // ...and selecting only bmoc still reports it.
    let out = gcatch()
        .args(["check", "--only", "bmoc", p])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Unknown checker names are usage errors.
    let out = gcatch()
        .args(["check", "--only", "nope", p])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown checker"), "stderr: {stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_jobs_values_agree() {
    let path = write_temp("check-jobs", BUGGY);
    let p = path.to_str().unwrap();
    let run = |jobs: &str| {
        let out = gcatch()
            .args(["check", "--json", "--jobs", jobs, p])
            .output()
            .unwrap();
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(run("1"), run("8"), "--jobs must not change the diagnostics");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_stats_prints_counters() {
    let path = write_temp("check-stats", CLEAN);
    let out = gcatch()
        .args(["check", "--stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stage timings:"), "stdout: {stdout}");
    assert!(stdout.contains("channels_analyzed"), "stdout: {stdout}");
    // Durations render as fixed-point milliseconds, and the percentile
    // section reports every histogram metric.
    assert!(stdout.contains(" ms\n"), "stdout: {stdout}");
    assert!(
        stdout.contains("percentiles (p50/p90/p99/max):"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("channel_detect_ns"), "stdout: {stdout}");
    assert!(stdout.contains("solver_query_ns"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_trace_writes_chrome_trace_events() {
    let path = write_temp("check-trace", BUGGY);
    let trace = std::env::temp_dir().join(format!("gcatch-cli-trace-{}.json", std::process::id()));
    let out = gcatch()
        .args([
            "check",
            "--trace",
            trace.to_str().unwrap(),
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(text.starts_with("{\"traceEvents\":["), "trace: {text}");
    for needle in [
        "\"name\":\"session\"",
        "\"name\":\"bmoc_channel\"",
        "\"name\":\"dpll\"",
        "\"bmoc-worker-0\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in trace: {text}");
    }
    std::fs::remove_file(path).ok();
    std::fs::remove_file(trace).ok();
}

#[test]
fn trace_level_env_override_is_validated() {
    let path = write_temp("check-trace-env", CLEAN);
    let trace = std::env::temp_dir().join(format!("gcatch-cli-lvl-{}.json", std::process::id()));
    // A bad level is a usage error...
    let out = gcatch()
        .args(["check", "--trace", trace.to_str().unwrap()])
        .arg(path.to_str().unwrap())
        .env("GCATCH_TRACE_LEVEL", "verbose")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("GCATCH_TRACE_LEVEL"), "stderr: {stderr}");
    // ...and `off` suppresses recording even with --trace present.
    let out = gcatch()
        .args(["check", "--trace", trace.to_str().unwrap()])
        .arg(path.to_str().unwrap())
        .env("GCATCH_TRACE_LEVEL", "off")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(
        !text.contains("\"name\":\"session\""),
        "off level must record nothing: {text}"
    );
    std::fs::remove_file(path).ok();
    std::fs::remove_file(trace).ok();
}

#[test]
fn check_explain_prints_provenance() {
    let path = write_temp("check-explain", BUGGY);
    let out = gcatch()
        .args(["check", "--explain", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("why: channel `done`"), "stdout: {stdout}");
    assert!(
        stdout.contains("solver verdict `blocking`"),
        "stdout: {stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn check_json_carries_provenance() {
    let path = write_temp("check-json-prov", BUGGY);
    let out = gcatch()
        .args(["check", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"provenance\":{\"channel\":\"done\""),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("\"solver_verdict\":\"blocking\""),
        "stdout: {stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn fix_explain_and_trace_cover_the_first_round() {
    let path = write_temp("fix-explain", BUGGY);
    let trace = std::env::temp_dir().join(format!("gcatch-cli-fixtr-{}.json", std::process::id()));
    let out = gcatch()
        .args(["fix", "--explain", "--trace", trace.to_str().unwrap()])
        .arg(path.to_str().unwrap())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("why: channel `done`"), "stdout: {stdout}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(text.contains("\"name\":\"fix_bug\""), "trace: {text}");
    assert!(text.contains("\"name\":\"fix_applied\""), "trace: {text}");
    std::fs::remove_file(path).ok();
    std::fs::remove_file(trace).ok();
}

/// Two independent bugs: the old CLI applied only the first patch under
/// `--write`; the fixpoint loop must apply both.
const TWO_BUGS: &str = r#"
package main

func a() {
    d1 := make(chan int)
    go func() {
        d1 <- 1
    }()
    select {
    case <-d1:
    default:
    }
}

func b() {
    d2 := make(chan int)
    go func() {
        d2 <- 2
    }()
    select {
    case <-d2:
    default:
    }
}

func main() {
    a()
    b()
}
"#;

#[test]
fn fix_write_applies_all_patches_to_fixpoint() {
    let path = write_temp("fix-fixpoint", TWO_BUGS);
    let p = path.to_str().unwrap();
    let out = gcatch().args(["fix", "--write", p]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 patch(es) applied"), "stdout: {stdout}");
    let patched = std::fs::read_to_string(&path).unwrap();
    assert!(
        patched.contains("d1 := make(chan int, 1)"),
        "patched:\n{patched}"
    );
    assert!(
        patched.contains("d2 := make(chan int, 1)"),
        "patched:\n{patched}"
    );
    // The patched file must now be clean.
    let out = gcatch().args(["check", p]).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(path).ok();
}
