//! Integration tests for the `gcatch` CLI binary.

use std::process::Command;

fn gcatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcatch-suite"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("gcatch-cli-{name}-{}.go", std::process::id()));
    std::fs::write(&path, contents).expect("temp file written");
    path
}

const BUGGY: &str = r#"
package main

func main() {
    done := make(chan int)
    quit := make(chan int, 1)
    quit <- 1
    go func() {
        done <- 1
    }()
    select {
    case <-done:
    case <-quit:
    }
}
"#;

const CLEAN: &str = r#"
package main

func main() {
    ch := make(chan int)
    go func() {
        ch <- 1
    }()
    <-ch
}
"#;

#[test]
fn check_reports_bugs_with_exit_1() {
    let path = write_temp("check-buggy", BUGGY);
    let out = gcatch().args(["check", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BMOC-C"), "stdout: {stdout}");
    assert!(stdout.contains("done"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_clean_program_exits_0() {
    let path = write_temp("check-clean", CLEAN);
    let out = gcatch().args(["check", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_file(path).ok();
}

#[test]
fn fix_prints_a_strategy1_diff() {
    let path = write_temp("fix-buggy", BUGGY);
    let out = gcatch().args(["fix", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[S-I]"), "stdout: {stdout}");
    assert!(stdout.contains("make(chan int, 1)"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn fix_write_applies_the_patch() {
    let path = write_temp("fix-write", BUGGY);
    let out = gcatch().args(["fix", "--write", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let patched = std::fs::read_to_string(&path).unwrap();
    assert!(patched.contains("done := make(chan int, 1)"), "patched:\n{patched}");
    // The patched file must now be clean.
    let out = gcatch().args(["check", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    std::fs::remove_file(path).ok();
}

#[test]
fn simulate_counts_blocked_schedules() {
    let path = write_temp("simulate", BUGGY);
    let out = gcatch()
        .args(["simulate", path.to_str().unwrap(), "--seeds", "40"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blocked"), "stdout: {stdout}");
    assert!(stdout.contains("example blocked schedule"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn extended_detects_send_on_closed() {
    let src = r#"
package main

func main() {
    ch := make(chan int, 1)
    go func() {
        ch <- 1
    }()
    close(ch)
}
"#;
    let path = write_temp("extended", src);
    let out = gcatch().args(["extended", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SendOnClosed"), "stdout: {stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = gcatch().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = gcatch().args(["bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = gcatch().args(["check", "/nonexistent/x.go"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
