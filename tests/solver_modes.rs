//! Differential testing of the solver strategies: the incremental
//! per-channel solver must be a pure optimization. Over the example corpus
//! and a stream of random programs, `--solver-mode incremental` and
//! `--solver-mode fresh` must produce byte-identical diagnostics and
//! incident sets, and the legacy rescan engine must agree on which bugs
//! exist (its witnesses may pick a different satisfying schedule).

use gcatch_suite::gcatch::{render_json, DetectorConfig, GCatch, Selection, SolverStrategy};
use prng::Prng;

/// Rendered diagnostics + rendered incidents for one module under one
/// strategy, across both the default registry and the §6 extension.
fn run_module(source: &str, strategy: SolverStrategy, jobs: usize) -> (String, Vec<String>) {
    let module = golite_ir::lower_source(source).expect("module lowers");
    let gcatch = GCatch::new(&module);
    let config = DetectorConfig {
        solver_strategy: strategy,
        jobs,
        ..DetectorConfig::default()
    };
    let extended = Selection {
        only: vec!["send-on-closed".to_string()],
        skip: Vec::new(),
    };
    let mut rendered = String::new();
    for selection in [&Selection::default(), &extended] {
        let diagnostics = gcatch.diagnostics(&config, selection);
        rendered.push_str(&render_json(&diagnostics, None));
        rendered.push('\n');
    }
    let incidents = gcatch
        .session()
        .incidents()
        .iter()
        .map(|i| i.render())
        .collect();
    (rendered, incidents)
}

/// The diagnostic IDs embedded in a rendered report (strategy-independent
/// fingerprint of *which* bugs were found).
fn ids(rendered: &str) -> Vec<&str> {
    rendered
        .split("\"id\":\"")
        .skip(1)
        .filter_map(|rest| rest.split('"').next())
        .collect()
}

/// Every example module, as `(name, source)`.
fn example_sources() -> Vec<(String, String)> {
    let mut files = Vec::new();
    for dir in ["examples", "examples/batch"] {
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .expect("examples directory exists")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "go"))
            .collect();
        entries.sort();
        files.extend(entries);
    }
    files
        .into_iter()
        .map(|p| {
            let name = p.display().to_string();
            let source = std::fs::read_to_string(&p).expect("example readable");
            (name, source)
        })
        .collect()
}

/// Same snippet-composition generator as the robustness fuzzer (tests are
/// separate crates, so the generator is replicated here verbatim).
fn random_program(seed: u64) -> String {
    let mut rng = Prng::seed_from_u64(seed);
    let n_funcs = rng.gen_range(1..4usize);
    let mut src = String::from("package main\n");
    for f in 0..n_funcs {
        let cap = rng.gen_range(0..3u32);
        let spawn = rng.gen_bool(0.7);
        let select = rng.gen_bool(0.5);
        let deferred = rng.gen_bool(0.4);
        let recv_count = rng.gen_range(0..3u32);
        let mut body = format!("    ch{f} := make(chan int, {cap})\n");
        if deferred {
            body.push_str(&format!("    defer close(ch{f})\n"));
        }
        if spawn {
            let sends = rng.gen_range(0..3u32);
            body.push_str("    go func() {\n");
            for s in 0..sends {
                body.push_str(&format!("        ch{f} <- {s}\n"));
            }
            body.push_str("    }()\n");
        }
        if select {
            body.push_str(&format!(
                "    select {{\n    case v := <-ch{f}:\n        _ = v\n    default:\n    }}\n"
            ));
        }
        for _ in 0..recv_count {
            body.push_str(&format!(
                "    select {{\n    case <-ch{f}:\n    default:\n    }}\n"
            ));
        }
        src.push_str(&format!("func scenario{f}() {{\n{body}}}\n"));
    }
    src.push_str("func main() {\n");
    for f in 0..n_funcs {
        src.push_str(&format!("    scenario{f}()\n"));
    }
    src.push_str("}\n");
    src
}

/// Number of random cases, raised in CI via `GCATCH_FUZZ_CASES`.
fn fuzz_cases() -> u64 {
    std::env::var("GCATCH_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Asserts the three strategies agree on `source`: incremental == fresh
/// byte-for-byte (reports and incidents), rescan at the bug-set level.
fn assert_modes_agree(name: &str, source: &str) {
    let (fresh, fresh_incidents) = run_module(source, SolverStrategy::Fresh, 1);
    let (incremental, incremental_incidents) = run_module(source, SolverStrategy::Incremental, 1);
    assert_eq!(
        fresh, incremental,
        "{name}: incremental diagnostics diverge from fresh"
    );
    assert_eq!(
        fresh_incidents, incremental_incidents,
        "{name}: incremental incidents diverge from fresh"
    );
    let (rescan, _) = run_module(source, SolverStrategy::Rescan, 1);
    assert_eq!(
        ids(&fresh),
        ids(&rescan),
        "{name}: rescan found a different bug set"
    );
}

/// The whole example corpus (the same sweep `solver_bench` times) must be
/// strategy-independent.
#[test]
fn example_corpus_agrees_across_solver_modes() {
    let sources = example_sources();
    assert!(!sources.is_empty(), "no example programs found");
    for (name, source) in &sources {
        assert_modes_agree(name, source);
    }
}

/// Random adversarial programs must be strategy-independent too.
#[test]
fn fuzz_programs_agree_across_solver_modes() {
    let mut pick = Prng::seed_from_u64(0x50F7);
    for _ in 0..fuzz_cases() {
        let seed = pick.gen_range(0u64..10_000);
        let src = random_program(seed);
        assert_modes_agree(&format!("fuzz seed {seed}"), &src);
    }
}

/// Under the incremental default, sharding must not move a byte: the
/// per-channel solvers are worker-local, but report order and content are
/// canonicalized downstream.
#[test]
fn incremental_reports_are_jobs_invariant() {
    for (name, source) in &example_sources() {
        let (one, one_incidents) = run_module(source, SolverStrategy::Incremental, 1);
        let (four, four_incidents) = run_module(source, SolverStrategy::Incremental, 4);
        assert_eq!(one, four, "{name}: --jobs 4 diverged from --jobs 1");
        assert_eq!(
            one_incidents, four_incidents,
            "{name}: --jobs 4 incidents diverged from --jobs 1"
        );
    }
}
