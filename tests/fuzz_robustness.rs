//! Robustness fuzzing: the whole pipeline (parse → lower → detect → fix →
//! simulate) must never panic on arbitrary well-formed GoLite programs, and
//! any patch it produces must itself re-parse and re-lower. Random programs
//! come from a seeded generator (no external fuzzing crate).

use gcatch_suite::gcatch::{DetectorConfig, GCatch, IncidentKind, Selection};
use gcatch_suite::sim::{Config, Simulator};
use prng::Prng;
use std::time::Duration;

/// Generates a random small concurrent program from composable snippets.
fn random_program(seed: u64) -> String {
    let mut rng = Prng::seed_from_u64(seed);
    let n_funcs = rng.gen_range(1..4usize);
    let mut src = String::from("package main\n");
    for f in 0..n_funcs {
        let cap = rng.gen_range(0..3u32);
        let spawn = rng.gen_bool(0.7);
        let select = rng.gen_bool(0.5);
        let deferred = rng.gen_bool(0.4);
        let recv_count = rng.gen_range(0..3u32);
        let mut body = format!("    ch{f} := make(chan int, {cap})\n");
        if deferred {
            body.push_str(&format!("    defer close(ch{f})\n"));
        }
        if spawn {
            let sends = rng.gen_range(0..3u32);
            body.push_str("    go func() {\n");
            for s in 0..sends {
                body.push_str(&format!("        ch{f} <- {s}\n"));
            }
            body.push_str("    }()\n");
        }
        if select {
            body.push_str(&format!(
                "    select {{\n    case v := <-ch{f}:\n        _ = v\n    default:\n    }}\n"
            ));
        }
        for _ in 0..recv_count {
            body.push_str(&format!(
                "    select {{\n    case <-ch{f}:\n    default:\n    }}\n"
            ));
        }
        src.push_str(&format!("func scenario{f}() {{\n{body}}}\n"));
    }
    src.push_str("func main() {\n");
    for f in 0..n_funcs {
        src.push_str(&format!("    scenario{f}()\n"));
    }
    src.push_str("}\n");
    src
}

/// Number of random cases per fuzz test: 64 by default, raised in CI's
/// robustness smoke step via `GCATCH_FUZZ_CASES`.
fn fuzz_cases() -> u64 {
    std::env::var("GCATCH_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// End-to-end pipeline robustness on random programs.
#[test]
fn pipeline_never_panics() {
    let mut pick = Prng::seed_from_u64(0xF0712);
    for case in 0..fuzz_cases() {
        let seed = pick.gen_range(0u64..10_000);
        let src = random_program(seed);
        let pipeline = gcatch_suite::gfix::Pipeline::from_source(&src)
            .unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
        let results = pipeline.run(&DetectorConfig::default());
        // Any produced patch must round-trip through the toolchain.
        for patch in &results.patches {
            let reparsed = gcatch_suite::golite::parse(&patch.after);
            assert!(
                reparsed.is_ok(),
                "case {case}: patch does not reparse:\n{}",
                patch.after
            );
            assert!(gcatch_suite::ir::lower(&reparsed.unwrap()).is_ok());
        }
        // The simulator must terminate with a verdict on the original.
        // (Program-level panics are legitimate outcomes — e.g. a generated
        // `defer close` racing a send is a real Go panic — the requirement
        // is only that the *toolchain* never crashes.)
        let sim = Simulator::new(pipeline.module());
        let report = sim.run(&Config {
            max_steps: 20_000,
            ..Config::default()
        });
        let _ = report.outcome;
    }
}

// ------------------------------------------------- adversarial generators

/// An expression nested `depth` parentheses deep.
fn nested_parens_program(depth: usize) -> String {
    format!(
        "package main\nfunc main() {{\n    x := {}1{}\n    _ = x\n}}\n",
        "(".repeat(depth),
        ")".repeat(depth)
    )
}

/// A storm of zero-capacity channels: every channel is sent to from its own
/// goroutine and drained through blocking selects that mix several
/// channels, so path enumeration and the Pset both blow up together.
fn select_storm_program(chans: usize) -> String {
    let mut body = String::new();
    for c in 0..chans {
        body.push_str(&format!("    ch{c} := make(chan int)\n"));
    }
    for c in 0..chans {
        body.push_str(&format!("    go func() {{\n        ch{c} <- 1\n    }}()\n"));
    }
    for c in 0..chans {
        let other = (c + 1) % chans;
        body.push_str(&format!(
            "    select {{\n    case <-ch{c}:\n    case <-ch{other}:\n    }}\n"
        ));
    }
    format!("package main\nfunc main() {{\n{body}}}\n")
}

/// Many channels touched by one goroutine pair, so each channel's Pset
/// (§3.3) contains every other channel as a dependent primitive.
fn wide_pset_program(chans: usize) -> String {
    let mut body = String::new();
    for c in 0..chans {
        body.push_str(&format!("    ch{c} := make(chan int)\n"));
    }
    body.push_str("    go func() {\n");
    for c in 0..chans {
        body.push_str(&format!("        ch{c} <- 1\n"));
    }
    body.push_str("    }()\n");
    for c in 0..chans {
        body.push_str(&format!(
            "    select {{\n    case <-ch{c}:\n    default:\n    }}\n"
        ));
    }
    format!("package main\nfunc main() {{\n{body}}}\n")
}

// ----------------------------------------------------- adversarial tests

/// Pathological nesting: a parseable depth round-trips; an absurd depth is
/// a normal parse error ("nesting too deep"), not a stack overflow.
#[test]
fn parser_survives_pathological_nesting() {
    let ok = gcatch_suite::golite::parse(&nested_parens_program(64));
    assert!(ok.is_ok(), "64 levels should parse: {:?}", ok.err());

    let err = gcatch_suite::golite::parse(&nested_parens_program(5_000))
        .expect_err("5000 levels must be rejected");
    assert!(
        err.to_string().contains("nesting too deep"),
        "unexpected error: {err}"
    );
}

/// Adversarial programs under a punishing per-channel deadline: the run
/// must complete (no panic, no hang), and anything it gave up on must be
/// declared as a channel incident rather than silently dropped.
#[test]
fn adversarial_programs_complete_under_tight_channel_timeout() {
    for src in [
        select_storm_program(10),
        wide_pset_program(12),
        nested_parens_program(64),
    ] {
        let module = gcatch_suite::ir::lower_source(&src).expect("adversarial program lowers");
        let gcatch = GCatch::new(&module);
        let config = DetectorConfig {
            channel_timeout: Some(Duration::from_millis(1)),
            ..DetectorConfig::default()
        };
        let diagnostics = gcatch.diagnostics(&config, &Selection::default());
        let _ = diagnostics; // partial results are fine; completing is the test
        for incident in gcatch.incidents() {
            assert_eq!(incident.kind, IncidentKind::Channel);
            assert!(!incident.render().is_empty());
        }
    }
}

/// A ring of goroutines in a circular wait (`go_i` sends on `ch_i`, then
/// receives `ch_{i+1}`): the order constraints interlock, so the blocking
/// queries need real DPLL search rather than pure unit propagation.
fn circular_ring_program(n: usize) -> String {
    let mut body = String::new();
    for c in 0..n {
        body.push_str(&format!("    ch{c} := make(chan int)\n"));
    }
    for c in 0..n {
        let next = (c + 1) % n;
        body.push_str(&format!(
            "    go func() {{\n        ch{c} <- 1\n        <-ch{next}\n    }}()\n"
        ));
    }
    body.push_str("    <-ch0\n");
    format!("package main\nfunc main() {{\n{body}}}\n")
}

/// Budget incidents are deterministic across worker counts. The trigger is
/// a tiny per-query solver-step budget (step counting is exact, so every
/// query gives up identically no matter which worker runs it) with a
/// deadline far in the future, so the exhaustion pattern is
/// timing-independent.
#[test]
fn budget_incidents_are_identical_across_jobs() {
    let src = circular_ring_program(3);
    let module = gcatch_suite::ir::lower_source(&src).expect("ring lowers");
    let render = |jobs: usize| {
        let gcatch = GCatch::new(&module);
        let config = DetectorConfig {
            jobs,
            solver_steps: 10,
            channel_timeout: Some(Duration::from_secs(60)),
            ..DetectorConfig::default()
        };
        let diagnostics = gcatch.diagnostics(&config, &Selection::default());
        let incidents: Vec<String> = gcatch.incidents().iter().map(|i| i.render()).collect();
        (
            gcatch_suite::gcatch::render_json(&diagnostics, None),
            incidents,
        )
    };
    let (json1, incidents1) = render(1);
    let (json4, incidents4) = render(4);
    assert_eq!(json1, json4, "--jobs must not change diagnostics");
    assert_eq!(incidents1, incidents4, "--jobs must not change incidents");
    assert!(
        !incidents1.is_empty(),
        "a 10-step solver budget must exhaust the ladder"
    );
}

/// The degradation ladder recovers findings the full limits cannot reach:
/// with ~200 solver steps per query the wide-Pset rung-0/1 formulas go
/// Unknown, but rung 2's channel-only Pset shrinks them enough to solve —
/// and the finding's provenance records the rung it was found at.
#[test]
fn ladder_findings_record_their_degradation_rung() {
    let src = circular_ring_program(3);
    let module = gcatch_suite::ir::lower_source(&src).expect("ring lowers");
    let gcatch = GCatch::new(&module);
    let config = DetectorConfig {
        solver_steps: 200,
        channel_timeout: Some(Duration::from_secs(60)),
        ..DetectorConfig::default()
    };
    let diagnostics = gcatch.diagnostics(&config, &Selection::default());
    assert!(!diagnostics.is_empty(), "the ring deadlock must be found");
    let max_rung = diagnostics
        .iter()
        .filter_map(|d| d.report.provenance.as_ref())
        .map(|p| p.degradation_rung)
        .max()
        .expect("findings carry provenance");
    assert!(
        max_rung > 0,
        "findings under a tight step budget must come from a tightened rung"
    );
    let explain = gcatch_suite::gcatch::render_explain(&diagnostics);
    assert!(
        explain.contains("ladder rung"),
        "--explain must mention the rung:\n{explain}"
    );
}

/// The extended (§6) detector is panic-free too.
#[test]
fn send_on_closed_detector_never_panics() {
    let mut pick = Prng::seed_from_u64(0x50C);
    for _ in 0..fuzz_cases() {
        let seed = pick.gen_range(0u64..2_000);
        let src = random_program(seed);
        let module = gcatch_suite::ir::lower_source(&src).expect("generated program lowers");
        let gcatch = GCatch::new(&module);
        let _ = gcatch
            .detector()
            .detect_send_on_closed(&DetectorConfig::default());
    }
}
