//! Robustness fuzzing: the whole pipeline (parse → lower → detect → fix →
//! simulate) must never panic on arbitrary well-formed GoLite programs, and
//! any patch it produces must itself re-parse and re-lower. Random programs
//! come from a seeded generator (no external fuzzing crate).

use gcatch_suite::gcatch::{DetectorConfig, GCatch};
use gcatch_suite::sim::{Config, Simulator};
use prng::Prng;

/// Generates a random small concurrent program from composable snippets.
fn random_program(seed: u64) -> String {
    let mut rng = Prng::seed_from_u64(seed);
    let n_funcs = rng.gen_range(1..4usize);
    let mut src = String::from("package main\n");
    for f in 0..n_funcs {
        let cap = rng.gen_range(0..3u32);
        let spawn = rng.gen_bool(0.7);
        let select = rng.gen_bool(0.5);
        let deferred = rng.gen_bool(0.4);
        let recv_count = rng.gen_range(0..3u32);
        let mut body = format!("    ch{f} := make(chan int, {cap})\n");
        if deferred {
            body.push_str(&format!("    defer close(ch{f})\n"));
        }
        if spawn {
            let sends = rng.gen_range(0..3u32);
            body.push_str("    go func() {\n");
            for s in 0..sends {
                body.push_str(&format!("        ch{f} <- {s}\n"));
            }
            body.push_str("    }()\n");
        }
        if select {
            body.push_str(&format!(
                "    select {{\n    case v := <-ch{f}:\n        _ = v\n    default:\n    }}\n"
            ));
        }
        for _ in 0..recv_count {
            body.push_str(&format!(
                "    select {{\n    case <-ch{f}:\n    default:\n    }}\n"
            ));
        }
        src.push_str(&format!("func scenario{f}() {{\n{body}}}\n"));
    }
    src.push_str("func main() {\n");
    for f in 0..n_funcs {
        src.push_str(&format!("    scenario{f}()\n"));
    }
    src.push_str("}\n");
    src
}

/// End-to-end pipeline robustness on random programs.
#[test]
fn pipeline_never_panics() {
    let mut pick = Prng::seed_from_u64(0xF0712);
    for case in 0..64u64 {
        let seed = pick.gen_range(0u64..10_000);
        let src = random_program(seed);
        let pipeline = gcatch_suite::gfix::Pipeline::from_source(&src)
            .unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
        let results = pipeline.run(&DetectorConfig::default());
        // Any produced patch must round-trip through the toolchain.
        for patch in &results.patches {
            let reparsed = gcatch_suite::golite::parse(&patch.after);
            assert!(
                reparsed.is_ok(),
                "case {case}: patch does not reparse:\n{}",
                patch.after
            );
            assert!(gcatch_suite::ir::lower(&reparsed.unwrap()).is_ok());
        }
        // The simulator must terminate with a verdict on the original.
        // (Program-level panics are legitimate outcomes — e.g. a generated
        // `defer close` racing a send is a real Go panic — the requirement
        // is only that the *toolchain* never crashes.)
        let sim = Simulator::new(pipeline.module());
        let report = sim.run(&Config {
            max_steps: 20_000,
            ..Config::default()
        });
        let _ = report.outcome;
    }
}

/// The extended (§6) detector is panic-free too.
#[test]
fn send_on_closed_detector_never_panics() {
    let mut pick = Prng::seed_from_u64(0x50C);
    for _ in 0..64u64 {
        let seed = pick.gen_range(0u64..2_000);
        let src = random_program(seed);
        let module = gcatch_suite::ir::lower_source(&src).expect("generated program lowers");
        let gcatch = GCatch::new(&module);
        let _ = gcatch
            .detector()
            .detect_send_on_closed(&DetectorConfig::default());
    }
}
