//! Incremental re-analysis drills for `gcatch serve`: fuzzed edit chains
//! against a warm daemon, byte-compared per step with a session-less
//! daemon (`--max-sessions 0`) and with single-shot `gcatch check --json`;
//! injected `serve.session` faults (warmth loss must never change bytes);
//! SIGKILL + restart (sessions are memory-only, the restart runs cold);
//! and the bypass rules — `--max-sessions 0` and non-`check` ops must
//! never populate the warm store.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn gcatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcatch-suite"))
}

/// A scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcatch-serve-inc-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A daemon child in `--stdio` mode with piped stdin/stdout.
struct StdioDaemon {
    child: Child,
    stdin: Option<std::process::ChildStdin>,
    stdout: BufReader<std::process::ChildStdout>,
}

impl StdioDaemon {
    fn spawn(extra: &[&str], envs: &[(&str, &str)]) -> StdioDaemon {
        let mut cmd = gcatch();
        cmd.args(["serve", "--stdio"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("serve --stdio starts");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        StdioDaemon {
            child,
            stdin: Some(stdin),
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        let stdin = self.stdin.as_mut().expect("stdin open");
        stdin.write_all(line.as_bytes()).expect("request written");
        stdin.write_all(b"\n").expect("newline written");
        stdin.flush().expect("request flushed");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("response read");
        assert!(n > 0, "daemon closed stdout unexpectedly");
        line.trim_end().to_string()
    }

    /// Send-then-receive for a single request.
    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    /// Closes stdin (EOF drain) and waits for a clean exit.
    fn finish(mut self) -> (i32, String) {
        drop(self.stdin.take());
        let out = self.child.wait_with_output().expect("daemon exits");
        (
            out.status.code().expect("daemon exit code"),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    }
}

fn check_request(id: &str, module: &str) -> String {
    format!(r#"{{"id":"{id}","op":"check","module":"{module}"}}"#)
}

/// The exact envelope the daemon must produce for a `check`: the
/// single-shot `gcatch check --json` bytes wrapped unchanged.
fn single_shot_envelope(id: &str, module: &str) -> String {
    let out = gcatch()
        .args(["check", module, "--json"])
        .output()
        .expect("gcatch check runs");
    let report = String::from_utf8(out.stdout).expect("utf8 report");
    format!(
        r#"{{"id":"{id}","ok":true,"op":"check","module":"{module}","result":{}}}"#,
        report.trim_end()
    )
}

/// Editable module: every fuzz dimension owns one knob, and each knob
/// exercises a different row of the dirty-set rule.
#[derive(Clone)]
struct ModState {
    /// Constant in a helper no channel scope reaches: empty dirty set.
    tweak: u64,
    /// Result-channel buffering: `false` is the Fig. 1 leak (blocking
    /// report), `true` is safe. Toggling is a Pset edit whose re-analysis
    /// must flip the verdict.
    buffered: bool,
    /// Constant inside a send operand: Pset-touching, verdict unchanged.
    relay: u64,
    /// Whether an extra top-level function exists: a roster change, which
    /// makes shapes incomparable and forces a full cold rerun.
    extra: bool,
    /// Trailing blank lines: source bytes change, the IR does not.
    pad: usize,
}

impl ModState {
    fn base() -> ModState {
        ModState {
            tweak: 11,
            buffered: false,
            relay: 1,
            extra: false,
            pad: 0,
        }
    }

    fn render(&self) -> String {
        let done = if self.buffered {
            "done := make(chan error, 1)"
        } else {
            "done := make(chan error)"
        };
        let extra = if self.extra {
            "\nfunc extraFn() int {\n    return 7\n}\n"
        } else {
            ""
        };
        format!(
            r#"func tweak() int {{
    return {tweak}
}}

func job() error {{
    return nil
}}

func LeakRun() {{
    {done}
    quit := make(chan struct{{}}, 1)
    quit <- struct{{}}{{}}
    go func() {{
        done <- job()
    }}()
    select {{
    case err := <-done:
        _ = err
    case <-quit:
        return
    }}
}}

func RelayRun() {{
    msg := make(chan int)
    go func() {{
        msg <- {relay}
    }}()
    <-msg
}}
{extra}{pad}"#,
            tweak = self.tweak,
            done = done,
            relay = self.relay,
            extra = extra,
            pad = "\n".repeat(self.pad),
        )
    }

    /// Applies the `pick`-th mutation kind in place.
    fn mutate(&mut self, pick: u64) {
        match pick % 5 {
            0 => self.tweak += 1,
            1 => self.buffered = !self.buffered,
            2 => self.relay += 1,
            3 => self.extra = !self.extra,
            _ => self.pad += 1,
        }
    }
}

/// Deterministic LCG (same constants as `minstd`), seeded per chain.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(48271) % 0x7fff_ffff;
    *state
}

fn fuzz_cases() -> usize {
    std::env::var("GCATCH_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Drives one edit chain through a warm daemon and a session-less daemon
/// in lockstep, asserting every response matches the other daemon AND
/// the single-shot check, byte for byte.
fn run_chain(dir: &Path, chain: usize, steps: usize, warm_flags: &[&str], envs: &[(&str, &str)]) {
    let module = dir.join(format!("chain{chain}.go"));
    let module_str = module.to_str().unwrap().to_string();
    let mut warm = StdioDaemon::spawn(warm_flags, envs);
    let mut cold = StdioDaemon::spawn(&["--max-sessions", "0"], &[]);

    let mut state = ModState::base();
    let mut rng = 0x9e37 + chain as u64;
    for step in 0..steps {
        std::fs::write(&module, state.render()).expect("module written");
        let id = format!("c{chain}s{step}");
        let req = check_request(&id, &module_str);
        let warm_line = warm.roundtrip(&req);
        let cold_line = cold.roundtrip(&req);
        let expected = single_shot_envelope(&id, &module_str);
        assert_eq!(
            warm_line, expected,
            "chain {chain} step {step}: warm daemon != single-shot check"
        );
        assert_eq!(
            cold_line, expected,
            "chain {chain} step {step}: session-less daemon != single-shot check"
        );
        state.mutate(lcg(&mut rng));
    }

    let status = warm.roundtrip(r#"{"id":"st","op":"status"}"#);
    assert!(status.contains(r#""sessions":{"capacity":"#), "{status}");
    let (code, _) = warm.finish();
    assert_eq!(code, 0);
    let (code, _) = cold.finish();
    assert_eq!(code, 0);
}

/// Fuzzed edit chains: every warm response is byte-identical to both a
/// session-less daemon and single-shot `gcatch check --json`, across
/// empty-dirty-set edits, verdict-flipping Pset edits, roster changes,
/// and IR-invisible whitespace edits.
#[test]
fn fuzzed_edit_chains_are_byte_identical_to_cold_and_single_shot() {
    let dir = scratch("fuzz");
    for chain in 0..fuzz_cases() {
        run_chain(&dir, chain, 6, &[], &[]);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected session loss at `serve.session` (rate 1.0): every check
/// drops its warm entry and recomputes cold, so responses must still be
/// byte-identical — warmth is a latency property, never a correctness
/// one. The daemon survives the whole chain.
#[test]
fn injected_session_faults_never_change_response_bytes() {
    let dir = scratch("faults");
    run_chain(
        &dir,
        0,
        5,
        &[],
        &[
            ("GCATCH_FAULT_RATE", "1.0"),
            ("GCATCH_FAULT_SITES", "serve.session"),
            ("GCATCH_FAULT_DELAY_MS", "0"),
        ],
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Sessions are memory-only: SIGKILL forfeits all warmth, and a restart
/// over the same flags answers from the cold path with the exact
/// single-shot bytes.
#[test]
fn sigkill_forfeits_sessions_and_restart_runs_cold() {
    let dir = scratch("sigkill");
    let module = dir.join("mod.go");
    let module_str = module.to_str().unwrap().to_string();
    let mut state = ModState::base();
    std::fs::write(&module, state.render()).expect("module written");

    let mut victim = StdioDaemon::spawn(&[], &[]);
    let first = victim.roundtrip(&check_request("k1", &module_str));
    assert!(first.contains(r#""ok":true"#), "{first}");
    state.tweak += 1;
    std::fs::write(&module, state.render()).expect("edit written");
    victim.send(&check_request("k2", &module_str));
    victim.child.kill().expect("SIGKILL delivered");
    victim.child.wait().expect("victim reaped");

    let mut restarted = StdioDaemon::spawn(&[], &[]);
    let status = restarted.roundtrip(r#"{"id":"s","op":"status"}"#);
    assert!(
        status.contains(r#""resident":0"#),
        "restart must start with no resident sessions: {status}"
    );
    let line = restarted.roundtrip(&check_request("k3", &module_str));
    assert_eq!(
        line,
        single_shot_envelope("k3", &module_str),
        "cold restart must answer with single-shot bytes"
    );
    let (code, _) = restarted.finish();
    assert_eq!(code, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// `--max-sessions 0` disables the warm store outright, and non-`check`
/// ops (`explain`, `fix-dry-run`) never populate it: the `status`
/// sessions block stays empty in both cases, while eligible checks on a
/// default daemon do take residence and score hits on re-analysis.
#[test]
fn bypass_rules_and_status_occupancy() {
    let dir = scratch("bypass");
    let module = dir.join("mod.go");
    let module_str = module.to_str().unwrap().to_string();
    let mut state = ModState::base();
    std::fs::write(&module, state.render()).expect("module written");

    // Disabled store: checks run, nothing takes residence.
    let mut off = StdioDaemon::spawn(&["--max-sessions", "0"], &[]);
    let line = off.roundtrip(&check_request("o1", &module_str));
    assert!(line.contains(r#""ok":true"#), "{line}");
    let status = off.roundtrip(r#"{"id":"s","op":"status"}"#);
    assert!(
        status.contains(r#""sessions":{"capacity":0,"resident":0,"hits":0,"misses":0"#),
        "disabled store must stay empty: {status}"
    );
    let (code, _) = off.finish();
    assert_eq!(code, 0);

    // Default daemon: explain and fix-dry-run bypass; checks populate.
    let metrics = dir.join("metrics.prom");
    let mut on = StdioDaemon::spawn(&["--metrics-out", metrics.to_str().unwrap()], &[]);
    for (id, op) in [("e1", "explain"), ("f1", "fix-dry-run")] {
        let line = on.roundtrip(&format!(
            r#"{{"id":"{id}","op":"{op}","module":"{module_str}"}}"#
        ));
        assert!(line.contains(r#""ok":true"#), "{line}");
    }
    let status = on.roundtrip(r#"{"id":"s1","op":"status"}"#);
    assert!(
        status.contains(r#""resident":0"#),
        "non-check ops must not populate the store: {status}"
    );

    let line = on.roundtrip(&check_request("c1", &module_str));
    assert!(line.contains(r#""ok":true"#), "{line}");
    state.tweak += 1;
    std::fs::write(&module, state.render()).expect("edit written");
    let line = on.roundtrip(&check_request("c2", &module_str));
    assert_eq!(
        line,
        single_shot_envelope("c2", &module_str),
        "warm re-check must match single-shot bytes"
    );
    let status = on.roundtrip(r#"{"id":"s2","op":"status"}"#);
    assert!(
        status.contains(r#""resident":1,"hits":1,"misses":1"#),
        "one module resident, one warm hit: {status}"
    );
    assert!(
        status.contains(r#""fingerprint":""#),
        "status lists resident fingerprints: {status}"
    );
    let (code, _) = on.finish();
    assert_eq!(code, 0);

    // The satellite counters flow through the Prometheus exposition.
    let rendered = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(
        rendered.contains("sessions_reused_total 1"),
        "sessions_reused must reach the metrics sink: {rendered}"
    );
    assert!(
        rendered.contains("channels_replayed_total"),
        "channels_replayed must be exposed: {rendered}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
