//! End-to-end resilience tests for `gcatch batch`: fault injection must
//! not change the merged report, and a killed run must resume from its
//! checkpoint journal to a byte-identical result.

use std::path::{Path, PathBuf};
use std::process::Command;

fn gcatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcatch-suite"))
}

/// A scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcatch-batch-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The checked-in batch corpus, relative to the workspace root the test
/// binary runs from.
fn corpus() -> &'static str {
    "examples/batch"
}

fn run_report(args: &[&str], report: &Path) -> std::process::Output {
    let out = gcatch()
        .args(["batch", corpus(), "--report", report.to_str().unwrap()])
        .args(args)
        .output()
        .expect("gcatch batch runs");
    assert!(
        out.status.code() == Some(0) || out.status.code() == Some(1),
        "batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn fault_injection_does_not_change_the_merged_report() {
    let dir = scratch("faults");
    let clean = dir.join("clean.json");
    let faulty = dir.join("faulty.json");
    run_report(&[], &clean);
    run_report(&["--inject-faults", "0.3", "--fault-seed", "7"], &faulty);
    let clean_bytes = std::fs::read(&clean).unwrap();
    let faulty_bytes = std::fs::read(&faulty).unwrap();
    assert!(
        !clean_bytes.is_empty(),
        "faultless report must not be empty"
    );
    assert_eq!(
        clean_bytes, faulty_bytes,
        "injected faults leaked into the report"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_journal_resumes_to_a_byte_identical_report() {
    let dir = scratch("resume");
    let clean = dir.join("clean.json");
    let journal = dir.join("run.jsonl");
    let resumed = dir.join("resumed.json");
    run_report(&[], &clean);

    // A full faulted run writing a journal...
    let full = dir.join("full.json");
    run_report(
        &[
            "--inject-faults",
            "0.3",
            "--fault-seed",
            "7",
            "--journal",
            journal.to_str().unwrap(),
        ],
        &full,
    );
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert!(lines.len() >= 4, "journal has a header and decided jobs");

    // ...killed mid-write: keep the header, two decided jobs, and half of
    // the third record (a torn line, as a real crash leaves behind).
    let mut torn = String::new();
    torn.push_str(lines[0]);
    torn.push_str(lines[1]);
    torn.push_str(lines[2]);
    torn.push_str(&lines[3][..lines[3].len() / 2]);
    std::fs::write(&journal, torn).unwrap();

    let out = gcatch()
        .args([
            "batch",
            corpus(),
            "--inject-faults",
            "0.3",
            "--fault-seed",
            "7",
            "--resume",
            journal.to_str().unwrap(),
            "--report",
            resumed.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.code() == Some(0) || out.status.code() == Some(1),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 resumed"), "stdout: {stdout}");

    assert_eq!(
        std::fs::read(&clean).unwrap(),
        std::fs::read(&resumed).unwrap(),
        "resumed report differs from the uninterrupted faultless run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_journal_for_a_different_job_set() {
    let dir = scratch("refuse");
    let journal = dir.join("other.jsonl");
    std::fs::write(
        &journal,
        "{\"gcatch_batch_journal\":1,\"jobs\":1,\"fingerprint\":\"0000000000000000\"}\n",
    )
    .unwrap();
    let out = gcatch()
        .args(["batch", corpus(), "--resume", journal.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different job set"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_and_resume_flags_are_mutually_exclusive() {
    let out = gcatch()
        .args(["batch", corpus(), "--journal", "a", "--resume", "b"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mutually exclusive"), "stderr: {stderr}");
}

#[test]
fn quarantined_module_is_reported_and_strict_exits_2() {
    let dir = scratch("quarantine");
    let broken = dir.join("broken.go");
    std::fs::write(&broken, "package main\nfunc main( {\n").unwrap();
    let good = dir.join("good.go");
    std::fs::write(
        &good,
        "package main\nfunc main() {\n ch := make(chan int, 1)\n ch <- 1\n}\n",
    )
    .unwrap();
    let out = gcatch()
        .args([
            "batch",
            broken.to_str().unwrap(),
            good.to_str().unwrap(),
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "quarantine is not fatal");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"quarantined\":true"), "stdout: {stdout}");
    assert!(stdout.contains("\"quarantined\":1"), "stdout: {stdout}");

    let strict = gcatch()
        .args([
            "batch",
            broken.to_str().unwrap(),
            good.to_str().unwrap(),
            "--strict",
        ])
        .output()
        .unwrap();
    assert_eq!(
        strict.status.code(),
        Some(2),
        "--strict escalates quarantined jobs"
    );
    std::fs::remove_dir_all(&dir).ok();
}
