//! Differential testing of the corpus-scale optimizations: demand-driven
//! alias analysis and cross-channel encoding sharing must be pure
//! optimizations. Over the example corpus, a stream of random programs,
//! and an amplified synthetic suite, every combination of
//! `--alias-mode eager|demand`, sharing on/off, and `--jobs 1|4` must
//! produce byte-identical diagnostics and incident sets.

use bench::amplifier::{expected_leaks, generate, AmpConfig};
use gcatch_suite::gcatch::{
    render_json, AliasMode, Counter, DetectorConfig, GCatch, Selection, TraceLevel,
};
use prng::Prng;

/// One configuration axis point.
#[derive(Clone, Copy)]
struct Cfg {
    alias: AliasMode,
    share: bool,
    jobs: usize,
}

impl Cfg {
    fn name(&self) -> String {
        format!(
            "alias={}/share={}/jobs={}",
            match self.alias {
                AliasMode::Eager => "eager",
                AliasMode::Demand => "demand",
            },
            self.share,
            self.jobs
        )
    }
}

/// Rendered diagnostics + rendered incidents for one module under one
/// configuration, across both the default registry and the §6 extension.
fn run_module(source: &str, cfg: Cfg) -> (String, Vec<String>) {
    let module = golite_ir::lower_source(source).expect("module lowers");
    let gcatch = GCatch::with_options(&module, TraceLevel::Off, cfg.alias);
    let config = DetectorConfig {
        share_encodings: cfg.share,
        jobs: cfg.jobs,
        ..DetectorConfig::default()
    };
    let extended = Selection {
        only: vec!["send-on-closed".to_string()],
        skip: Vec::new(),
    };
    let mut rendered = String::new();
    for selection in [&Selection::default(), &extended] {
        let diagnostics = gcatch.diagnostics(&config, selection);
        rendered.push_str(&render_json(&diagnostics, None));
        rendered.push('\n');
    }
    let incidents = gcatch
        .session()
        .incidents()
        .iter()
        .map(|i| i.render())
        .collect();
    (rendered, incidents)
}

/// The reference configuration every other axis point must match.
const BASELINE: Cfg = Cfg {
    alias: AliasMode::Eager,
    share: false,
    jobs: 1,
};

/// The axis points compared against [`BASELINE`].
const VARIANTS: [Cfg; 4] = [
    Cfg {
        alias: AliasMode::Demand,
        share: false,
        jobs: 1,
    },
    Cfg {
        alias: AliasMode::Eager,
        share: true,
        jobs: 1,
    },
    Cfg {
        alias: AliasMode::Demand,
        share: true,
        jobs: 1,
    },
    Cfg {
        alias: AliasMode::Demand,
        share: true,
        jobs: 4,
    },
];

fn assert_axes_agree(name: &str, source: &str) {
    let (want, want_incidents) = run_module(source, BASELINE);
    for cfg in VARIANTS {
        let (got, got_incidents) = run_module(source, cfg);
        assert_eq!(
            want,
            got,
            "{name}: {} diagnostics diverge from {}",
            cfg.name(),
            BASELINE.name()
        );
        assert_eq!(
            want_incidents,
            got_incidents,
            "{name}: {} incidents diverge from {}",
            cfg.name(),
            BASELINE.name()
        );
    }
}

/// Every example module, as `(name, source)`.
fn example_sources() -> Vec<(String, String)> {
    let mut files = Vec::new();
    for dir in ["examples", "examples/batch"] {
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .expect("examples directory exists")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "go"))
            .collect();
        entries.sort();
        files.extend(entries);
    }
    files
        .into_iter()
        .map(|p| {
            let name = p.display().to_string();
            let source = std::fs::read_to_string(&p).expect("example readable");
            (name, source)
        })
        .collect()
}

/// Same snippet-composition generator as the robustness fuzzer (tests are
/// separate crates, so the generator is replicated here verbatim).
fn random_program(seed: u64) -> String {
    let mut rng = Prng::seed_from_u64(seed);
    let n_funcs = rng.gen_range(1..4usize);
    let mut src = String::from("package main\n");
    for f in 0..n_funcs {
        let cap = rng.gen_range(0..3u32);
        let spawn = rng.gen_bool(0.7);
        let select = rng.gen_bool(0.5);
        let deferred = rng.gen_bool(0.4);
        let recv_count = rng.gen_range(0..3u32);
        let mut body = format!("    ch{f} := make(chan int, {cap})\n");
        if deferred {
            body.push_str(&format!("    defer close(ch{f})\n"));
        }
        if spawn {
            let sends = rng.gen_range(0..3u32);
            body.push_str("    go func() {\n");
            for s in 0..sends {
                body.push_str(&format!("        ch{f} <- {s}\n"));
            }
            body.push_str("    }()\n");
        }
        if select {
            body.push_str(&format!(
                "    select {{\n    case v := <-ch{f}:\n        _ = v\n    default:\n    }}\n"
            ));
        }
        for _ in 0..recv_count {
            body.push_str(&format!(
                "    select {{\n    case <-ch{f}:\n    default:\n    }}\n"
            ));
        }
        src.push_str(&format!("func scenario{f}() {{\n{body}}}\n"));
    }
    src.push_str("func main() {\n");
    for f in 0..n_funcs {
        src.push_str(&format!("    scenario{f}()\n"));
    }
    src.push_str("}\n");
    src
}

/// Number of random cases, raised in CI via `GCATCH_FUZZ_CASES`.
fn fuzz_cases() -> u64 {
    std::env::var("GCATCH_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The whole example corpus must be invariant across every optimization
/// axis.
#[test]
fn example_corpus_agrees_across_alias_and_sharing() {
    let sources = example_sources();
    assert!(!sources.is_empty(), "no example programs found");
    for (name, source) in &sources {
        assert_axes_agree(name, source);
    }
}

/// Random adversarial programs must be axis-invariant too.
#[test]
fn fuzz_programs_agree_across_alias_and_sharing() {
    let mut pick = Prng::seed_from_u64(0xA11A5);
    for _ in 0..fuzz_cases() {
        let seed = pick.gen_range(0u64..10_000);
        let src = random_program(seed);
        assert_axes_agree(&format!("fuzz seed {seed}"), &src);
    }
}

/// The amplified suite — many structurally identical channels plus
/// alias-analysis ballast — must be axis-invariant, and the optimized
/// configuration must actually exercise both fast paths: solver verdicts
/// shared across channels, ballast components never solved.
#[test]
fn amplified_suite_agrees_and_exercises_fast_paths() {
    let amp = AmpConfig {
        channels: 36,
        leak_every: 6,
        ballast: 12,
    };
    let src = generate(&amp);
    assert_axes_agree("amplified suite", &src);

    let module = golite_ir::lower_source(&src).expect("amplified suite lowers");
    let gcatch = GCatch::with_options(&module, TraceLevel::Off, AliasMode::Demand);
    let bugs = gcatch.detect_all(&DetectorConfig::default());
    assert_eq!(bugs.len(), expected_leaks(&amp), "one report per leak");
    let stats = gcatch.stats();
    assert!(
        stats.counter(Counter::ChannelEncodingsShared) > 0,
        "structurally identical channels must share solver verdicts"
    );
    assert!(
        stats.counter(Counter::AliasFunctionsSkipped) > 0,
        "demand mode must skip the ballast components"
    );
    assert!(
        stats.counter(Counter::AliasQueriesSolved) > 0,
        "demand mode solves the queried components"
    );
}
