//! End-to-end observability contracts: the event stream is byte-identical
//! across worker counts, reports are byte-identical with observability on
//! or off, a quarantined job's whole lifecycle is recoverable from the
//! stream by job id, and `--metrics-out` always writes a parseable
//! exposition.

use std::path::{Path, PathBuf};
use std::process::Command;

fn gcatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcatch-suite"))
}

/// A scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcatch-obs-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The checked-in batch corpus plus one module that can never parse, so
/// every run exercises the retry → quarantine path.
fn corpus_with_quarantine(dir: &Path) -> PathBuf {
    let corpus = dir.join("corpus");
    std::fs::create_dir_all(&corpus).expect("corpus dir");
    for entry in std::fs::read_dir("examples/batch").expect("examples/batch") {
        let p = entry.expect("dir entry").path();
        std::fs::copy(&p, corpus.join(p.file_name().unwrap())).expect("copy module");
    }
    std::fs::write(corpus.join("broken.go"), "func main() {\n  broken((\n}\n")
        .expect("write broken module");
    corpus
}

/// Runs `gcatch batch` over `corpus` under zeroed observability time.
fn run_batch(corpus: &Path, extra: &[&str]) -> std::process::Output {
    let out = gcatch()
        .arg("batch")
        .arg(corpus)
        .args(["--max-attempts", "2", "--no-hedge"])
        .args(extra)
        .env("GCATCH_OBS_ZERO_TIME", "1")
        .output()
        .expect("gcatch batch runs");
    assert!(
        out.status.code() == Some(0) || out.status.code() == Some(1),
        "batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// A sweep's event stream carries the worker-lifecycle kinds (spawn,
/// lease) alongside the run frame, all correlated by one run id — the
/// same contract the batch stream honors, extended to the fleet.
#[test]
fn sweep_event_stream_carries_worker_lifecycle() {
    let dir = scratch("sweep");
    let events = dir.join("events.jsonl");
    let out = gcatch()
        .args([
            "sweep",
            "examples/batch",
            "--workers",
            "2",
            "--events-out",
            events.to_str().unwrap(),
        ])
        .env("GCATCH_OBS_ZERO_TIME", "1")
        // Report-neutral delays keep each lease alive across coordinator
        // polls, so the stream reliably observes a claim in flight.
        .env("GCATCH_FAULT_RATE", "1.0")
        .env("GCATCH_FAULT_SITES", "batch.delay")
        .env("GCATCH_FAULT_DELAY_MS", "120")
        .output()
        .expect("gcatch sweep runs");
    assert!(
        out.status.code() == Some(0) || out.status.code() == Some(1),
        "sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stream = std::fs::read_to_string(&events).expect("events file");
    for kind in ["run_start", "worker_spawned", "job_leased", "run_end"] {
        assert!(
            stream.contains(&format!("\"event\":\"{kind}\"")),
            "sweep stream must carry {kind}: {stream}"
        );
    }
    let run_ids: std::collections::BTreeSet<&str> = stream
        .lines()
        .filter_map(|l| l.split("\"run\":\"").nth(1))
        .filter_map(|rest| rest.split('"').next())
        .collect();
    assert_eq!(run_ids.len(), 1, "one sweep, one run id: {run_ids:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn event_stream_is_byte_identical_across_worker_counts() {
    let dir = scratch("jobs");
    let corpus = corpus_with_quarantine(&dir);
    let mut streams = Vec::new();
    for jobs in ["1", "4"] {
        let events = dir.join(format!("events-{jobs}.jsonl"));
        run_batch(
            &corpus,
            &["--jobs", jobs, "--events-out", events.to_str().unwrap()],
        );
        streams.push(std::fs::read(&events).expect("events file"));
    }
    assert!(!streams[0].is_empty(), "event stream must not be empty");
    assert_eq!(
        streams[0], streams[1],
        "--jobs changed the canonical event stream"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_is_byte_identical_with_observability_on_and_off() {
    let dir = scratch("inert");
    let corpus = corpus_with_quarantine(&dir);
    let plain = dir.join("plain.json");
    let observed = dir.join("observed.json");
    run_batch(&corpus, &["--report", plain.to_str().unwrap()]);
    run_batch(
        &corpus,
        &[
            "--report",
            observed.to_str().unwrap(),
            "--events-out",
            dir.join("e.jsonl").to_str().unwrap(),
            "--metrics-out",
            dir.join("m.prom").to_str().unwrap(),
        ],
    );
    let plain_bytes = std::fs::read(&plain).unwrap();
    assert!(!plain_bytes.is_empty());
    assert_eq!(
        plain_bytes,
        std::fs::read(&observed).unwrap(),
        "observability flags changed the report"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantined_job_lifecycle_is_recoverable_by_job_id() {
    let dir = scratch("lifecycle");
    let corpus = corpus_with_quarantine(&dir);
    let events = dir.join("events.jsonl");
    let report = dir.join("report.json");
    run_batch(
        &corpus,
        &[
            "--events-out",
            events.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ],
    );
    let stream = std::fs::read_to_string(&events).expect("events file");
    let broken = corpus.join("broken.go");
    let needle = format!("\"job\":\"{}\"", broken.display());

    // One grep by job id reconstructs the whole lifecycle, in order.
    let lifecycle: Vec<&str> = stream.lines().filter(|l| l.contains(&needle)).collect();
    let kinds: Vec<&str> = lifecycle
        .iter()
        .map(|l| {
            let start = l.find("\"event\":\"").expect("event key") + 9;
            &l[start..start + l[start..].find('"').expect("event close")]
        })
        .collect();
    assert_eq!(
        kinds,
        [
            "attempt_start",
            "attempt_end",
            "job_retry",
            "attempt_start",
            "attempt_end",
            "job_quarantined"
        ],
        "unexpected lifecycle: {lifecycle:#?}"
    );
    // Every event of the stream is one well-formed JSON object with the
    // run id, and the stream is bracketed by run_start/run_end.
    let lines: Vec<&str> = stream.lines().collect();
    assert!(lines[0].contains("\"event\":\"run_start\""));
    assert!(lines.last().unwrap().contains("\"event\":\"run_end\""));
    for line in &lines {
        assert!(line.contains("\"run\":\"r"), "missing run id: {line}");
    }
    // The quarantine incident in the report carries the flight dump.
    let report = std::fs::read_to_string(&report).unwrap();
    assert!(report.contains("\"quarantined\":true"));
    assert!(report.contains("\"flight\":[\"attempt 1: started\""));
    assert!(report.contains("quarantined after 2 attempt(s)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_mode_writes_deterministic_metrics_and_events() {
    let dir = scratch("check");
    let mut outputs = Vec::new();
    for round in 0..2 {
        let metrics = dir.join(format!("m{round}.prom"));
        let events = dir.join(format!("e{round}.jsonl"));
        let out = gcatch()
            .args([
                "check",
                "examples/figure1.go",
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--events-out",
                events.to_str().unwrap(),
            ])
            .env("GCATCH_OBS_ZERO_TIME", "1")
            .output()
            .expect("gcatch check runs");
        assert_eq!(out.status.code(), Some(1), "figure 1 reports a bug");
        outputs.push((
            std::fs::read(&metrics).expect("metrics file"),
            std::fs::read(&events).expect("events file"),
        ));
    }
    assert_eq!(outputs[0], outputs[1], "check observability is not stable");
    let metrics = String::from_utf8(outputs[0].0.clone()).unwrap();
    assert!(metrics.contains("gcatch_channels_analyzed_total 2\n"));
    let events = String::from_utf8(outputs[0].1.clone()).unwrap();
    assert!(events.contains("\"event\":\"channel_analyzed\""));
    assert!(events.contains("\"channel\":\"outDone\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn observability_flags_are_rejected_outside_their_commands() {
    // `--progress` and the observability file flags are batch/check-level
    // concerns; commands that do not support them must exit 2.
    for args in [
        vec!["check", "examples/figure1.go", "--progress"],
        vec!["fix", "examples/figure1.go", "--metrics-out", "x.prom"],
        vec!["simulate", "examples/figure1.go", "--events-out", "x.jsonl"],
    ] {
        let out = gcatch().args(&args).output().expect("gcatch runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} should be a usage error"
        );
        assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    }
}
