//! Robustness drills for `gcatch serve`: concurrent socket clients,
//! injected request panics, request deadlines, deterministic load
//! shedding, SIGTERM drain, and the crash-only contract — SIGKILL the
//! daemon mid-run, restart over the same cache directory, and assert the
//! replayed responses are byte-identical to a cold daemon and that the
//! `result` payload equals a single-shot `gcatch check --json`.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn gcatch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcatch-suite"))
}

/// A scratch directory unique to this test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcatch-serve-it-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The Figure 1 module checked into the repo (one known BMOC bug).
const MODULE: &str = "examples/figure1.go";
/// A clean module from the batch corpus.
const CLEAN: &str = "examples/batch/clean_buffered.go";

/// A daemon child in `--stdio` mode with piped stdin/stdout.
struct StdioDaemon {
    child: Child,
    stdin: Option<std::process::ChildStdin>,
    stdout: BufReader<std::process::ChildStdout>,
}

impl StdioDaemon {
    fn spawn(extra: &[&str], envs: &[(&str, &str)]) -> StdioDaemon {
        let mut cmd = gcatch();
        cmd.args(["serve", "--stdio"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("serve --stdio starts");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        StdioDaemon {
            child,
            stdin: Some(stdin),
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        let stdin = self.stdin.as_mut().expect("stdin open");
        stdin.write_all(line.as_bytes()).expect("request written");
        stdin.write_all(b"\n").expect("newline written");
        stdin.flush().expect("request flushed");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("response read");
        assert!(n > 0, "daemon closed stdout unexpectedly");
        line.trim_end().to_string()
    }

    /// Closes stdin (EOF drain) and waits for a clean exit.
    fn finish(mut self) -> (i32, String) {
        drop(self.stdin.take());
        let out = self.child.wait_with_output().expect("daemon exits");
        (
            out.status.code().expect("daemon exit code"),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    }
}

fn check_request(id: &str, module: &str) -> String {
    format!(r#"{{"id":"{id}","op":"check","module":"{module}"}}"#)
}

/// Runs one daemon over a fixed request script and returns the full
/// response transcript plus the exit code.
fn transcript(requests: &[String], extra: &[&str], envs: &[(&str, &str)]) -> (Vec<String>, i32) {
    let mut daemon = StdioDaemon::spawn(extra, envs);
    for r in requests {
        daemon.send(r);
    }
    let lines: Vec<String> = (0..requests.len()).map(|_| daemon.recv()).collect();
    let (code, _) = daemon.finish();
    (lines, code)
}

/// Concurrent socket clients: every client gets its own correct response
/// on its own connection, and the daemon drains cleanly afterwards.
#[test]
fn concurrent_socket_clients_each_get_their_response() {
    let dir = scratch("socket");
    let sock = dir.join("gcatch.sock");
    let mut child = gcatch()
        .args([
            "serve",
            "--socket",
            sock.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve --socket starts");

    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut stream = UnixStream::connect(&sock).expect("client connects");
                let module = if i % 2 == 0 { MODULE } else { CLEAN };
                let req = check_request(&format!("c{i}"), module);
                stream.write_all(req.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                // Half-close: the daemon answers, then the connection ends.
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let mut response = String::new();
                stream.read_to_string(&mut response).unwrap();
                (i, module, response)
            })
        })
        .collect();
    for h in handles {
        let (i, module, response) = h.join().expect("client thread");
        assert!(
            response.contains(&format!(r#""id":"c{i}","ok":true"#)),
            "client {i} response: {response}"
        );
        assert!(response.contains(module), "client {i} response: {response}");
        let expect_diags = module == MODULE;
        assert_eq!(
            response.contains(r#""checker":"bmoc""#),
            expect_diags,
            "client {i} got the wrong module's report: {response}"
        );
    }

    // A shutdown request drains the daemon; the process exits 0.
    let mut stream = UnixStream::connect(&sock).expect("shutdown client connects");
    stream
        .write_all(b"{\"id\":\"q\",\"op\":\"shutdown\"}\n")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.contains(r#""draining":true"#), "{response}");
    let out = child.wait().expect("daemon exits");
    assert_eq!(out.code(), Some(0), "graceful drain exits 0");
    assert!(!sock.exists(), "socket file removed on drain");
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected `serve.request` panics are contained: the faulted request
/// gets a structured incident response and the daemon keeps serving.
#[test]
fn injected_request_panic_is_contained_and_the_daemon_survives() {
    let mut daemon = StdioDaemon::spawn(
        &[],
        &[
            ("GCATCH_FAULT_RATE", "1.0"),
            ("GCATCH_FAULT_SITES", "serve.request"),
            ("GCATCH_FAULT_DELAY_MS", "0"),
        ],
    );
    daemon.send(&check_request("boom", MODULE));
    let line = daemon.recv();
    assert!(line.contains(r#""id":"boom","ok":false"#), "{line}");
    assert!(line.contains(r#""kind":"request""#), "{line}");
    assert!(
        line.contains("injected fault: panic at serve.request"),
        "{line}"
    );
    // Still alive: an inline status request is answered (the fault plan
    // only covers pooled work execution).
    daemon.send(r#"{"id":"s","op":"status"}"#);
    let line = daemon.recv();
    assert!(line.contains(r#""id":"s","ok":true"#), "{line}");
    assert!(line.contains(r#""requests_failed":1"#), "{line}");
    let (code, _) = daemon.finish();
    assert_eq!(code, 0, "a contained panic must not change the exit code");
}

/// A request whose deadline expires gets a deadline incident, never a
/// partial result — and the verdict is deterministic because a zero
/// deadline is expired before the work even starts.
#[test]
fn expired_request_deadline_becomes_an_incident() {
    let mut daemon = StdioDaemon::spawn(&[], &[]);
    daemon.send(&format!(
        r#"{{"id":"slow","op":"check","module":"{MODULE}","timeout_ms":0}}"#
    ));
    let line = daemon.recv();
    assert!(line.contains(r#""id":"slow","ok":false"#), "{line}");
    assert!(line.contains("request deadline of 0 ms expired"), "{line}");
    // The expired verdict must not poison the cache: the same module
    // without a deadline computes the full result.
    daemon.send(&check_request("retry", MODULE));
    let line = daemon.recv();
    assert!(line.contains(r#""id":"retry","ok":true"#), "{line}");
    assert!(line.contains(r#""checker":"bmoc""#), "{line}");
    let (code, _) = daemon.finish();
    assert_eq!(code, 0);
}

/// Load shedding under `--workers 1 --max-queue 1` is deterministic in
/// the request sequence: with every request slowed by an injected delay,
/// the third concurrent request is always shed with the same bytes.
#[test]
fn overload_sheds_the_same_request_with_the_same_bytes() {
    // Delay-then-panic faults at rate 1.0 make every work request occupy
    // its worker for a deterministic 400 ms; three back-to-back requests
    // therefore always see: r1 executing, r2 queued, r3 shed.
    let envs = [
        ("GCATCH_FAULT_RATE", "1.0"),
        ("GCATCH_FAULT_SITES", "serve.request"),
        ("GCATCH_FAULT_DELAY_MS", "400"),
        ("GCATCH_FAULT_SEED", "7"),
    ];
    let requests: Vec<String> = (1..=3)
        .map(|i| check_request(&format!("r{i}"), MODULE))
        .collect();
    let args = ["--workers", "1", "--max-queue", "1"];
    let (first, code) = transcript(&requests, &args, &envs);
    assert_eq!(code, 0);
    let shed: Vec<&String> = first
        .iter()
        .filter(|l| l.contains(r#""overloaded":true"#))
        .collect();
    assert_eq!(shed.len(), 1, "exactly one request is shed: {first:?}");
    assert!(shed[0].contains(r#""id":"r3""#), "{}", shed[0]);
    assert!(shed[0].contains("retry_after_ms"), "{}", shed[0]);

    let (second, _) = transcript(&requests, &args, &envs);
    assert_eq!(first, second, "shedding must be deterministic");
}

/// SIGTERM drains the daemon: in-flight work finishes, the summary is
/// flushed, and the process exits 0.
#[test]
fn sigterm_drains_the_stdio_daemon_cleanly() {
    let mut daemon = StdioDaemon::spawn(&[], &[]);
    daemon.send(&check_request("a", MODULE));
    let line = daemon.recv();
    assert!(line.contains(r#""id":"a","ok":true"#), "{line}");
    let pid = daemon.child.id().to_string();
    let out = Command::new("kill")
        .args(["-TERM", &pid])
        .output()
        .expect("kill runs");
    assert!(out.status.success(), "SIGTERM delivered");
    let (code, stderr) = daemon.finish();
    assert_eq!(code, 0, "SIGTERM drain exits 0 (stderr: {stderr})");
    assert!(stderr.contains("serve drained"), "{stderr}");
}

/// A `shutdown` request must wind the daemon down even while stdin stays
/// open and idle: the drain flag the server flips is the same flag the
/// stdin line iterator polls, so no further input is needed for the
/// daemon to notice. (Regression: the drain used to be mirrored into the
/// iterator only after the NEXT line arrived, so a shutdown over --stdio
/// with an open, silent stdin hung forever.)
#[test]
fn shutdown_request_exits_while_stdin_stays_open() {
    let mut daemon = StdioDaemon::spawn(&[], &[]);
    daemon.send(&check_request("a", MODULE));
    let line = daemon.recv();
    assert!(line.contains(r#""id":"a","ok":true"#), "{line}");
    daemon.send(r#"{"id":"q","op":"shutdown"}"#);
    let ack = daemon.recv();
    assert!(ack.contains(r#""draining":true"#), "{ack}");
    // Hold stdin open: the daemon must still exit on its own.
    let deadline = Instant::now() + Duration::from_secs(10);
    let code = loop {
        match daemon.child.try_wait().expect("try_wait") {
            Some(status) => break status.code().expect("exit code"),
            None if Instant::now() >= deadline => {
                let _ = daemon.child.kill();
                panic!("daemon did not exit after shutdown with stdin open");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    assert_eq!(code, 0, "shutdown drain exits 0");
}

/// The crash-only contract. A daemon with `serve.cache` faults persists
/// deliberately corrupt index lines and is then SIGKILLed mid-request —
/// no destructor, no flush, exactly like an OOM kill. A restart over the
/// same cache directory must heal the index (corrupt entries dropped,
/// survivors compacted) and replay the full request set byte-identical
/// to a cold daemon on a fresh cache — which itself answers `check` with
/// the exact bytes of a single-shot `gcatch check --json`.
#[test]
fn sigkill_then_warm_restart_replays_cold_responses_byte_identically() {
    let dir = scratch("crash");
    let warm_cache = dir.join("warm-cache");
    let cold_cache = dir.join("cold-cache");

    // Victim daemon: every cache insert writes a corrupt index line.
    let mut victim = StdioDaemon::spawn(
        &["--cache-dir", warm_cache.to_str().unwrap()],
        &[
            ("GCATCH_FAULT_RATE", "1.0"),
            ("GCATCH_FAULT_SITES", "serve.cache"),
            ("GCATCH_FAULT_DELAY_MS", "0"),
        ],
    );
    victim.send(&check_request("v1", MODULE));
    let answered = victim.recv();
    assert!(answered.contains(r#""id":"v1","ok":true"#), "{answered}");
    // Second request in flight when the daemon dies.
    victim.send(&check_request("v2", CLEAN));
    victim.child.kill().expect("SIGKILL delivered");
    victim.child.wait().expect("victim reaped");

    // The index now holds a header plus corrupt line(s); a restart heals
    // it and recomputes — warmth is the only thing a crash can lose.
    let requests = vec![
        check_request("r1", MODULE),
        check_request("r2", CLEAN),
        format!(r#"{{"id":"r3","op":"explain","module":"{MODULE}"}}"#),
        format!(r#"{{"id":"r4","op":"fix-dry-run","module":"{MODULE}"}}"#),
    ];
    let warm_args = ["--cache-dir", warm_cache.to_str().unwrap()];
    let (warm, warm_code) = transcript(&requests, &warm_args, &[]);
    let cold_args = ["--cache-dir", cold_cache.to_str().unwrap()];
    let (cold, cold_code) = transcript(&requests, &cold_args, &[]);
    assert_eq!(warm_code, 0);
    assert_eq!(cold_code, 0);
    assert_eq!(
        warm, cold,
        "kill -9 + warm restart must replay cold responses byte-identically"
    );

    // And the daemon's check result is the single-shot report, byte for
    // byte: response r1 is exactly the `gcatch check --json` output
    // wrapped in the response envelope.
    let single = gcatch()
        .args(["check", MODULE, "--json"])
        .output()
        .expect("gcatch check runs");
    let report = String::from_utf8(single.stdout).unwrap();
    let expected = format!(
        r#"{{"id":"r1","ok":true,"op":"check","module":"{MODULE}","result":{}}}"#,
        report.trim_end()
    );
    assert_eq!(warm[0], expected, "daemon check == single-shot check");
    std::fs::remove_dir_all(&dir).ok();
}

/// The healed index survives a second restart intact: entries recomputed
/// after the crash are persisted correctly and served as cache hits.
#[test]
fn healed_cache_serves_hits_on_the_next_restart() {
    let dir = scratch("heal");
    let cache = dir.join("cache");
    let requests = [check_request("r1", MODULE)];
    let args = ["--cache-dir", cache.to_str().unwrap()];

    let mut first = StdioDaemon::spawn(&args, &[]);
    first.send(&requests[0]);
    let cold_line = first.recv();
    let (code, stderr) = first.finish();
    assert_eq!(code, 0);
    assert!(stderr.contains("cache warm 0"), "{stderr}");

    let mut second = StdioDaemon::spawn(&args, &[]);
    second.send(&requests[0]);
    let warm_line = second.recv();
    let (code, stderr) = second.finish();
    assert_eq!(code, 0);
    assert!(stderr.contains("1 cache hit(s)"), "{stderr}");
    assert!(stderr.contains("cache warm 1"), "{stderr}");
    assert_eq!(cold_line, warm_line, "a cache hit changes no bytes");
    std::fs::remove_dir_all(&dir).ok();
}

/// Usage errors: serve rejects contradictory or missing transports and
/// unknown flags with exit 2, before binding anything.
#[test]
fn serve_usage_errors_exit_2() {
    for args in [
        vec!["serve"],
        vec!["serve", "--stdio", "--socket", "/tmp/x.sock"],
        vec!["serve", "--stdio", "--bogus"],
        vec!["serve", "--stdio", "extra-positional"],
    ] {
        let out = gcatch().args(&args).output().expect("gcatch runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2 (stderr: {})",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
