//! Cross-crate integration tests: frontend → IR → detector → fixer →
//! simulator, exercised together on corpus replicas and differential
//! checks between the static and dynamic views.

use gcatch_suite::corpus::apps::{generate_all, GenConfig};
use gcatch_suite::corpus::census::run_app;
use gcatch_suite::corpus::patterns::{emit, fp_patterns, real_patterns};
use gcatch_suite::corpus::study::{is_detected, study_set};
use gcatch_suite::gcatch::{BugKind, DetectorConfig, GCatch};
use gcatch_suite::gfix::{Pipeline, Strategy};
use gcatch_suite::sim::{Config, Simulator};

fn small_corpus() -> Vec<gcatch_suite::corpus::apps::GeneratedApp> {
    generate_all(&GenConfig {
        seed: 11,
        filler_per_kloc: 0.01,
    })
}

/// Every replica reproduces its exact Table 1 row (counts per category,
/// FP classification, and GFix strategy split).
#[test]
fn all_21_replicas_reproduce_table1() {
    let apps = small_corpus();
    let profiles = gcatch_suite::corpus::apps::table1_profiles();
    let config = DetectorConfig::default();
    for (app, profile) in apps.iter().zip(&profiles) {
        let result = run_app(app, &config);
        assert!(
            result.missed.is_empty(),
            "{}: planted bugs were missed: {:?}",
            app.name,
            result.missed
        );
        let cell = |kind: BugKind| result.cells.get(&kind).copied().unwrap_or_default();
        assert_eq!(
            (
                cell(BugKind::BmocChannel).real,
                cell(BugKind::BmocChannel).fp
            ),
            profile.bmoc_c,
            "{}: BMOC-C",
            app.name
        );
        assert_eq!(
            (
                cell(BugKind::BmocChannelMutex).real,
                cell(BugKind::BmocChannelMutex).fp
            ),
            profile.bmoc_m,
            "{}: BMOC-M",
            app.name
        );
        assert_eq!(
            (
                cell(BugKind::MissingUnlock).real,
                cell(BugKind::MissingUnlock).fp
            ),
            profile.unlock,
            "{}: unlock",
            app.name
        );
        assert_eq!(
            (cell(BugKind::DoubleLock).real, cell(BugKind::DoubleLock).fp),
            profile.double_lock,
            "{}: double lock",
            app.name
        );
        assert_eq!(
            (
                cell(BugKind::ConflictingLockOrder).real,
                cell(BugKind::ConflictingLockOrder).fp
            ),
            profile.conflict,
            "{}: conflict",
            app.name
        );
        assert_eq!(
            (
                cell(BugKind::StructFieldRace).real,
                cell(BugKind::StructFieldRace).fp
            ),
            profile.struct_field,
            "{}: struct field",
            app.name
        );
        assert_eq!(
            (
                cell(BugKind::FatalInChildGoroutine).real,
                cell(BugKind::FatalInChildGoroutine).fp
            ),
            profile.fatal,
            "{}: fatal",
            app.name
        );
        let s = |st: Strategy| result.gfix.get(&st).copied().unwrap_or(0);
        assert_eq!(
            (
                s(Strategy::IncreaseBuffer),
                s(Strategy::DeferOperation),
                s(Strategy::AddStopChannel)
            ),
            profile.gfix,
            "{}: GFix strategies",
            app.name
        );
    }
}

/// Differential soundness: every *real* self-driving BMOC pattern blocks
/// under some simulated schedule, and every FP pattern never does — so the
/// static FP labels in Table 1 are dynamically justified.
#[test]
fn static_fp_labels_are_dynamically_justified() {
    for kind in real_patterns().into_iter().chain(fp_patterns()) {
        let plant = emit(kind, 4242);
        let Some(entry) = plant.entry.clone() else {
            continue;
        };
        let source = format!("package main\n{}\nfunc main() {{\n}}\n", plant.source);
        let module = gcatch_suite::ir::lower_source(&source).expect("pattern lowers");
        let sim = Simulator::new(&module);
        let mut blocked = false;
        for sleep in [false, true] {
            let cfg = Config {
                entry: entry.clone(),
                sleep_injection: sleep,
                ..Config::default()
            };
            blocked |= sim.explore(&cfg, 0..30).iter().any(|r| r.is_blocking());
        }
        if plant.fp {
            assert!(!blocked, "{kind:?} labeled FP but blocks dynamically");
        } else if plant.kind.is_bmoc() {
            assert!(blocked, "{kind:?} labeled real but never blocks");
        }
    }
}

/// Every patch generated on a small multi-bug program validates end to end.
#[test]
fn patches_on_multi_bug_program_validate() {
    let a = emit(gcatch_suite::corpus::patterns::PatternKind::SingleSend, 801);
    let b = emit(
        gcatch_suite::corpus::patterns::PatternKind::MultipleOps,
        802,
    );
    let source = format!(
        "package main\n{}\n{}\nfunc main() {{\n}}\n",
        a.source, b.source
    );
    let pipeline = Pipeline::from_source(&source).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    assert_eq!(
        results.patches.len(),
        2,
        "both bugs fixed: {:?}",
        results.rejections
    );
    for (patch, plant) in [(&results.patches[0], &a), (&results.patches[1], &b)] {
        let plant_for_patch = if patch.primitive_name.contains(&a.marker) {
            &a
        } else {
            &b
        };
        let _ = plant;
        let entry = plant_for_patch.entry.clone().unwrap();
        let v = gcatch_suite::gfix::validate(&patch.before, &patch.after, &entry, 30);
        assert!(
            v.patch_blocks_never,
            "{} patch still blocks",
            patch.primitive_name
        );
        assert!(v.semantics_preserved);
    }
}

/// The coverage study's aggregate: 33 of 49 detected.
#[test]
fn coverage_study_detects_33_of_49() {
    let config = DetectorConfig::default();
    let detected = study_set()
        .iter()
        .filter(|b| is_detected(b, &config))
        .count();
    assert_eq!(detected, 33);
}

/// Disentangling is a performance device, not a precision trade-off on
/// simple programs: whole-program mode finds the same bug.
#[test]
fn whole_program_mode_agrees_on_simple_bug() {
    let plant = emit(gcatch_suite::corpus::patterns::PatternKind::SingleSend, 900);
    let source = format!(
        "package main\n{}\nfunc main() {{\n Run900()\n}}\n",
        plant.source
    );
    let module = gcatch_suite::ir::lower_source(&source).unwrap();
    let gcatch = GCatch::new(&module);
    let with = gcatch.detect_bmoc(&DetectorConfig {
        disentangle: true,
        ..Default::default()
    });
    let without = gcatch.detect_bmoc(&DetectorConfig {
        disentangle: false,
        ..Default::default()
    });
    let hit = |bugs: &[gcatch_suite::gcatch::BugReport]| {
        bugs.iter()
            .any(|b| b.primitive_name.contains(&plant.marker))
    };
    assert!(hit(&with));
    assert!(hit(&without));
}

/// The umbrella crate exposes a coherent end-to-end surface: parse with
/// golite, lower with ir, detect with gcatch, fix with gfix, run with sim.
#[test]
fn umbrella_crate_round_trip() {
    let src =
        "package main\nfunc main() {\n ch := make(chan int, 1)\n ch <- 1\n fmt.Println(<-ch)\n}";
    let program = gcatch_suite::golite::parse(src).unwrap();
    let printed = gcatch_suite::golite::print_program(&program);
    assert!(printed.contains("make(chan int, 1)"));
    let module = gcatch_suite::ir::lower(&program).unwrap();
    let bugs = GCatch::new(&module).detect_all(&DetectorConfig::default());
    assert!(bugs.is_empty());
    let report = Simulator::new(&module).run(&Config::default());
    assert_eq!(report.output, vec!["1"]);
}
