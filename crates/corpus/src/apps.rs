//! Synthetic replicas of the 21 applications evaluated in the paper.
//!
//! Each profile carries Table 1's ground truth: per-detector real-bug and
//! false-positive counts plus the GFix per-strategy fix counts. The
//! generator plants exactly those pattern instances (with app-unique ids)
//! into a program padded with filler code proportional to the real
//! application's size, so the scaling experiment (E5) sees the same size
//! ordering the paper reports (Kubernetes largest, bbolt smallest, ten
//! small apps analyzed in under a minute).

use crate::patterns::{emit, PatternKind, Plant};
use prng::Prng;

/// (real bugs, false positives) for one Table 1 column.
pub type Cell = (usize, usize);

/// One evaluated application's ground truth (a row of Table 1).
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name.
    pub name: &'static str,
    /// Approximate size of the real application in kLoC (drives filler).
    pub kloc: usize,
    /// BMOC bugs involving channels only.
    pub bmoc_c: Cell,
    /// BMOC bugs involving channels and mutexes.
    pub bmoc_m: Cell,
    /// Missing unlocks.
    pub unlock: Cell,
    /// Double locks.
    pub double_lock: Cell,
    /// Conflicting lock orders.
    pub conflict: Cell,
    /// Struct-field lockset races.
    pub struct_field: Cell,
    /// `Fatal` from child goroutines.
    pub fatal: Cell,
    /// GFix fixes by strategy (S-I, S-II, S-III).
    pub gfix: (usize, usize, usize),
}

impl AppProfile {
    /// Total real bugs across all detectors.
    pub fn total_real(&self) -> usize {
        self.bmoc_c.0
            + self.bmoc_m.0
            + self.unlock.0
            + self.double_lock.0
            + self.conflict.0
            + self.struct_field.0
            + self.fatal.0
    }

    /// Total false positives across all detectors.
    pub fn total_fp(&self) -> usize {
        self.bmoc_c.1
            + self.bmoc_m.1
            + self.unlock.1
            + self.double_lock.1
            + self.conflict.1
            + self.struct_field.1
            + self.fatal.1
    }

    /// Total GFix patches.
    pub fn total_fixed(&self) -> usize {
        self.gfix.0 + self.gfix.1 + self.gfix.2
    }
}

/// The 21 applications of Table 1, in the paper's (GitHub-stars) order.
pub fn table1_profiles() -> Vec<AppProfile> {
    let p =
        |name, kloc, bmoc_c, bmoc_m, unlock, double_lock, conflict, struct_field, fatal, gfix| {
            AppProfile {
                name,
                kloc,
                bmoc_c,
                bmoc_m,
                unlock,
                double_lock,
                conflict,
                struct_field,
                fatal,
                gfix,
            }
        };
    vec![
        p(
            "Go",
            1600,
            (21, 2),
            (1, 1),
            (8, 3),
            (0, 2),
            (1, 0),
            (2, 5),
            (3, 0),
            (12, 0, 2),
        ),
        p(
            "Kubernetes",
            3100,
            (14, 5),
            (1, 0),
            (1, 0),
            (1, 0),
            (0, 0),
            (5, 6),
            (10, 0),
            (8, 0, 0),
        ),
        p(
            "Docker",
            1100,
            (49, 8),
            (0, 0),
            (1, 1),
            (2, 3),
            (1, 0),
            (3, 1),
            (0, 0),
            (40, 1, 6),
        ),
        p(
            "HUGO",
            80,
            (0, 0),
            (0, 0),
            (2, 0),
            (0, 1),
            (0, 0),
            (2, 1),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "Gin",
            25,
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "frp",
            30,
            (0, 0),
            (0, 0),
            (1, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "Gogs",
            100,
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "Syncthing",
            140,
            (0, 1),
            (0, 0),
            (3, 1),
            (0, 0),
            (0, 0),
            (1, 2),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "etcd",
            440,
            (39, 8),
            (0, 0),
            (6, 1),
            (1, 2),
            (0, 1),
            (7, 2),
            (4, 0),
            (24, 1, 9),
        ),
        p(
            "v2ray-core",
            120,
            (0, 0),
            (0, 1),
            (0, 0),
            (2, 1),
            (2, 1),
            (3, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "Prometheus",
            300,
            (2, 1),
            (0, 0),
            (1, 1),
            (1, 1),
            (0, 2),
            (0, 2),
            (0, 0),
            (2, 0, 0),
        ),
        p(
            "fzf",
            15,
            (0, 0),
            (0, 0),
            (0, 1),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "traefik",
            150,
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "Caddy",
            50,
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "Go-Ethereum",
            640,
            (9, 19),
            (0, 3),
            (4, 1),
            (9, 1),
            (0, 0),
            (6, 7),
            (3, 0),
            (6, 0, 2),
        ),
        p(
            "Beego",
            90,
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (3, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "mkcert",
            2,
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0, 0),
        ),
        p(
            "TiDB",
            850,
            (1, 0),
            (0, 0),
            (0, 6),
            (3, 0),
            (2, 0),
            (0, 2),
            (0, 0),
            (1, 0, 0),
        ),
        p(
            "CockroachDB",
            1500,
            (4, 2),
            (0, 0),
            (5, 0),
            (0, 4),
            (2, 1),
            (0, 3),
            (0, 0),
            (1, 2, 0),
        ),
        p(
            "gRPC",
            160,
            (6, 0),
            (0, 0),
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 0),
            (2, 0),
            (4, 0, 1),
        ),
        p(
            "bbolt",
            10,
            (2, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (0, 0),
            (4, 0),
            (1, 0, 1),
        ),
    ]
}

/// A generated application replica.
#[derive(Debug)]
pub struct GeneratedApp {
    /// Profile name.
    pub name: &'static str,
    /// The full GoLite source.
    pub source: String,
    /// Every planted pattern instance.
    pub plants: Vec<Plant>,
}

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed for filler variety.
    pub seed: u64,
    /// Filler functions per kLoC of the real application (the default
    /// yields program sizes whose *ordering* matches Table 1).
    pub filler_per_kloc: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 1,
            filler_per_kloc: 0.25,
        }
    }
}

/// The global BMOC-C false-positive quota, matching the §5.2 census:
/// 20 infeasible paths (9 conditions + 11 loops, with 5 of the condition
/// kind flavored BMOC-M elsewhere), 17 alias (15 channel-through-channel +
/// 2 slice), 14 call graph.
fn bmoc_c_fp_quota() -> Vec<PatternKind> {
    let mut q = Vec::new();
    q.extend(std::iter::repeat_n(PatternKind::FpInfeasibleCond, 4));
    q.extend(std::iter::repeat_n(PatternKind::FpLoopUnroll, 11));
    q.extend(std::iter::repeat_n(PatternKind::FpAliasChanChan, 15));
    q.extend(std::iter::repeat_n(PatternKind::FpAliasSlice, 2));
    q.extend(std::iter::repeat_n(PatternKind::FpCallGraph, 14));
    q
}

/// Generates every Table 1 replica (the FP quota is distributed across apps
/// in row order, so generate all apps together).
pub fn generate_all(config: &GenConfig) -> Vec<GeneratedApp> {
    let mut quota = bmoc_c_fp_quota();
    quota.reverse(); // pop() consumes in declaration order
    let mut next_id = 1u32;
    table1_profiles()
        .iter()
        .map(|profile| generate_app(profile, config, &mut quota, &mut next_id))
        .collect()
}

/// Generates one replica (used by `generate_all`; callable directly with a
/// private quota for single-app experiments).
pub fn generate_app(
    profile: &AppProfile,
    config: &GenConfig,
    bmoc_fp_quota: &mut Vec<PatternKind>,
    next_id: &mut u32,
) -> GeneratedApp {
    let mut rng = Prng::seed_from_u64(config.seed ^ profile.kloc as u64);
    let mut plants: Vec<Plant> = Vec::new();
    let mut source = String::from("package main\n\n");
    let fresh = |n: &mut u32| {
        let id = *n;
        *n += 1;
        id
    };
    let plant = |kind: PatternKind, plants: &mut Vec<Plant>, source: &mut String, n: &mut u32| {
        let p = emit(kind, fresh(n));
        source.push_str(&p.source);
        plants.push(p);
    };

    // Real BMOC-C bugs: GFix split first, remainder unfixable.
    let (s1, s2, s3) = profile.gfix;
    for _ in 0..s1 {
        plant(PatternKind::SingleSend, &mut plants, &mut source, next_id);
    }
    for i in 0..s2 {
        let kind = if i % 2 == 0 {
            PatternKind::MissingInteractionSend
        } else {
            PatternKind::MissingInteractionClose
        };
        plant(kind, &mut plants, &mut source, next_id);
    }
    for _ in 0..s3 {
        plant(PatternKind::MultipleOps, &mut plants, &mut source, next_id);
    }
    let unfixable = profile.bmoc_c.0.saturating_sub(profile.total_fixed());
    for _ in 0..unfixable {
        plant(
            PatternKind::BlockedParent,
            &mut plants,
            &mut source,
            next_id,
        );
    }
    // Other real categories.
    for _ in 0..profile.bmoc_m.0 {
        plant(PatternKind::BmocMutex, &mut plants, &mut source, next_id);
    }
    for _ in 0..profile.unlock.0 {
        plant(
            PatternKind::MissingUnlock,
            &mut plants,
            &mut source,
            next_id,
        );
    }
    for _ in 0..profile.double_lock.0 {
        plant(PatternKind::DoubleLock, &mut plants, &mut source, next_id);
    }
    for _ in 0..profile.conflict.0 {
        plant(PatternKind::LockOrder, &mut plants, &mut source, next_id);
    }
    for _ in 0..profile.struct_field.0 {
        plant(PatternKind::FieldRace, &mut plants, &mut source, next_id);
    }
    for _ in 0..profile.fatal.0 {
        plant(PatternKind::FatalChild, &mut plants, &mut source, next_id);
    }
    // False positives.
    for _ in 0..profile.bmoc_c.1 {
        let kind = bmoc_fp_quota.pop().unwrap_or(PatternKind::FpAliasChanChan);
        plant(kind, &mut plants, &mut source, next_id);
    }
    for _ in 0..profile.bmoc_m.1 {
        plant(
            PatternKind::FpMutexInfeasible,
            &mut plants,
            &mut source,
            next_id,
        );
    }
    for _ in 0..profile.unlock.1 {
        plant(
            PatternKind::FpUnlockWrapper,
            &mut plants,
            &mut source,
            next_id,
        );
    }
    for _ in 0..profile.double_lock.1 {
        plant(
            PatternKind::FpDoubleLockHidden,
            &mut plants,
            &mut source,
            next_id,
        );
    }
    for _ in 0..profile.conflict.1 {
        plant(
            PatternKind::FpLockOrderDead,
            &mut plants,
            &mut source,
            next_id,
        );
    }
    for _ in 0..profile.struct_field.1 {
        plant(
            PatternKind::FpFieldContext,
            &mut plants,
            &mut source,
            next_id,
        );
    }
    // (fatal FP count is zero for every app in Table 1.)

    // Filler proportional to real-application size.
    let n_filler = (profile.kloc as f64 * config.filler_per_kloc).ceil() as usize;
    for _ in 0..n_filler {
        let id = fresh(next_id);
        let a: i64 = rng.gen_range(1i64..100);
        let b: i64 = rng.gen_range(1i64..100);
        source.push_str(&format!(
            r#"
func filler{id}(n int) int {{
    acc := {a}
    for i := 0; i < n; i++ {{
        if i%2 == 0 {{
            acc = acc + {b}
        }} else {{
            acc = acc - i
        }}
    }}
    return acc
}}
"#
        ));
    }
    source.push_str("\nfunc main() {\n}\n");
    GeneratedApp {
        name: profile.name,
        source,
        plants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_sum_to_paper_totals() {
        let profiles = table1_profiles();
        assert_eq!(profiles.len(), 21);
        let sum = |f: fn(&AppProfile) -> Cell| -> Cell {
            profiles.iter().fold((0, 0), |acc, p| {
                let c = f(p);
                (acc.0 + c.0, acc.1 + c.1)
            })
        };
        assert_eq!(sum(|p| p.bmoc_c), (147, 46), "BMOC-C row total");
        assert_eq!(sum(|p| p.bmoc_m), (2, 5), "BMOC-M row total");
        assert_eq!(sum(|p| p.unlock), (32, 15));
        assert_eq!(sum(|p| p.double_lock), (19, 16));
        assert_eq!(sum(|p| p.conflict), (9, 5));
        assert_eq!(sum(|p| p.struct_field), (33, 31));
        assert_eq!(sum(|p| p.fatal), (26, 0));
        // 149 BMOC + 119 traditional = 268 real bugs; 51 + 67 = 118 FPs.
        let total_real: usize = profiles.iter().map(|p| p.total_real()).sum();
        let total_fp: usize = profiles.iter().map(|p| p.total_fp()).sum();
        assert_eq!(total_real, 268);
        assert_eq!(total_fp, 118);
        // GFix: 99 + 4 + 21 = 124 patches.
        let (s1, s2, s3) = profiles.iter().fold((0, 0, 0), |acc, p| {
            (acc.0 + p.gfix.0, acc.1 + p.gfix.1, acc.2 + p.gfix.2)
        });
        assert_eq!((s1, s2, s3), (99, 4, 21));
    }

    #[test]
    fn fp_quota_matches_census() {
        let q = bmoc_c_fp_quota();
        assert_eq!(q.len(), 46, "BMOC-C FPs");
        // Plus the 5 BMOC-M FPs = 51 total (paper: 20 + 17 + 14).
    }

    #[test]
    fn generated_apps_parse_and_lower() {
        let config = GenConfig {
            seed: 3,
            filler_per_kloc: 0.01,
        };
        for app in generate_all(&config) {
            let module = golite_ir::lower_source(&app.source)
                .unwrap_or_else(|e| panic!("{} fails to lower: {e}", app.name));
            assert!(module.funcs.len() > 1, "{} too small", app.name);
        }
    }

    #[test]
    fn plant_counts_match_profile() {
        let config = GenConfig {
            seed: 3,
            filler_per_kloc: 0.0,
        };
        let mut quota = bmoc_c_fp_quota();
        quota.reverse();
        let mut next_id = 1;
        let profiles = table1_profiles();
        let docker = profiles.iter().find(|p| p.name == "Docker").unwrap();
        let app = generate_app(docker, &config, &mut quota, &mut next_id);
        let real = app.plants.iter().filter(|p| !p.fp).count();
        let fp = app.plants.iter().filter(|p| p.fp).count();
        assert_eq!(real, docker.total_real());
        assert_eq!(fp, docker.total_fp());
    }

    #[test]
    fn app_sizes_follow_kloc_ordering() {
        let config = GenConfig {
            seed: 3,
            filler_per_kloc: 0.05,
        };
        let apps = generate_all(&config);
        let k8s = apps.iter().find(|a| a.name == "Kubernetes").unwrap();
        let bbolt = apps.iter().find(|a| a.name == "bbolt").unwrap();
        assert!(k8s.source.len() > 5 * bbolt.source.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig {
            seed: 42,
            filler_per_kloc: 0.02,
        };
        let a = generate_all(&config);
        let b = generate_all(&config);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }
}
