//! The 49-bug coverage-study set (§5.2).
//!
//! The paper manually replays GCatch over the 49 BMOC bugs of the released
//! Go concurrency-bug collection \[87\] and finds 33 detectable (67%). The
//! misses fall into four causes, all of which are *structural* — they
//! reproduce in this implementation for the same reasons:
//!
//! 1. channel operations inside a critical section whose lock lives in the
//!    LCA's caller (2 bugs);
//! 2. bugs observable only with dynamic values (3 bugs);
//! 3. unmodeled primitives: `WaitGroup` and `Cond` (9 bugs here);
//! 4. `nil`-channel bugs, invisible without data-flow analysis (2 bugs).

use crate::patterns::{emit, PatternKind};
use gcatch::resilience::catch_isolated;
use gcatch::{DetectorConfig, GCatch, Incident, IncidentKind};

/// Why a study bug evades the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MissCause {
    /// Critical section outside the LCA scope.
    LcaCriticalSection,
    /// Requires dynamic values.
    DynamicValue,
    /// Unmodeled primitive (`WaitGroup`, `Cond`).
    UnmodeledPrimitive,
    /// Nil channel (no creation site, no data flow).
    NilChannel,
}

/// One bug of the study set.
#[derive(Debug)]
pub struct StudyBug {
    /// Identifier within the set.
    pub id: usize,
    /// Source of the program containing the bug.
    pub source: String,
    /// Whether GCatch detects it.
    pub detectable: bool,
    /// The miss cause for undetectable bugs.
    pub miss_cause: Option<MissCause>,
}

fn wrap(body: String) -> String {
    format!("package main\n{body}\nfunc main() {{\n}}\n")
}

fn from_pattern(id: usize, kind: PatternKind) -> StudyBug {
    let plant = emit(kind, 9000 + id as u32);
    StudyBug {
        id,
        source: wrap(plant.source),
        detectable: true,
        miss_cause: None,
    }
}

/// Builds the 49-bug set: 33 detectable, 16 missed across the four causes.
pub fn study_set() -> Vec<StudyBug> {
    let mut bugs = Vec::new();
    let mut id = 0;
    let mut push_patterns = |kind: PatternKind, n: usize, bugs: &mut Vec<StudyBug>| {
        for _ in 0..n {
            bugs.push(from_pattern(id, kind));
            id += 1;
        }
    };
    // 33 detectable bugs drawn from the verified pattern library.
    push_patterns(PatternKind::SingleSend, 12, &mut bugs);
    push_patterns(PatternKind::MissingInteractionSend, 5, &mut bugs);
    push_patterns(PatternKind::MissingInteractionClose, 3, &mut bugs);
    push_patterns(PatternKind::MultipleOps, 6, &mut bugs);
    push_patterns(PatternKind::BlockedParent, 5, &mut bugs);
    push_patterns(PatternKind::BmocMutex, 2, &mut bugs);

    // 2 misses: critical section in the LCA's caller (§5.2 reason 1).
    for k in 0..2 {
        let n = 9100 + k;
        bugs.push(StudyBug {
            id: bugs.len(),
            source: wrap(format!(
                r#"
func Run{n}() {{
    var mu{n} sync.Mutex
    mu{n}.Lock()
    Broker{n}(&mu{n})
    mu{n}.Unlock()
}}

func Broker{n}(mu{n} *sync.Mutex) {{
    ch{n} := make(chan int)
    go func() {{
        mu{n}.Lock()
        ch{n} <- 1
        mu{n}.Unlock()
    }}()
    <-ch{n}
}}
"#
            )),
            detectable: false,
            miss_cause: Some(MissCause::LcaCriticalSection),
        });
    }

    // 3 misses: only dynamic values reveal the bug (§5.2 reason 2) — the
    // consumer waits for a value the producer never sends, but statically a
    // matching send always exists.
    for k in 0..3 {
        let n = 9200 + k;
        bugs.push(StudyBug {
            id: bugs.len(),
            source: wrap(format!(
                r#"
func Waiter{n}() {{
    vals{n} := make(chan int)
    go func() {{
        for {{
            vals{n} <- 7
        }}
    }}()
    hits := 0
    for {{
        v := <-vals{n}
        if v == 42 {{
            hits = hits + 1
        }}
        _ = hits
    }}
}}
"#
            )),
            detectable: false,
            miss_cause: Some(MissCause::DynamicValue),
        });
    }

    // 9 misses: unmodeled primitives (§5.2 reason 3).
    for k in 0..7 {
        let n = 9300 + k;
        bugs.push(StudyBug {
            id: bugs.len(),
            source: wrap(format!(
                r#"
func Gather{n}() {{
    var wg{n} sync.WaitGroup
    wg{n}.Add(2)
    go func() {{
        wg{n}.Done()
    }}()
    wg{n}.Wait()
}}
"#
            )),
            detectable: false,
            miss_cause: Some(MissCause::UnmodeledPrimitive),
        });
    }
    for k in 0..2 {
        let n = 9400 + k;
        bugs.push(StudyBug {
            id: bugs.len(),
            source: wrap(format!(
                r#"
func Sleepy{n}() {{
    var cv{n} sync.Cond
    done{n} := make(chan int, 1)
    go func() {{
        cv{n}.Wait()
        done{n} <- 1
    }}()
}}
"#
            )),
            detectable: false,
            miss_cause: Some(MissCause::UnmodeledPrimitive),
        });
    }

    // 2 misses: nil channels (§5.2 reason 4).
    for k in 0..2 {
        let n = 9500 + k;
        bugs.push(StudyBug {
            id: bugs.len(),
            source: wrap(format!(
                r#"
func Forgotten{n}() {{
    var lost{n} chan int
    lost{n} <- 1
}}
"#
            )),
            detectable: false,
            miss_cause: Some(MissCause::NilChannel),
        });
    }

    bugs
}

/// Fault-isolated [`is_detected`]: a study bug whose lowering or analysis
/// fails becomes an app [`Incident`] instead of aborting the sweep, so a
/// batch over the study set degrades per-bug like the census does.
pub fn try_is_detected(bug: &StudyBug, config: &DetectorConfig) -> Result<bool, Incident> {
    catch_isolated(|| {
        let module = golite_ir::lower_source(&bug.source)
            .map_err(|e| format!("study bug {} does not lower: {e}", bug.id))?;
        let gcatch = GCatch::new(&module);
        Ok(gcatch.detect_bmoc(config).iter().any(|r| r.kind.is_bmoc()))
    })
    .unwrap_or_else(Err)
    .map_err(|message| Incident {
        kind: IncidentKind::App,
        name: format!("study-{}", bug.id),
        message,
        rung: 0,
        flight: Vec::new(),
    })
}

/// Runs the detector over a study bug and reports whether any BMOC report
/// fires. Panics on a non-lowering bug; batch callers want
/// [`try_is_detected`].
pub fn is_detected(bug: &StudyBug, config: &DetectorConfig) -> bool {
    try_is_detected(bug, config).unwrap_or_else(|inc| panic!("{}", inc.message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_has_49_bugs_33_detectable() {
        let set = study_set();
        assert_eq!(set.len(), 49);
        assert_eq!(set.iter().filter(|b| b.detectable).count(), 33);
        assert_eq!(set.iter().filter(|b| !b.detectable).count(), 16);
    }

    #[test]
    fn detector_verdicts_match_ground_truth() {
        let config = DetectorConfig::default();
        for bug in study_set() {
            let detected = is_detected(&bug, &config);
            assert_eq!(
                detected, bug.detectable,
                "study bug {} ({:?}) expected detectable={}",
                bug.id, bug.miss_cause, bug.detectable
            );
        }
    }

    #[test]
    fn unlowerable_study_bug_degrades_to_an_incident() {
        let bad = StudyBug {
            id: 999,
            source: "func main( {".to_string(),
            detectable: false,
            miss_cause: None,
        };
        let inc = try_is_detected(&bad, &DetectorConfig::default())
            .expect_err("non-lowering bug must fail gracefully");
        assert_eq!(inc.kind, IncidentKind::App);
        assert_eq!(inc.name, "study-999");
        assert!(inc.message.contains("does not lower"), "{}", inc.message);
    }

    #[test]
    fn miss_causes_match_paper_counts() {
        let set = study_set();
        let count = |cause: MissCause| set.iter().filter(|b| b.miss_cause == Some(cause)).count();
        assert_eq!(count(MissCause::LcaCriticalSection), 2);
        assert_eq!(count(MissCause::DynamicValue), 3);
        assert_eq!(count(MissCause::UnmodeledPrimitive), 9);
        assert_eq!(count(MissCause::NilChannel), 2);
    }
}
