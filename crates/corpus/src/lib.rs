//! # go-corpus — the evaluation substrate of the GCatch/GFix reproduction
//!
//! The paper evaluates on 21 real GitHub applications (Docker, Kubernetes,
//! etcd, …), a released 49-bug concurrency-bug collection, and the
//! `go vet`/`staticcheck` tool suites. None of those are available here, so
//! this crate synthesizes faithful replicas:
//!
//! * [`patterns`] — a verified library of buggy / false-positive GoLite
//!   snippets, one per Table 1 bug class and per §5.2 FP cause;
//! * [`apps`] — generators for the 21 applications with Table 1's exact
//!   per-app bug census planted and size-proportional filler code;
//! * [`census`] — runs GCatch/GFix over a replica and classifies every
//!   report against the planted ground truth;
//! * [`study`] — the 49-bug coverage study (33 detected / 16 missed across
//!   the paper's four miss causes);
//! * [`baseline`] — syntactic `vet`/`staticcheck`-style rules for the §7
//!   comparison (0/149 BMOC, Fatal-only traditional coverage).

#![warn(missing_docs)]

pub mod apps;
pub mod baseline;
pub mod census;
pub mod patterns;
pub mod study;
