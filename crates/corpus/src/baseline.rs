//! Pattern-based baseline checkers standing in for `go vet` and
//! `staticcheck` (§7's comparison).
//!
//! The paper runs both suites over its 268 reported bugs: they detect **0 of
//! the 149 BMOC bugs** and **20 of the 119 traditional bugs — all of them
//! `testing.Fatal` calls inside child goroutines** (vet's `testinggoroutine`
//! rule). These tools are syntactic: they match specific AST shapes with no
//! interleaving reasoning, which this module reimplements faithfully:
//!
//! * `testinggoroutine` — `t.Fatal`/`Fatalf`/`FailNow` lexically inside a
//!   `go func() { ... }()` literal in a test function;
//! * `lostcancel` (vet) — a `context.WithCancel` cancel function that is
//!   never mentioned again;
//! * `SA2001` (staticcheck) — an empty critical section
//!   (`mu.Lock(); mu.Unlock()` with nothing in between... reported as
//!   suspicious but never as a blocking bug).

use golite::ast::*;
use golite::Program;

/// A baseline finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineFinding {
    /// Which rule fired.
    pub rule: &'static str,
    /// The enclosing function.
    pub func: String,
    /// Short description.
    pub message: String,
}

/// Runs all baseline rules over a parsed program.
pub fn run_baseline(prog: &Program) -> Vec<BaselineFinding> {
    let mut out = Vec::new();
    for f in prog.funcs() {
        testinggoroutine(f, &mut out);
        lostcancel(f, &mut out);
        empty_critical_section(f, &mut out);
    }
    out
}

/// vet `testinggoroutine`: Fatal-family calls inside `go` closures.
fn testinggoroutine(f: &FuncDecl, out: &mut Vec<BaselineFinding>) {
    // Only applies to test functions (by Go convention).
    let is_test = f.name.starts_with("Test")
        || f.params
            .iter()
            .any(|p| matches!(p.ty, Type::Ptr(ref t) if **t == Type::TestingT));
    if !is_test {
        return;
    }
    fn block_has_fatal(b: &Block) -> bool {
        b.stmts.iter().any(stmt_has_fatal)
    }
    fn stmt_has_fatal(s: &Stmt) -> bool {
        match &s.kind {
            StmtKind::Expr(e) => expr_is_fatal(e),
            StmtKind::If { then, els, .. } => {
                block_has_fatal(then) || els.as_deref().is_some_and(stmt_has_fatal)
            }
            StmtKind::For { body, .. } | StmtKind::ForRange { body, .. } => block_has_fatal(body),
            StmtKind::Select(cases) => cases.iter().any(|c| block_has_fatal(&c.body)),
            StmtKind::Block(b) => block_has_fatal(b),
            _ => false,
        }
    }
    fn expr_is_fatal(e: &Expr) -> bool {
        matches!(
            &e.unparen().kind,
            ExprKind::Method { name, .. } if name == "Fatal" || name == "Fatalf" || name == "FailNow"
        )
    }
    fn walk(b: &Block, f_name: &str, out: &mut Vec<BaselineFinding>) {
        for s in &b.stmts {
            if let StmtKind::Go(call) = &s.kind {
                if let ExprKind::Call { callee, .. } = &call.unparen().kind {
                    if let ExprKind::Closure { body, .. } = &callee.unparen().kind {
                        if block_has_fatal(body) {
                            out.push(BaselineFinding {
                                rule: "testinggoroutine",
                                func: f_name.to_string(),
                                message: "call to t.Fatal from a non-test goroutine".into(),
                            });
                        }
                        walk(body, f_name, out);
                    }
                }
            }
            match &s.kind {
                StmtKind::If { then, els, .. } => {
                    walk(then, f_name, out);
                    if let Some(e) = els {
                        if let StmtKind::Block(b) = &e.kind {
                            walk(b, f_name, out);
                        }
                    }
                }
                StmtKind::For { body, .. } | StmtKind::ForRange { body, .. } => {
                    walk(body, f_name, out)
                }
                StmtKind::Select(cases) => {
                    for c in cases {
                        walk(&c.body, f_name, out);
                    }
                }
                _ => {}
            }
        }
    }
    walk(&f.body, &f.name, out);
}

/// vet `lostcancel`: the cancel function of `context.WithCancel` is unused.
fn lostcancel(f: &FuncDecl, out: &mut Vec<BaselineFinding>) {
    let mut cancels: Vec<String> = Vec::new();
    for s in &f.body.stmts {
        if let StmtKind::Define { names, rhs } = &s.kind {
            if let ExprKind::Method { recv, name, .. } = &rhs.unparen().kind {
                if recv.as_ident() == Some("context") && name == "WithCancel" && names.len() == 2 {
                    cancels.push(names[1].clone());
                }
            }
        }
    }
    let printed = golite::print_program(&Program {
        package: "p".into(),
        imports: vec![],
        decls: vec![Decl::Func(f.clone())],
        next_node_id: 0,
    });
    for cancel in cancels {
        if cancel == "_" {
            continue;
        }
        // Used exactly once means only the definition site mentions it.
        if printed.matches(&cancel).count() <= 1 {
            out.push(BaselineFinding {
                rule: "lostcancel",
                func: f.name.clone(),
                message: format!("the cancel function `{cancel}` is never used"),
            });
        }
    }
}

/// staticcheck SA2001-style: empty critical section.
fn empty_critical_section(f: &FuncDecl, out: &mut Vec<BaselineFinding>) {
    fn walk(b: &Block, f_name: &str, out: &mut Vec<BaselineFinding>) {
        for pair in b.stmts.windows(2) {
            let lock_of = |s: &Stmt| -> Option<String> {
                if let StmtKind::Expr(e) = &s.kind {
                    if let ExprKind::Method { recv, name, .. } = &e.unparen().kind {
                        if name == "Lock" {
                            return recv.as_ident().map(str::to_string);
                        }
                    }
                }
                None
            };
            let unlock_of = |s: &Stmt| -> Option<String> {
                if let StmtKind::Expr(e) = &s.kind {
                    if let ExprKind::Method { recv, name, .. } = &e.unparen().kind {
                        if name == "Unlock" {
                            return recv.as_ident().map(str::to_string);
                        }
                    }
                }
                None
            };
            if let (Some(a), Some(b)) = (lock_of(&pair[0]), unlock_of(&pair[1])) {
                if a == b {
                    out.push(BaselineFinding {
                        rule: "SA2001",
                        func: f_name.to_string(),
                        message: format!("empty critical section on `{a}`"),
                    });
                }
            }
        }
        for s in &b.stmts {
            match &s.kind {
                StmtKind::If { then, els, .. } => {
                    walk(then, f_name, out);
                    if let Some(e) = els {
                        if let StmtKind::Block(inner) = &e.kind {
                            walk(inner, f_name, out);
                        }
                    }
                }
                StmtKind::For { body, .. } | StmtKind::ForRange { body, .. } => {
                    walk(body, f_name, out)
                }
                _ => {}
            }
        }
    }
    walk(&f.body, &f.name, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::parse;

    #[test]
    fn testinggoroutine_catches_fatal_in_go_closure() {
        let prog = parse("func TestX(t *testing.T) {\n go func() {\n  t.Fatalf(\"nope\")\n }()\n}")
            .unwrap();
        let findings = run_baseline(&prog);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "testinggoroutine");
    }

    #[test]
    fn fatal_on_test_goroutine_is_fine() {
        let prog = parse("func TestX(t *testing.T) {\n t.Fatalf(\"fine\")\n}").unwrap();
        assert!(run_baseline(&prog).is_empty());
    }

    #[test]
    fn baseline_is_blind_to_bmoc_bugs() {
        // The Figure 1 bug: purely semantic, no syntactic marker. The
        // baseline must stay silent — this is the paper's 0/149 result.
        let prog = parse(
            r#"
func Exec(ctx context.Context) error {
    outDone := make(chan error)
    go func() {
        outDone <- nil
    }()
    select {
    case err := <-outDone:
        return err
    case <-ctx.Done():
        return ctx.Err()
    }
}
"#,
        )
        .unwrap();
        assert!(run_baseline(&prog).is_empty());
    }

    #[test]
    fn lostcancel_fires_on_discarded_cancel() {
        let prog = parse(
            "func f() {\n ctx, cancel := context.WithCancel(context.Background())\n _ = ctx\n}",
        )
        .unwrap();
        let findings = run_baseline(&prog);
        assert!(
            findings.iter().any(|f| f.rule == "lostcancel"),
            "{findings:?}"
        );
        let _ = &prog;
    }

    #[test]
    fn lostcancel_quiet_when_deferred() {
        let prog = parse(
            "func f() {\n ctx, cancel := context.WithCancel(context.Background())\n defer cancel()\n _ = ctx\n}",
        )
        .unwrap();
        assert!(!run_baseline(&prog).iter().any(|f| f.rule == "lostcancel"));
    }

    #[test]
    fn empty_critical_section_detected() {
        let prog = parse("func f() {\n var mu sync.Mutex\n mu.Lock()\n mu.Unlock()\n}").unwrap();
        assert!(run_baseline(&prog).iter().any(|f| f.rule == "SA2001"));
    }
}
