//! Running the detectors over generated replicas and classifying reports
//! against the planted ground truth — the machinery behind the Table 1,
//! FP-census, and patch-statistics harnesses.

use crate::apps::GeneratedApp;
use crate::patterns::{FpCause, Plant};
use gcatch::report::{BugKind, BugReport};
use gcatch::resilience::catch_isolated;
use gcatch::{
    faults, BatchConfig, BatchEngine, DetectorConfig, GCatch, Incident, IncidentKind, JobCtx,
    Stage, Stats, Telemetry, Tracer,
};
use gfix::{Pipeline, Strategy};
use std::collections::HashMap;
use std::time::Duration;

/// One Table 1 cell: detected real bugs and reported false positives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellResult {
    /// Planted real bugs that were detected.
    pub real: usize,
    /// Planted FP triggers that were (falsely) reported.
    pub fp: usize,
}

/// The outcome of one application replica run.
#[derive(Debug)]
pub struct AppResult {
    /// Application name.
    pub name: &'static str,
    /// Per-category results keyed by [`BugKind`].
    pub cells: HashMap<BugKind, CellResult>,
    /// GFix patches by strategy.
    pub gfix: HashMap<Strategy, usize>,
    /// Per-strategy changed-lines samples.
    pub patch_lines: Vec<(Strategy, usize)>,
    /// Attributed time of the detection stages (from session telemetry).
    pub detect_time: Duration,
    /// Attributed time of the fixing stage (from session telemetry).
    pub fix_time: Duration,
    /// Full telemetry snapshot: stage timings plus pipeline counters
    /// (paths enumerated, solver queries, ...).
    pub stats: Stats,
    /// Planted real bugs that were *not* detected (should be zero).
    pub missed: Vec<String>,
    /// Reports matching no plant (should be zero).
    pub unexpected: Vec<String>,
    /// FP census by cause.
    pub fp_causes: HashMap<FpCause, usize>,
    /// Program size in IR instructions (scaling metric).
    pub instr_count: usize,
}

impl AppResult {
    /// Total detected real bugs.
    pub fn total_real(&self) -> usize {
        self.cells.values().map(|c| c.real).sum()
    }

    /// Total reported false positives.
    pub fn total_fp(&self) -> usize {
        self.cells.values().map(|c| c.fp).sum()
    }

    /// Total patches.
    pub fn total_fixed(&self) -> usize {
        self.gfix.values().sum()
    }
}

fn report_matches(report: &BugReport, plant: &Plant) -> bool {
    crate::patterns::report_hits_plant(report, plant)
}

/// Fault-isolated [`run_app`]: one replica whose lowering or analysis
/// panics becomes an `Err` carrying an app [`Incident`] instead of
/// aborting the whole sweep — the same containment the per-channel BMOC
/// workers and the checker registry use.
pub fn try_run_app(app: &GeneratedApp, config: &DetectorConfig) -> Result<AppResult, Incident> {
    catch_isolated(|| run_app(app, config)).map_err(|message| Incident {
        kind: IncidentKind::App,
        name: app.name.to_string(),
        message,
        rung: 0,
        flight: Vec::new(),
    })
}

/// Runs a whole replica sweep through the supervised batch engine: one
/// job per application, each attempt isolated via [`try_run_app`], so a
/// replica that panics or refuses to lower degrades to a quarantine
/// [`Incident`] while every other replica still produces its
/// [`AppResult`]. Results come back in `apps` order; incidents carry the
/// replica name.
pub fn run_apps_supervised(
    apps: &[GeneratedApp],
    config: &DetectorConfig,
    batch: BatchConfig,
) -> (Vec<AppResult>, Vec<Incident>) {
    let telemetry = Telemetry::new();
    let tracer = Tracer::disabled();
    let engine = BatchEngine::new(batch, &telemetry, &tracer);
    let jobs: Vec<gcatch::BatchJob<'_, AppResult>> = apps
        .iter()
        .map(|app| {
            gcatch::BatchJob::new(app.name, move |_ctx: &JobCtx| {
                try_run_app(app, config).map_err(|inc| inc.message)
            })
        })
        .collect();
    let outcome = engine.run(&jobs, None, std::collections::BTreeMap::new());
    let mut results = Vec::new();
    let mut incidents = Vec::new();
    for rec in outcome.records {
        match (rec.payload, rec.incident) {
            (Some(result), _) => results.push(result),
            (None, Some(incident)) => incidents.push(incident),
            (None, None) => incidents.push(Incident {
                kind: IncidentKind::Quarantined,
                name: rec.id,
                message: "quarantined without a recorded failure".to_string(),
                rung: 0,
                flight: Vec::new(),
            }),
        }
    }
    (results, incidents)
}

/// Runs GCatch and GFix over one replica, classifying every report against
/// the planted ground truth.
///
/// Panics if the replica does not lower; batch callers want
/// [`try_run_app`] (or [`run_apps_supervised`]), which contain the panic
/// as an [`Incident`].
pub fn run_app(app: &GeneratedApp, config: &DetectorConfig) -> AppResult {
    faults::maybe_panic(faults::SITE_CORPUS_APP, app.name);
    let pipeline = Pipeline::from_source(&app.source)
        .unwrap_or_else(|e| panic!("{} does not lower: {e}", app.name));
    let instr_count = pipeline.module().instr_count();

    // The session telemetry attributes every analysis/enumeration/solving
    // duration to its stage; classification below happens under the `fix`
    // stage since patch synthesis dominates it.
    let gcatch = GCatch::new(pipeline.module());
    let bugs = gcatch.detect_all(config);

    let session = gcatch.session();
    let gfix_sys = gfix::GFix::new(
        pipeline.program(),
        pipeline.module(),
        &session.analysis,
        &session.prims,
    );
    let fix_timer = std::time::Instant::now();
    let mut cells: HashMap<BugKind, CellResult> = HashMap::new();
    let mut gfix_counts: HashMap<Strategy, usize> = HashMap::new();
    let mut patch_lines = Vec::new();
    let mut missed = Vec::new();
    let mut fp_causes: HashMap<FpCause, usize> = HashMap::new();
    let mut matched_reports: Vec<bool> = vec![false; bugs.len()];

    for plant in &app.plants {
        let hits: Vec<usize> = bugs
            .iter()
            .enumerate()
            .filter(|(_, r)| report_matches(r, plant))
            .map(|(i, _)| i)
            .collect();
        for &i in &hits {
            matched_reports[i] = true;
        }
        if hits.is_empty() {
            missed.push(format!("{}: {}", app.name, plant.marker));
            continue;
        }
        let cell = cells.entry(plant.kind).or_default();
        if plant.fp {
            cell.fp += 1;
            if let Some(cause) = plant.fp_cause {
                *fp_causes.entry(cause).or_default() += 1;
            }
        } else {
            cell.real += 1;
        }
        // Fix the first matching BMOC-C report when the plant promises one.
        if let Some(expected) = plant.fix {
            let fixed = hits.iter().find_map(|&i| gfix_sys.fix(&bugs[i]).ok());
            if let Some(patch) = fixed {
                debug_assert_eq!(patch.strategy, expected, "{}", plant.marker);
                *gfix_counts.entry(patch.strategy).or_default() += 1;
                patch_lines.push((patch.strategy, patch.changed_lines));
            } else {
                missed.push(format!("{}: {} (unfixed)", app.name, plant.marker));
            }
        }
    }
    session.telemetry().record(Stage::Fix, fix_timer.elapsed());
    let stats = gcatch.stats();

    let unexpected = bugs
        .iter()
        .zip(&matched_reports)
        .filter(|(_, &m)| !m)
        .map(|(r, _)| r.to_string())
        .collect();

    AppResult {
        name: app.name,
        cells,
        gfix: gfix_counts,
        patch_lines,
        detect_time: stats.detect_time(),
        fix_time: stats.stage(Stage::Fix),
        missed,
        unexpected,
        fp_causes,
        instr_count,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{generate_all, GenConfig};

    /// The smallest interesting replica (bbolt: 2 BMOC-C + 4 Fatal) must
    /// reproduce its Table 1 row exactly.
    #[test]
    fn bbolt_reproduces_its_table1_row() {
        let config = GenConfig {
            seed: 5,
            filler_per_kloc: 0.05,
        };
        let apps = generate_all(&config);
        let bbolt = apps.iter().find(|a| a.name == "bbolt").unwrap();
        let result = run_app(bbolt, &DetectorConfig::default());
        assert!(result.missed.is_empty(), "missed: {:?}", result.missed);
        assert_eq!(result.cells[&BugKind::BmocChannel].real, 2);
        assert_eq!(result.cells[&BugKind::FatalInChildGoroutine].real, 4);
        assert_eq!(result.total_fp(), 0);
        assert_eq!(result.gfix.get(&Strategy::IncreaseBuffer), Some(&1));
        assert_eq!(result.gfix.get(&Strategy::AddStopChannel), Some(&1));
    }

    /// Sharded BMOC detection must be bit-identical to sequential on every
    /// corpus replica: same reports, same order, same rendered diagnostics.
    #[test]
    fn parallel_detection_matches_sequential_on_corpus_apps() {
        let config = GenConfig {
            seed: 5,
            filler_per_kloc: 0.02,
        };
        for app in generate_all(&config) {
            let pipeline = Pipeline::from_source(&app.source)
                .unwrap_or_else(|e| panic!("{} does not lower: {e}", app.name));
            let render = |jobs: usize| {
                let gcatch = GCatch::new(pipeline.module());
                let cfg = DetectorConfig {
                    jobs,
                    ..DetectorConfig::default()
                };
                let diagnostics = gcatch.diagnostics(&cfg, &gcatch::Selection::default());
                gcatch::render_json(&diagnostics, None)
            };
            assert_eq!(render(1), render(8), "{}: --jobs 8 diverged", app.name);
        }
    }

    /// A replica that does not even lower must surface as an app incident
    /// from `try_run_app`, not abort the sweep.
    #[test]
    fn broken_replica_yields_an_incident_not_a_panic() {
        let bad = GeneratedApp {
            name: "broken",
            source: "func main( {".to_string(),
            plants: Vec::new(),
        };
        let err = try_run_app(&bad, &DetectorConfig::default())
            .expect_err("a non-lowering replica must fail");
        assert_eq!(err.kind, gcatch::IncidentKind::App);
        assert_eq!(err.name, "broken");
        assert!(err.message.contains("does not lower"), "{}", err.message);
    }

    /// The supervised sweep must contain a broken replica as a quarantine
    /// incident while every healthy replica still yields its result.
    #[test]
    fn supervised_sweep_quarantines_broken_replicas_and_finishes() {
        let config = GenConfig {
            seed: 5,
            filler_per_kloc: 0.02,
        };
        let mut apps = generate_all(&config);
        apps.truncate(3);
        apps.push(GeneratedApp {
            name: "broken",
            source: "func main( {".to_string(),
            plants: Vec::new(),
        });
        let batch = BatchConfig {
            workers: 2,
            max_attempts: 2,
            hedge: None,
            ..BatchConfig::default()
        };
        let (results, incidents) = run_apps_supervised(&apps, &DetectorConfig::default(), batch);
        assert_eq!(results.len(), 3);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, IncidentKind::Quarantined);
        assert_eq!(incidents[0].name, "broken");
        assert!(
            incidents[0].message.contains("does not lower"),
            "{}",
            incidents[0].message
        );
        // Healthy results keep apps order.
        let names: Vec<&str> = results.iter().map(|r| r.name).collect();
        assert_eq!(names, apps[..3].iter().map(|a| a.name).collect::<Vec<_>>());
    }

    /// gRPC exercises five categories including a conflict and a fatal.
    #[test]
    fn grpc_reproduces_its_table1_row() {
        let config = GenConfig {
            seed: 5,
            filler_per_kloc: 0.02,
        };
        let apps = generate_all(&config);
        let grpc = apps.iter().find(|a| a.name == "gRPC").unwrap();
        let result = run_app(grpc, &DetectorConfig::default());
        assert!(result.missed.is_empty(), "missed: {:?}", result.missed);
        assert_eq!(result.cells[&BugKind::BmocChannel].real, 6);
        assert_eq!(result.cells[&BugKind::ConflictingLockOrder].real, 1);
        assert_eq!(result.cells[&BugKind::StructFieldRace].real, 1);
        assert_eq!(result.cells[&BugKind::FatalInChildGoroutine].real, 2);
        assert_eq!(result.cells[&BugKind::DoubleLock].fp, 1);
        assert_eq!(result.total_fixed(), 5);
    }
}
