//! The bug-pattern library.
//!
//! Every pattern is a parameterized GoLite snippet with a unique instance
//! id. *Real* patterns plant a genuine concurrency bug of a known Table 1
//! category (and, for BMOC-C bugs, a known GFix strategy). *FP* patterns
//! exercise one of the detector limitations the paper's §5.2 false-positive
//! census documents — the detector reports them even though no schedule can
//! block (their primitive names carry an `fp` marker so harnesses can
//! classify reports).

use gcatch::report::BugKind;
use gfix::Strategy;

/// Everything a generated pattern instance promises.
#[derive(Debug, Clone)]
pub struct Plant {
    /// The snippet source (self-contained top-level declarations).
    pub source: String,
    /// Substring identifying this instance in reports (primitive name or
    /// containing-function name).
    pub marker: String,
    /// The report category this instance produces.
    pub kind: BugKind,
    /// Whether the report is a false positive (no schedule actually blocks).
    pub fp: bool,
    /// For real BMOC-C bugs: the GFix strategy expected to fix it.
    pub fix: Option<Strategy>,
    /// An entry function for dynamic validation, when the snippet is
    /// self-driving.
    pub entry: Option<String>,
    /// The §5.2 false-positive cause, for the census (E8).
    pub fp_cause: Option<FpCause>,
}

/// The false-positive causes of the paper's §5.2 census.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FpCause {
    /// Branch conditions over non-read-only variables (9 in the paper).
    InfeasiblePathCondition,
    /// Mis-counted loop iterations under 2-bounded unrolling (11).
    InfeasiblePathLoop,
    /// Channel passed through another channel (15).
    AliasChannelThroughChannel,
    /// Channel stored in a slice (2).
    AliasSliceElement,
    /// Unresolvable function-value call sites (14).
    CallGraph,
}

impl FpCause {
    /// The coarse census bucket (§5.2 groups 20 / 17 / 14).
    pub fn bucket(&self) -> &'static str {
        match self {
            FpCause::InfeasiblePathCondition | FpCause::InfeasiblePathLoop => "infeasible paths",
            FpCause::AliasChannelThroughChannel | FpCause::AliasSliceElement => "alias analysis",
            FpCause::CallGraph => "call-graph analysis",
        }
    }
}

/// The pattern vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternKind {
    /// Fig. 1: child's single send orphaned by a select race (S-I).
    SingleSend,
    /// Fig. 3: parent's send skipped by `t.Fatal` (S-II, defer send).
    MissingInteractionSend,
    /// S-II variant where the parent forgets to `close` (defer close).
    MissingInteractionClose,
    /// Fig. 4: producer loop orphaned by an aborting consumer (S-III).
    MultipleOps,
    /// The *parent* blocks — detected but not fixable (§5.3 reason 1).
    BlockedParent,
    /// Channel blocked inside a critical section (BMOC-M; not a GFix target).
    BmocMutex,
    /// Double lock.
    DoubleLock,
    /// Missing unlock on an early return.
    MissingUnlock,
    /// Conflicting lock order between two goroutines.
    LockOrder,
    /// Struct field mostly guarded, once not.
    FieldRace,
    /// `t.Fatal` on a child goroutine.
    FatalChild,
    /// FP: the blocking path contradicts runtime-correlated conditions.
    FpInfeasibleCond,
    /// FP: 2-bounded unrolling loses the producer's final `close`.
    FpLoopUnroll,
    /// FP: receiver obtained the channel through another channel.
    FpAliasChanChan,
    /// FP: receiver obtained the channel from a slice.
    FpAliasSlice,
    /// FP: the unblocking op hides behind an unresolvable call.
    FpCallGraph,
    /// FP: BMOC-M flavored infeasible path (mutex in the Pset).
    FpMutexInfeasible,
    /// FP: wrapper function intentionally returns holding the lock.
    FpUnlockWrapper,
    /// FP: the unlock hides behind an unresolvable call → double lock.
    FpDoubleLockHidden,
    /// FP: the conflicting order lives on a dynamically dead path.
    FpLockOrderDead,
    /// FP: callee access protected by the callers' lock (calling context).
    FpFieldContext,
}

/// Emits one pattern instance with unique names derived from `id`.
pub fn emit(kind: PatternKind, id: u32) -> Plant {
    match kind {
        PatternKind::SingleSend => Plant {
            source: format!(
                r#"
func workerJob{id}() error {{
    return nil
}}

func Run{id}() {{
    done{id} := make(chan error)
    quit{id} := make(chan struct{{}}, 1)
    quit{id} <- struct{{}}{{}}
    go func() {{
        done{id} <- workerJob{id}()
    }}()
    select {{
    case err := <-done{id}:
        _ = err
    case <-quit{id}:
        return
    }}
}}
"#
            ),
            marker: format!("done{id}"),
            kind: BugKind::BmocChannel,
            fp: false,
            fix: Some(Strategy::IncreaseBuffer),
            entry: Some(format!("Run{id}")),
            fp_cause: None,
        },
        PatternKind::MissingInteractionSend => Plant {
            source: format!(
                r#"
func waiter{id}(stop{id} chan struct{{}}) {{
    <-stop{id}
}}

func connect{id}() error {{
    return errors.New("connection refused")
}}

func TestDialer{id}(t *testing.T) {{
    stop{id} := make(chan struct{{}})
    go waiter{id}(stop{id})
    err := connect{id}()
    if err != nil {{
        t.Fatalf("dial failed")
    }}
    stop{id} <- struct{{}}{{}}
}}
"#
            ),
            marker: format!("stop{id}"),
            kind: BugKind::BmocChannel,
            fp: false,
            fix: Some(Strategy::DeferOperation),
            entry: Some(format!("TestDialer{id}")),
            fp_cause: None,
        },
        PatternKind::MissingInteractionClose => Plant {
            source: format!(
                r#"
func drain{id}(feed{id} chan int) {{
    <-feed{id}
}}

func load{id}() error {{
    return errors.New("load failed")
}}

func TestFeed{id}(t *testing.T) {{
    feed{id} := make(chan int)
    go drain{id}(feed{id})
    err := load{id}()
    if err != nil {{
        t.Fatalf("load failed")
    }}
    close(feed{id})
}}
"#
            ),
            marker: format!("feed{id}"),
            kind: BugKind::BmocChannel,
            fp: false,
            fix: Some(Strategy::DeferOperation),
            entry: Some(format!("TestFeed{id}")),
            fp_cause: None,
        },
        PatternKind::MultipleOps => Plant {
            source: format!(
                r#"
func nextLine{id}() (string, error) {{
    return "line", nil
}}

func Drive{id}() {{
    abort{id} := make(chan struct{{}}, 1)
    abort{id} <- struct{{}}{{}}
    sched{id} := make(chan string)
    go func() {{
        for {{
            line, err := nextLine{id}()
            if err != nil {{
                close(sched{id})
                return
            }}
            sched{id} <- line
        }}
    }}()
    for {{
        select {{
        case <-abort{id}:
            return
        case _, ok := <-sched{id}:
            if !ok {{
                return
            }}
        }}
    }}
}}
"#
            ),
            marker: format!("sched{id}"),
            kind: BugKind::BmocChannel,
            fp: false,
            fix: Some(Strategy::AddStopChannel),
            entry: Some(format!("Drive{id}")),
            fp_cause: None,
        },
        PatternKind::BlockedParent => Plant {
            source: format!(
                r#"
func Gather{id}() int {{
    results{id} := make(chan int)
    go func() {{
        results{id} <- 1
    }}()
    a := <-results{id}
    b := <-results{id}
    return a + b
}}
"#
            ),
            marker: format!("results{id}"),
            kind: BugKind::BmocChannel,
            fp: false,
            fix: None, // the blocked goroutine is the parent (§5.3)
            entry: Some(format!("Gather{id}")),
            fp_cause: None,
        },
        PatternKind::BmocMutex => Plant {
            source: format!(
                r#"
func Exchange{id}() {{
    var gate{id} sync.Mutex
    hand{id} := make(chan int)
    go func() {{
        gate{id}.Lock()
        hand{id} <- 1
        gate{id}.Unlock()
    }}()
    gate{id}.Lock()
    <-hand{id}
    gate{id}.Unlock()
}}
"#
            ),
            marker: format!("hand{id}"),
            kind: BugKind::BmocChannelMutex,
            fp: false,
            fix: None, // BMOC-M bugs are outside GFix's problem scope
            entry: Some(format!("Exchange{id}")),
            fp_cause: None,
        },
        PatternKind::DoubleLock => Plant {
            source: format!(
                r#"
func Reenter{id}() {{
    var guard{id} sync.Mutex
    guard{id}.Lock()
    guard{id}.Lock()
    held := 1
    _ = held
    guard{id}.Unlock()
}}
"#
            ),
            marker: format!("guard{id}"),
            kind: BugKind::DoubleLock,
            fp: false,
            fix: None,
            entry: Some(format!("Reenter{id}")),
            fp_cause: None,
        },
        PatternKind::MissingUnlock => Plant {
            source: format!(
                r#"
func Leaky{id}(fail bool) int {{
    var latch{id} sync.Mutex
    latch{id}.Lock()
    if fail {{
        return 0
    }}
    latch{id}.Unlock()
    return 1
}}
"#
            ),
            marker: format!("latch{id}"),
            kind: BugKind::MissingUnlock,
            fp: false,
            fix: None,
            entry: None, // driving needs a caller; checked statically
            fp_cause: None,
        },
        PatternKind::LockOrder => Plant {
            source: format!(
                r#"
func forward{id}(a{id} *sync.Mutex, b{id} *sync.Mutex) {{
    a{id}.Lock()
    b{id}.Lock()
    b{id}.Unlock()
    a{id}.Unlock()
}}

func backward{id}(a{id} *sync.Mutex, b{id} *sync.Mutex) {{
    b{id}.Lock()
    a{id}.Lock()
    a{id}.Unlock()
    b{id}.Unlock()
}}

func Entangle{id}() {{
    var first{id} sync.Mutex
    var second{id} sync.Mutex
    go forward{id}(&first{id}, &second{id})
    backward{id}(&first{id}, &second{id})
}}
"#
            ),
            marker: format!("first{id}"),
            kind: BugKind::ConflictingLockOrder,
            fp: false,
            fix: None,
            entry: None, // a real deadlock only under specific schedules
            fp_cause: None,
        },
        PatternKind::FieldRace => Plant {
            source: format!(
                r#"
type Stats{id} struct {{
    mu sync.Mutex
    hits{id} int
}}

func tally{id}(s *Stats{id}) {{
    s.mu.Lock()
    s.hits{id} = s.hits{id} + 1
    s.mu.Unlock()
}}

func Race{id}() {{
    s := Stats{id}{{hits{id}: 0}}
    tally{id}(&s)
    tally{id}(&s)
    go func() {{
        s.hits{id} = 0
    }}()
}}
"#
            ),
            marker: format!("hits{id}"),
            kind: BugKind::StructFieldRace,
            fp: false,
            fix: None,
            entry: Some(format!("Race{id}")),
            fp_cause: None,
        },
        PatternKind::FatalChild => Plant {
            source: format!(
                r#"
func TestAsync{id}(t *testing.T) {{
    ready{id} := make(chan struct{{}}, 1)
    go func() {{
        ready{id} <- struct{{}}{{}}
        t.Fatalf("checked on the wrong goroutine")
    }}()
    <-ready{id}
}}
"#
            ),
            marker: format!("TestAsync{id}"),
            kind: BugKind::FatalInChildGoroutine,
            fp: false,
            fix: None,
            entry: None,
            fp_cause: None,
        },
        PatternKind::FpInfeasibleCond => Plant {
            source: format!(
                r#"
func fpFlip{id}(mode int) {{
    fpCond{id} := make(chan int)
    armed := mode > 0
    go func() {{
        if armed {{
            fpCond{id} <- 1
        }}
    }}()
    consumed := false
    if armed {{
        <-fpCond{id}
        consumed = true
    }}
    _ = consumed
}}

func FpDriveCond{id}() {{
    fpFlip{id}(1)
    fpFlip{id}(0)
}}
"#
            ),
            marker: format!("fpCond{id}"),
            kind: BugKind::BmocChannel,
            fp: true,
            fix: None,
            entry: Some(format!("FpDriveCond{id}")),
            fp_cause: Some(FpCause::InfeasiblePathCondition),
        },
        PatternKind::FpLoopUnroll => Plant {
            source: format!(
                r#"
func fpBatch{id}() int {{
    return 3
}}

func FpPump{id}() {{
    fpLoop{id} := make(chan int)
    go func() {{
        n := fpBatch{id}()
        for i := 0; i < n; i++ {{
            fpLoop{id} <- i
        }}
        close(fpLoop{id})
    }}()
    for v := range fpLoop{id} {{
        _ = v
    }}
}}
"#
            ),
            marker: format!("fpLoop{id}"),
            kind: BugKind::BmocChannel,
            fp: true,
            fix: None,
            entry: Some(format!("FpPump{id}")),
            fp_cause: Some(FpCause::InfeasiblePathLoop),
        },
        PatternKind::FpAliasChanChan => Plant {
            source: format!(
                r#"
func FpCourier{id}() {{
    fpCarrier{id} := make(chan chan int, 1)
    fpInner{id} := make(chan int)
    fpCarrier{id} <- fpInner{id}
    go func() {{
        got := <-fpCarrier{id}
        got <- 42
    }}()
    <-fpInner{id}
}}
"#
            ),
            marker: format!("fpInner{id}"),
            kind: BugKind::BmocChannel,
            fp: true,
            fix: None,
            entry: Some(format!("FpCourier{id}")),
            fp_cause: Some(FpCause::AliasChannelThroughChannel),
        },
        PatternKind::FpAliasSlice => Plant {
            source: format!(
                r#"
func FpShelf{id}() {{
    fpShelf{id} := make(chan int)
    rack := []chan int{{fpShelf{id}}}
    go func() {{
        picked := rack[0]
        <-picked
    }}()
    fpShelf{id} <- 7
}}
"#
            ),
            marker: format!("fpShelf{id}"),
            kind: BugKind::BmocChannel,
            fp: true,
            fix: None,
            entry: Some(format!("FpShelf{id}")),
            fp_cause: Some(FpCause::AliasSliceElement),
        },
        PatternKind::FpCallGraph => Plant {
            source: format!(
                r#"
func FpIndirect{id}() {{
    fpHook{id} := make(chan int)
    actions := []func(){{}}
    reply := func() {{
        <-fpHook{id}
    }}
    other := func() {{
        _ = 0
    }}
    _ = other
    actions = []func(){{reply, other}}
    go actions[0]()
    fpHook{id} <- 5
}}
"#
            ),
            marker: format!("fpHook{id}"),
            kind: BugKind::BmocChannel,
            fp: true,
            fix: None,
            entry: Some(format!("FpIndirect{id}")),
            fp_cause: Some(FpCause::CallGraph),
        },
        PatternKind::FpMutexInfeasible => Plant {
            source: format!(
                r#"
func fpMuFlip{id}(mode int) {{
    var fpGate{id} sync.Mutex
    fpMu{id} := make(chan int)
    armed := mode > 0
    go func() {{
        if armed {{
            fpMu{id} <- 1
        }}
    }}()
    if armed {{
        fpGate{id}.Lock()
        <-fpMu{id}
        fpGate{id}.Unlock()
    }}
}}

func FpDriveMu{id}() {{
    fpMuFlip{id}(1)
    fpMuFlip{id}(0)
}}
"#
            ),
            marker: format!("fpMu{id}"),
            kind: BugKind::BmocChannelMutex,
            fp: true,
            fix: None,
            entry: Some(format!("FpDriveMu{id}")),
            fp_cause: Some(FpCause::InfeasiblePathCondition),
        },
        PatternKind::FpUnlockWrapper => Plant {
            source: format!(
                r#"
func fpAcquire{id}(fpWrap{id} *sync.Mutex) {{
    fpWrap{id}.Lock()
}}

func FpGuarded{id}() int {{
    var fpWrap{id} sync.Mutex
    fpAcquire{id}(&fpWrap{id})
    v := 1
    fpWrap{id}.Unlock()
    return v
}}
"#
            ),
            marker: format!("fpWrap{id}"),
            kind: BugKind::MissingUnlock,
            fp: true,
            fix: None,
            entry: Some(format!("FpGuarded{id}")),
            fp_cause: None,
        },
        PatternKind::FpDoubleLockHidden => Plant {
            source: format!(
                r#"
func FpRelocker{id}() {{
    var fpRe{id} sync.Mutex
    releasers := []func(){{}}
    unlockIt := func() {{
        fpRe{id}.Unlock()
    }}
    releasers = []func(){{unlockIt}}
    fpRe{id}.Lock()
    releasers[0]()
    fpRe{id}.Lock()
    again := 2
    _ = again
    fpRe{id}.Unlock()
}}
"#
            ),
            marker: format!("fpRe{id}"),
            kind: BugKind::DoubleLock,
            fp: true,
            fix: None,
            entry: Some(format!("FpRelocker{id}")),
            fp_cause: None,
        },
        PatternKind::FpLockOrderDead => Plant {
            source: format!(
                r#"
func fpNever{id}() bool {{
    return false
}}

func fpTwist{id}(fpOrdA{id} *sync.Mutex, fpOrdB{id} *sync.Mutex) {{
    if fpNever{id}() {{
        fpOrdB{id}.Lock()
        fpOrdA{id}.Lock()
        fpOrdA{id}.Unlock()
        fpOrdB{id}.Unlock()
    }}
}}

func FpOrder{id}() {{
    var fpOrdA{id} sync.Mutex
    var fpOrdB{id} sync.Mutex
    fpOrdA{id}.Lock()
    fpOrdB{id}.Lock()
    fpOrdB{id}.Unlock()
    fpOrdA{id}.Unlock()
    fpTwist{id}(&fpOrdA{id}, &fpOrdB{id})
}}
"#
            ),
            marker: format!("fpOrdA{id}"),
            kind: BugKind::ConflictingLockOrder,
            fp: true,
            fix: None,
            entry: Some(format!("FpOrder{id}")),
            fp_cause: None,
        },
        PatternKind::FpFieldContext => Plant {
            source: format!(
                r#"
type FpCache{id} struct {{
    mu sync.Mutex
    fpSlot{id} int
}}

func fpBump{id}(c *FpCache{id}) {{
    c.fpSlot{id} = c.fpSlot{id} + 1
}}

func FpUseCache{id}() {{
    c := FpCache{id}{{fpSlot{id}: 0}}
    c.mu.Lock()
    c.fpSlot{id} = 1
    c.mu.Unlock()
    c.mu.Lock()
    c.fpSlot{id} = 2
    c.mu.Unlock()
    c.mu.Lock()
    c.fpSlot{id} = 3
    c.mu.Unlock()
    c.mu.Lock()
    c.fpSlot{id} = 4
    c.mu.Unlock()
    c.mu.Lock()
    fpBump{id}(&c)
    c.mu.Unlock()
}}
"#
            ),
            marker: format!("fpSlot{id}"),
            kind: BugKind::StructFieldRace,
            fp: true,
            fix: None,
            entry: Some(format!("FpUseCache{id}")),
            fp_cause: None,
        },
    }
}

/// Whether `text` mentions `marker` as a whole token (the marker must not
/// be followed by another digit — `done1` must not match `done12`).
pub fn marker_hit(text: &str, marker: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(marker) {
        let end = start + pos + marker.len();
        let next_is_digit = text[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit());
        if !next_is_digit {
            return true;
        }
        start += pos + 1;
    }
    false
}

/// Whether a report mentions the plant's marker.
pub fn report_hits_plant(report: &gcatch::BugReport, plant: &Plant) -> bool {
    marker_hit(&report.primitive_name, &plant.marker)
        || report
            .ops
            .iter()
            .any(|o| marker_hit(&o.func_name, &plant.marker) || marker_hit(&o.what, &plant.marker))
}

/// All real (non-FP) pattern kinds.
pub fn real_patterns() -> Vec<PatternKind> {
    vec![
        PatternKind::SingleSend,
        PatternKind::MissingInteractionSend,
        PatternKind::MissingInteractionClose,
        PatternKind::MultipleOps,
        PatternKind::BlockedParent,
        PatternKind::BmocMutex,
        PatternKind::DoubleLock,
        PatternKind::MissingUnlock,
        PatternKind::LockOrder,
        PatternKind::FieldRace,
        PatternKind::FatalChild,
    ]
}

/// All FP pattern kinds.
pub fn fp_patterns() -> Vec<PatternKind> {
    vec![
        PatternKind::FpInfeasibleCond,
        PatternKind::FpLoopUnroll,
        PatternKind::FpAliasChanChan,
        PatternKind::FpAliasSlice,
        PatternKind::FpCallGraph,
        PatternKind::FpMutexInfeasible,
        PatternKind::FpUnlockWrapper,
        PatternKind::FpDoubleLockHidden,
        PatternKind::FpLockOrderDead,
        PatternKind::FpFieldContext,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcatch::{DetectorConfig, GCatch};
    use golite_sim::{Config, Simulator};

    /// Builds a standalone program from one pattern instance.
    fn program_for(kind: PatternKind, id: u32) -> (Plant, String) {
        let plant = emit(kind, id);
        let source = format!("package main\n{}\nfunc main() {{\n}}\n", plant.source);
        (plant, source)
    }

    fn reports_for(source: &str) -> Vec<gcatch::BugReport> {
        let module = golite_ir::lower_source(source).expect("pattern lowers");
        let gcatch = GCatch::new(&module);
        gcatch.detect_all(&DetectorConfig::default())
    }

    fn matches_marker(report: &gcatch::BugReport, plant: &Plant) -> bool {
        report_hits_plant(report, plant)
    }

    fn matches(report: &gcatch::BugReport, plant: &Plant) -> bool {
        report.kind == plant.kind && matches_marker(report, plant)
    }

    /// Every pattern must produce exactly one report of its promised kind.
    #[test]
    fn every_pattern_is_detected_once() {
        for kind in real_patterns().into_iter().chain(fp_patterns()) {
            let (plant, source) = program_for(kind, 7);
            let reports = reports_for(&source);
            let hits = reports.iter().filter(|r| matches(r, &plant)).count();
            assert!(
                hits >= 1,
                "{kind:?} must yield a {:?} report on marker {}; got {reports:#?}",
                plant.kind,
                plant.marker
            );
        }
    }

    /// No pattern may pollute other categories with extra reports.
    #[test]
    fn patterns_do_not_cross_talk() {
        for kind in real_patterns().into_iter().chain(fp_patterns()) {
            let (plant, source) = program_for(kind, 9);
            let reports = reports_for(&source);
            for r in &reports {
                assert!(
                    matches_marker(r, &plant),
                    "{kind:?} produced an unrelated report: {r}"
                );
            }
        }
    }

    /// Real self-driving patterns must block under some schedule; FP
    /// patterns must never block (that is what makes them false positives).
    #[test]
    fn dynamic_ground_truth_matches_fp_flags() {
        for kind in real_patterns().into_iter().chain(fp_patterns()) {
            let (plant, source) = program_for(kind, 11);
            let Some(entry) = plant.entry.clone() else {
                continue;
            };
            let module = golite_ir::lower_source(&source).expect("pattern lowers");
            let sim = Simulator::new(&module);
            let mut blocked = false;
            for sleep in [false, true] {
                let config = Config {
                    entry: entry.clone(),
                    sleep_injection: sleep,
                    ..Config::default()
                };
                for r in sim.explore(&config, 0..30) {
                    assert!(
                        !matches!(r.outcome, golite_sim::Outcome::Panic(_)),
                        "{kind:?} panicked: {:?}",
                        r.outcome
                    );
                    blocked |= r.is_blocking();
                }
            }
            if plant.fp {
                assert!(
                    !blocked,
                    "{kind:?} is an FP pattern but blocked dynamically"
                );
            } else if plant.kind.is_bmoc() {
                assert!(blocked, "{kind:?} is a real blocking bug but never blocked");
            }
        }
    }

    /// Fixable patterns get exactly the promised GFix strategy.
    #[test]
    fn gfix_strategies_match_promises() {
        for kind in real_patterns() {
            let (plant, source) = program_for(kind, 13);
            let pipeline = gfix::Pipeline::from_source(&source).expect("pattern parses");
            let results = pipeline.run(&DetectorConfig::default());
            let patch = results
                .patches
                .iter()
                .find(|p| p.primitive_name.contains(&plant.marker));
            match plant.fix {
                Some(expected) => {
                    let patch = patch.unwrap_or_else(|| {
                        panic!(
                            "{kind:?} promised {expected:?} but got no patch; rejections: {:?}",
                            results.rejections
                        )
                    });
                    assert_eq!(patch.strategy, expected, "{kind:?}");
                }
                None => {
                    assert!(patch.is_none(), "{kind:?} promised no fix but was patched");
                }
            }
        }
    }

    /// Two instances of the same pattern coexist without interference.
    #[test]
    fn instances_are_independent() {
        let a = emit(PatternKind::SingleSend, 100);
        let b = emit(PatternKind::SingleSend, 200);
        let source = format!(
            "package main\n{}\n{}\nfunc main() {{\n}}\n",
            a.source, b.source
        );
        let reports = reports_for(&source);
        assert_eq!(reports.iter().filter(|r| matches(r, &a)).count(), 1);
        assert_eq!(reports.iter().filter(|r| matches(r, &b)).count(), 1);
    }
}
