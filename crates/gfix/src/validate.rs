//! Automated patch validation (§5.3; automating this is the future work the
//! paper defers — our simulator substrate makes it practical).
//!
//! A patch is validated differentially against the original program:
//!
//! 1. **bug realizability** — some schedule of the *original* program blocks
//!    (leak or global deadlock), confirming the static report dynamically;
//! 2. **fix effectiveness** — no explored schedule of the *patched* program
//!    blocks, including schedules with random sleeps injected around channel
//!    operations (the paper's manual methodology);
//! 3. **semantics preservation** — the sets of program outputs over clean
//!    runs coincide between original and patched versions.

use golite_sim::{Config, Outcome, RunReport, Simulator};
use std::collections::BTreeSet;

/// The result of validating one patch.
#[derive(Debug, Clone)]
pub struct Validation {
    /// Some schedule of the original program blocked.
    pub bug_realized: bool,
    /// No schedule of the patched program blocked.
    pub patch_blocks_never: bool,
    /// Clean-run outputs agree between the two versions.
    pub semantics_preserved: bool,
    /// Mean executed instructions in clean runs of the original program.
    pub baseline_instrs: f64,
    /// Mean executed instructions in clean runs of the patched program.
    pub patched_instrs: f64,
}

impl Validation {
    /// Overall verdict: the patch fixes the bug without changing behavior.
    pub fn is_correct(&self) -> bool {
        self.patch_blocks_never && self.semantics_preserved
    }

    /// Relative overhead of the patch in executed instructions (§5.3's
    /// runtime-overhead metric; may be negative when the patch removes
    /// blocking waits).
    pub fn overhead(&self) -> f64 {
        if self.baseline_instrs == 0.0 {
            return 0.0;
        }
        (self.patched_instrs - self.baseline_instrs) / self.baseline_instrs
    }
}

/// Validates `patched_src` against `original_src` by exploring `seeds`
/// schedules of `entry` (with and without sleep injection).
///
/// # Panics
///
/// Panics when either source fails to parse or lower — patch synthesis
/// guarantees well-formed output, so this indicates a GFix bug. Use
/// [`try_validate`] when the sources are not under GFix's control.
pub fn validate(original_src: &str, patched_src: &str, entry: &str, seeds: u64) -> Validation {
    try_validate(original_src, patched_src, entry, seeds).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`validate`]: a source that fails to parse or lower becomes an
/// `Err` carrying the lowering message instead of a panic.
pub fn try_validate(
    original_src: &str,
    patched_src: &str,
    entry: &str,
    seeds: u64,
) -> Result<Validation, String> {
    let original = golite_ir::lower_source(original_src)
        .map_err(|e| format!("original program does not lower: {e}"))?;
    let patched = golite_ir::lower_source(patched_src)
        .map_err(|e| format!("patched program does not lower: {e}"))?;

    let run_all = |module: &golite_ir::Module| -> Vec<RunReport> {
        let sim = Simulator::new(module);
        let mut reports = Vec::new();
        for sleep in [false, true] {
            let config = Config {
                entry: entry.to_string(),
                sleep_injection: sleep,
                ..Config::default()
            };
            reports.extend(sim.explore(&config, 0..seeds));
        }
        reports
    };

    let before = run_all(&original);
    let after = run_all(&patched);

    let bug_realized = before.iter().any(|r| r.is_blocking());
    let patch_blocks_never = after.iter().all(|r| !r.is_blocking());

    let clean_outputs = |reports: &[RunReport]| -> BTreeSet<Vec<String>> {
        reports
            .iter()
            .filter(|r| r.outcome == Outcome::Clean)
            .map(|r| r.output.clone())
            .collect()
    };
    let outs_before = clean_outputs(&before);
    let outs_after = clean_outputs(&after);
    // The patched program must produce no outputs the original could not
    // (it may produce *more* clean runs — that is the point of the fix).
    let semantics_preserved =
        outs_before.is_empty() || outs_after.iter().all(|o| outs_before.contains(o));

    let mean_instrs = |reports: &[RunReport]| -> f64 {
        let clean: Vec<&RunReport> = reports
            .iter()
            .filter(|r| r.outcome == Outcome::Clean)
            .collect();
        if clean.is_empty() {
            return 0.0;
        }
        clean.iter().map(|r| r.instrs_executed as f64).sum::<f64>() / clean.len() as f64
    };

    Ok(Validation {
        bug_realized,
        patch_blocks_never,
        semantics_preserved,
        baseline_instrs: mean_instrs(&before),
        patched_instrs: mean_instrs(&after),
    })
}
