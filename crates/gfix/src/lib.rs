//! # gfix — automated patching of BMOC bugs detected by GCatch
//!
//! GFix (ASPLOS '21, §4) turns each blocking misuse-of-channel bug into a
//! small source-to-source patch using Go's channel-related language
//! features, chosen for readability: Strategy I changes one line (a buffer
//! size), Strategy II defers the missed interaction, and Strategy III adds a
//! stop channel.
//!
//! The pipeline ([`Pipeline`]) mirrors Figure 2: GCatch reports feed the
//! dispatcher, each bug gets the simplest applicable strategy, and every
//! patch can be validated dynamically with the simulator
//! ([`validate::validate`]) — automating the patch-testing process the
//! paper performs manually.
//!
//! # Examples
//!
//! Fix the Figure 1 Docker bug end to end:
//!
//! ```
//! let src = r#"
//! func Exec(ctx context.Context) error {
//!     outDone := make(chan error)
//!     go func() {
//!         outDone <- nil
//!     }()
//!     select {
//!     case err := <-outDone:
//!         return err
//!     case <-ctx.Done():
//!         return ctx.Err()
//!     }
//! }
//!
//! func main() {
//!     ctx, cancel := context.WithCancel(context.Background())
//!     defer cancel()
//!     Exec(ctx)
//! }
//! "#;
//! let pipeline = gfix::Pipeline::from_source(src).unwrap();
//! let results = pipeline.run(&gcatch::DetectorConfig::default());
//! let patch = results.patches.first().expect("Figure 1 is fixable");
//! assert_eq!(patch.strategy, gfix::Strategy::IncreaseBuffer);
//! assert!(patch.after.contains("make(chan error, 1)"));
//! assert_eq!(patch.changed_lines, 2); // one line replaced
//! ```

#![warn(missing_docs)]

pub mod edit;
pub mod fix;
pub mod validate;

pub use fix::{GFix, Patch, Rejection, Strategy};
pub use validate::{try_validate, validate, Validation};

use gcatch::trace::ArgValue;
use gcatch::{DetectorConfig, GCatch, Selection, Stage, Stats, TraceLevel, TraceSnapshot};
use golite::Program;
use golite_ir::Module;

/// End-to-end detect-then-fix results.
#[derive(Debug)]
pub struct PipelineResults {
    /// Every bug GCatch reported.
    pub bugs: Vec<gcatch::BugReport>,
    /// Patches for the bugs GFix could fix, in report order.
    pub patches: Vec<Patch>,
    /// Rejections for the BMOC bugs GFix declined, in report order.
    pub rejections: Vec<(gcatch::BugReport, Rejection)>,
}

/// The full GCatch → GFix pipeline over one source file (Figure 2).
pub struct Pipeline {
    program: Program,
    module: Module,
}

impl Pipeline {
    /// Parses and lowers `src`.
    ///
    /// # Errors
    ///
    /// Returns the parse or lowering error message.
    pub fn from_source(src: &str) -> Result<Pipeline, String> {
        let program = golite::parse(src).map_err(|e| e.to_string())?;
        let module = golite_ir::lower(&program).map_err(|e| e.to_string())?;
        Ok(Pipeline { program, module })
    }

    /// The lowered module (for simulation or further analysis).
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Detects all bugs and patches every fixable BMOC bug.
    pub fn run(&self, config: &DetectorConfig) -> PipelineResults {
        self.run_with_stats(config, &Selection::default()).0
    }

    /// Runs the selected checkers through one shared [`AnalysisSession`]
    /// (`gcatch::AnalysisSession`), patches every fixable BMOC bug under the
    /// `fix` telemetry stage, and returns the results together with the
    /// session's [`Stats`] snapshot (stage timings and pipeline counters).
    pub fn run_with_stats(
        &self,
        config: &DetectorConfig,
        selection: &Selection,
    ) -> (PipelineResults, Stats) {
        let (results, stats, _) = self.run_traced(config, selection, TraceLevel::Off);
        (results, stats)
    }

    /// [`Pipeline::run_with_stats`] with span tracing at `level`: detection
    /// spans come from the shared session's tracer, and the per-bug fix loop
    /// is wrapped in a `fix` span with one `fix_bug` child per BMOC bug
    /// whose `outcome` argument records the winning strategy label
    /// (`S-I`/`S-II`/`S-III`) or the rejection reason.
    pub fn run_traced(
        &self,
        config: &DetectorConfig,
        selection: &Selection,
        level: TraceLevel,
    ) -> (PipelineResults, Stats, TraceSnapshot) {
        let gcatch = GCatch::with_trace(&self.module, level);
        let bugs = gcatch::checkers::flatten(gcatch.run(config, selection));
        let session = gcatch.session();
        let gfix = GFix::new(
            &self.program,
            &self.module,
            &session.analysis,
            &session.prims,
        );
        let (patches, rejections) = session.telemetry().time(Stage::Fix, || {
            let mut lane = session.tracer().lane(0, "main");
            lane.begin("fix", Vec::new());
            let mut patches = Vec::new();
            let mut rejections = Vec::new();
            for bug in &bugs {
                if !bug.kind.is_bmoc() {
                    continue;
                }
                lane.begin(
                    "fix_bug",
                    vec![("primitive", ArgValue::from(bug.primitive_name.as_str()))],
                );
                let (result, attempted) = gfix.fix_annotated(bug);
                for label in &attempted {
                    lane.instant("strategy_tried", vec![("strategy", ArgValue::from(*label))]);
                }
                match result {
                    Ok(patch) => {
                        lane.instant(
                            "fix_applied",
                            vec![("outcome", patch.strategy.label().into())],
                        );
                        patches.push(patch);
                    }
                    Err(r) => {
                        lane.instant("fix_rejected", vec![("outcome", r.to_string().into())]);
                        rejections.push((bug.clone(), r));
                    }
                }
                lane.end();
            }
            lane.end();
            (patches, rejections)
        });
        (
            PipelineResults {
                bugs,
                patches,
                rejections,
            },
            gcatch.stats(),
            gcatch.trace_snapshot(),
        )
    }
}
