//! Span-addressed AST editing.
//!
//! GFix synthesizes patches by cloning the parsed [`Program`], applying a
//! small number of span-addressed edits (replace / remove / insert-after a
//! statement, bump a `make(chan ..)` capacity), and reprinting. Spans come
//! from GCatch's bug reports, so edits land exactly on the statements the
//! detector blamed.

use golite::ast::*;
use golite::Span;

/// Allocates fresh [`NodeId`]s for synthesized nodes.
#[derive(Debug)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    /// Continues after the program's parser-assigned ids.
    pub fn new(prog: &Program) -> IdGen {
        IdGen {
            next: prog.next_node_id,
        }
    }

    /// A fresh id.
    pub fn id(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }

    /// Builds an expression node.
    pub fn expr(&mut self, kind: ExprKind) -> Expr {
        Expr {
            kind,
            span: Span::synthetic(),
            id: self.id(),
        }
    }

    /// Builds a statement node.
    pub fn stmt(&mut self, kind: StmtKind) -> Stmt {
        Stmt {
            kind,
            span: Span::synthetic(),
            id: self.id(),
        }
    }
}

/// What to do with a matched statement.
enum Action {
    Remove,
    Replace(Vec<Stmt>),
    InsertAfter(Vec<Stmt>),
}

/// Applies `action` to the unique statement whose span equals `target`.
/// Returns `true` when a statement was found.
fn edit_stmt(prog: &mut Program, target: Span, action: Action) -> bool {
    fn walk_block(block: &mut Block, target: Span, action: &mut Option<Action>) -> bool {
        let mut i = 0;
        while i < block.stmts.len() {
            if block.stmts[i].span == target {
                // The walk stops at the first match, so the action is still
                // present here; a duplicate span (malformed input) simply
                // leaves later matches untouched.
                let Some(action) = action.take() else {
                    return false;
                };
                match action {
                    Action::Remove => {
                        block.stmts.remove(i);
                    }
                    Action::Replace(with) => {
                        block.stmts.splice(i..=i, with);
                    }
                    Action::InsertAfter(with) => {
                        let at = i + 1;
                        block.stmts.splice(at..at, with);
                    }
                }
                return true;
            }
            if walk_stmt(&mut block.stmts[i], target, action) {
                return true;
            }
            i += 1;
        }
        false
    }

    fn walk_stmt(stmt: &mut Stmt, target: Span, action: &mut Option<Action>) -> bool {
        match &mut stmt.kind {
            StmtKind::If { then, els, .. } => {
                if walk_block(then, target, action) {
                    return true;
                }
                if let Some(els) = els {
                    return walk_stmt(els, target, action);
                }
                false
            }
            StmtKind::For { body, .. } | StmtKind::ForRange { body, .. } => {
                walk_block(body, target, action)
            }
            StmtKind::Select(cases) => cases
                .iter_mut()
                .any(|c| walk_block(&mut c.body, target, action)),
            StmtKind::Block(b) => walk_block(b, target, action),
            // Statements carrying closures (go / defer / expression).
            StmtKind::Go(e) | StmtKind::Defer(e) | StmtKind::Expr(e) => {
                walk_expr(e, target, action)
            }
            StmtKind::Define { rhs, .. } | StmtKind::Assign { rhs, .. } => {
                walk_expr(rhs, target, action)
            }
            _ => false,
        }
    }

    fn walk_expr(expr: &mut Expr, target: Span, action: &mut Option<Action>) -> bool {
        match &mut expr.kind {
            ExprKind::Closure { body, .. } => walk_block(body, target, action),
            ExprKind::Call { callee, args } => {
                if walk_expr(callee, target, action) {
                    return true;
                }
                args.iter_mut().any(|a| walk_expr(a, target, action))
            }
            ExprKind::Method { recv, args, .. } => {
                if walk_expr(recv, target, action) {
                    return true;
                }
                args.iter_mut().any(|a| walk_expr(a, target, action))
            }
            ExprKind::Paren(inner) => walk_expr(inner, target, action),
            _ => false,
        }
    }

    let mut action = Some(action);
    for decl in &mut prog.decls {
        if let Decl::Func(f) = decl {
            if walk_block(&mut f.body, target, &mut action) {
                return true;
            }
        }
    }
    false
}

/// Removes the statement at `target`.
pub fn remove_stmt(prog: &mut Program, target: Span) -> bool {
    edit_stmt(prog, target, Action::Remove)
}

/// Replaces the statement at `target` with `with`.
pub fn replace_stmt(prog: &mut Program, target: Span, with: Vec<Stmt>) -> bool {
    edit_stmt(prog, target, Action::Replace(with))
}

/// Inserts `with` immediately after the statement at `target`.
pub fn insert_after(prog: &mut Program, target: Span, with: Vec<Stmt>) -> bool {
    edit_stmt(prog, target, Action::InsertAfter(with))
}

/// Sets the capacity of the `make(chan ..)` inside the statement at
/// `target` (Strategy I). Returns `true` on success.
pub fn set_make_cap(prog: &mut Program, target: Span, cap: i64, ids: &mut IdGen) -> bool {
    fn fix_expr(e: &mut Expr, ids: &mut IdGen) -> bool {
        match &mut e.kind {
            ExprKind::Make {
                ty: Type::Chan(_),
                cap: c,
            } => {
                *c = Some(Box::new(ids.expr(ExprKind::Int(1))));
                true
            }
            ExprKind::Paren(inner) => fix_expr(inner, ids),
            _ => false,
        }
    }
    let _ = cap; // capacity is always bumped 0 → 1 per the paper
    fn walk(block: &mut Block, target: Span, ids: &mut IdGen) -> bool {
        for stmt in &mut block.stmts {
            if stmt.span == target {
                match &mut stmt.kind {
                    StmtKind::Define { rhs, .. } => return fix_expr(rhs, ids),
                    StmtKind::VarDecl {
                        init: Some(rhs), ..
                    } => return fix_expr(rhs, ids),
                    StmtKind::Assign { rhs, .. } => return fix_expr(rhs, ids),
                    _ => return false,
                }
            }
            let found = match &mut stmt.kind {
                StmtKind::If { then, els, .. } => {
                    walk(then, target, ids)
                        || els.as_mut().is_some_and(|e| match &mut e.kind {
                            StmtKind::Block(b) => walk(b, target, ids),
                            StmtKind::If { .. } => false,
                            _ => false,
                        })
                }
                StmtKind::For { body, .. } | StmtKind::ForRange { body, .. } => {
                    walk(body, target, ids)
                }
                StmtKind::Select(cases) => cases.iter_mut().any(|c| walk(&mut c.body, target, ids)),
                StmtKind::Block(b) => walk(b, target, ids),
                _ => false,
            };
            if found {
                return true;
            }
        }
        false
    }
    for decl in &mut prog.decls {
        if let Decl::Func(f) = decl {
            if walk(&mut f.body, target, ids) {
                return true;
            }
        }
    }
    false
}

/// The function declaration (by name) containing the statement at `span`.
pub fn enclosing_func(prog: &Program, span: Span) -> Option<&FuncDecl> {
    prog.funcs()
        .find(|f| f.span.start <= span.start && span.end <= f.span.end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite::{parse, print_program};

    fn find_stmt_span(prog: &Program, needle: &str, src: &str) -> Span {
        // Locate the statement whose printed form contains `needle`.
        fn walk(block: &Block, needle: &str, out: &mut Option<Span>) {
            for stmt in &block.stmts {
                if golite::print_stmt(stmt).contains(needle) && out.is_none() {
                    *out = Some(stmt.span);
                }
                match &stmt.kind {
                    StmtKind::If { then, els, .. } => {
                        walk(then, needle, out);
                        if let Some(els) = els {
                            if let StmtKind::Block(b) = &els.kind {
                                walk(b, needle, out);
                            }
                        }
                    }
                    StmtKind::For { body, .. } | StmtKind::ForRange { body, .. } => {
                        walk(body, needle, out)
                    }
                    StmtKind::Select(cases) => {
                        for c in cases {
                            walk(&c.body, needle, out);
                        }
                    }
                    _ => {}
                }
            }
        }
        let _ = src;
        let mut out = None;
        for f in prog.funcs() {
            walk(&f.body, needle, &mut out);
        }
        out.expect("statement found")
    }

    #[test]
    fn bump_make_capacity() {
        let src = "func f() {\n ch := make(chan int)\n close(ch)\n}";
        let mut prog = parse(src).unwrap();
        let mut ids = IdGen::new(&prog);
        let span = find_stmt_span(&prog, "make(chan int)", src);
        assert!(set_make_cap(&mut prog, span, 1, &mut ids));
        let out = print_program(&prog);
        assert!(out.contains("make(chan int, 1)"), "printed:\n{out}");
    }

    #[test]
    fn remove_and_insert() {
        let src = "func f(ch chan int) {\n ch <- 1\n close(ch)\n}";
        let mut prog = parse(src).unwrap();
        let mut ids = IdGen::new(&prog);
        let send_span = find_stmt_span(&prog, "ch <- 1", src);
        assert!(remove_stmt(&mut prog, send_span));
        let close_span = find_stmt_span(&prog, "close(ch)", src);
        let chan = ids.expr(ExprKind::Ident("ch".into()));
        let value = ids.expr(ExprKind::Int(9));
        let extra = ids.stmt(StmtKind::Send { chan, value });
        assert!(insert_after(&mut prog, close_span, vec![extra]));
        let out = print_program(&prog);
        assert!(!out.contains("ch <- 1"));
        assert!(out.contains("ch <- 9"));
        let close_pos = out.find("close(ch)").unwrap();
        let send_pos = out.find("ch <- 9").unwrap();
        assert!(send_pos > close_pos);
    }

    #[test]
    fn replace_inside_closure() {
        let src = "func f() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}";
        let mut prog = parse(src).unwrap();
        let mut ids = IdGen::new(&prog);
        let send_span = find_closure_send(&prog);
        let repl = ids.stmt(StmtKind::Return(vec![]));
        assert!(replace_stmt(&mut prog, send_span, vec![repl]));
        let out = print_program(&prog);
        assert!(!out.contains("ch <- 1"), "printed:\n{out}");
        assert!(out.contains("return"));
    }

    fn find_closure_send(prog: &Program) -> Span {
        for f in prog.funcs() {
            for stmt in &f.body.stmts {
                if let StmtKind::Go(e) = &stmt.kind {
                    if let ExprKind::Call { callee, .. } = &e.kind {
                        if let ExprKind::Closure { body, .. } = &callee.kind {
                            for s in &body.stmts {
                                if matches!(s.kind, StmtKind::Send { .. }) {
                                    return s.span;
                                }
                            }
                        }
                    }
                }
            }
        }
        panic!("send in closure not found");
    }

    #[test]
    fn enclosing_func_lookup() {
        let src = "func a() {\n x := 1\n _ = x\n}\nfunc b() {\n y := 2\n _ = y\n}";
        let prog = parse(src).unwrap();
        let span = find_stmt_span(&prog, "y := 2", src);
        assert_eq!(enclosing_func(&prog, span).unwrap().name, "b");
    }
}
