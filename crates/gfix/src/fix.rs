//! The GFix dispatcher and the three fixing strategies (§4 of the paper).
//!
//! GFix handles BMOC bugs involving two goroutines and one *local* channel
//! `c`: the parent goroutine Go-A fails to conduct `o1`, leaving the child
//! Go-B blocked forever at `o2`. The dispatcher attempts the strategies in
//! order of patch simplicity (§5.1):
//!
//! * **Strategy I** — single-sending bugs: Go-B's only operation on `c` is
//!   one send on an unbuffered channel → bump the buffer size to 1;
//! * **Strategy II** — missing-interaction bugs: Go-A skips `o1` on some
//!   exit (early `return`, `t.Fatal`) → `defer` the interaction right after
//!   `c`'s declaration and delete the original `o1`s;
//! * **Strategy III** — multiple-operations bugs: Go-B operates on `c`
//!   repeatedly (typically in a loop) → add a `stop` channel closed by a
//!   `defer` in Go-A and turn `o2` into a `select` with a stop case.

use crate::edit::{self, IdGen};
use gcatch::primitives::{OpKind, PrimId, Primitives, SyncOp};
use gcatch::report::{BugKind, BugReport};
use golite::ast::*;
use golite::{print_program, Span};
use golite_ir::alias::{AbstractObject, Analysis, CallKind};
use golite_ir::dom::Dominators;
use golite_ir::ir::{self as ir, FuncId, Instr, Loc, Module, Operand};
use std::collections::HashSet;

/// Which strategy produced a patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// Increase buffer size (§4.2).
    IncreaseBuffer,
    /// Defer the channel operation (§4.3).
    DeferOperation,
    /// Add a stop channel (§4.4).
    AddStopChannel,
}

impl Strategy {
    /// Short label matching Table 1 ("S.-I" etc.).
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::IncreaseBuffer => "S-I",
            Strategy::DeferOperation => "S-II",
            Strategy::AddStopChannel => "S-III",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A synthesized patch.
#[derive(Debug, Clone)]
pub struct Patch {
    /// The strategy used.
    pub strategy: Strategy,
    /// Human-readable summary of the transformation.
    pub description: String,
    /// Canonically printed original program.
    pub before: String,
    /// Canonically printed patched program.
    pub after: String,
    /// Changed lines of code (added + removed), the §5.3 readability metric.
    pub changed_lines: usize,
    /// The buggy channel's variable name.
    pub primitive_name: String,
}

/// Why GFix declined to fix a bug (§5.3 lists the four reasons).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The report is not a channel-only BMOC bug.
    NotBmocChannel,
    /// The blocking goroutine is the parent, not a child.
    BlockedParent,
    /// Instructions after `o2` have side effects beyond Go-B.
    SideEffectsAfterO2,
    /// `o1` is a receive whose value is used.
    O1ValueUsed,
    /// The bug involves zero or more than one child goroutine, a non-local
    /// channel, or an otherwise unsupported shape.
    UnsupportedShape,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Rejection::NotBmocChannel => "not a channel-only BMOC bug",
            Rejection::BlockedParent => "the blocked goroutine is the parent",
            Rejection::SideEffectsAfterO2 => "side effects after o2",
            Rejection::O1ValueUsed => "o1 receives a value that is used",
            Rejection::UnsupportedShape => "unsupported bug shape",
        };
        f.write_str(s)
    }
}

/// The GFix fixing system bound to one program.
pub struct GFix<'a> {
    prog: &'a Program,
    module: &'a Module,
    analysis: &'a Analysis<'a>,
    prims: &'a Primitives,
    /// Memoized channel-locality verdicts (a full-module scan each).
    locality: std::cell::RefCell<std::collections::HashMap<PrimId, bool>>,
    /// The canonically printed original program (shared by every patch).
    printed: std::cell::RefCell<Option<std::rc::Rc<String>>>,
}

impl<'a> GFix<'a> {
    /// Binds GFix to a parsed program, its IR, and GCatch's analyses.
    pub fn new(
        prog: &'a Program,
        module: &'a Module,
        analysis: &'a Analysis<'a>,
        prims: &'a Primitives,
    ) -> GFix<'a> {
        GFix {
            prog,
            module,
            analysis,
            prims,
            locality: Default::default(),
            printed: Default::default(),
        }
    }

    /// The printed original program, computed once.
    fn printed_original(&self) -> std::rc::Rc<String> {
        if let Some(p) = self.printed.borrow().as_ref() {
            return p.clone();
        }
        let p = std::rc::Rc::new(print_program(self.prog));
        *self.printed.borrow_mut() = Some(p.clone());
        p
    }

    /// Attempts to patch one detected bug, trying Strategy I, then II, then
    /// III (the dispatcher configuration of §5.1).
    ///
    /// # Errors
    ///
    /// Returns the [`Rejection`] of the *last* applicable strategy when none
    /// succeeds.
    pub fn fix(&self, bug: &BugReport) -> Result<Patch, Rejection> {
        self.fix_annotated(bug).0
    }

    /// [`GFix::fix`], additionally returning the labels of every strategy
    /// attempted, in dispatch order (for fix-iteration trace spans). A bug
    /// rejected by classification attempts no strategy.
    pub fn fix_annotated(&self, bug: &BugReport) -> (Result<Patch, Rejection>, Vec<&'static str>) {
        let mut attempted = Vec::new();
        let ctx = match self.classify(bug) {
            Ok(ctx) => ctx,
            Err(r) => return (Err(r), attempted),
        };
        let mut most_specific = Rejection::UnsupportedShape;
        for strategy in [
            Strategy::IncreaseBuffer,
            Strategy::DeferOperation,
            Strategy::AddStopChannel,
        ] {
            attempted.push(strategy.label());
            match self.try_strategy(strategy, &ctx) {
                Ok(patch) => return (Ok(patch), attempted),
                // Keep the most informative decline reason across strategies
                // (the generic shape mismatch is the least informative).
                Err(r) if r != Rejection::UnsupportedShape => most_specific = r,
                Err(_) => {}
            }
        }
        (Err(most_specific), attempted)
    }

    // ---------------------------------------------------------- dispatcher

    fn classify(&self, bug: &BugReport) -> Result<BugCtx, Rejection> {
        if bug.kind != BugKind::BmocChannel {
            return Err(Rejection::NotBmocChannel);
        }
        if bug.ops.len() != 1 {
            return Err(Rejection::UnsupportedShape);
        }
        let site = bug.primitive.ok_or(Rejection::UnsupportedShape)?;
        let chan = self
            .prims
            .by_site(site)
            .ok_or(Rejection::UnsupportedShape)?;
        let parent_func = site.func;
        if self.module.func(parent_func).is_closure {
            return Err(Rejection::UnsupportedShape);
        }
        if !self.channel_is_local(chan.id) {
            return Err(Rejection::UnsupportedShape);
        }

        // Child goroutines created in the parent function that touch c.
        let mut children: Vec<(Loc, FuncId)> = Vec::new();
        for cs in self.analysis.calls_in(parent_func) {
            if !matches!(cs.kind, CallKind::Go) || cs.ambiguous {
                continue;
            }
            for &t in &cs.targets {
                let reach = self.analysis.reachable_from(t);
                let touches = self
                    .prims
                    .ops_of(chan.id)
                    .any(|op| reach.contains(&op.func));
                if touches {
                    children.push((cs.loc, t));
                }
            }
        }
        if children.len() != 1 {
            return Err(Rejection::UnsupportedShape);
        }
        let (go_site, child) = children[0];

        // The blocked operation o2 must belong to the child.
        let o2_loc = bug.ops[0].loc;
        let child_reach = self.analysis.reachable_from(child);
        if !child_reach.contains(&o2_loc.func) {
            return Err(Rejection::BlockedParent);
        }
        let o2 = self
            .prims
            .ops_of(chan.id)
            .find(|op| op.loc == o2_loc)
            .cloned()
            .ok_or(Rejection::UnsupportedShape)?;

        // Static operations on c by the child side and the parent side.
        let child_ops: Vec<SyncOp> = self
            .prims
            .ops_of(chan.id)
            .filter(|op| child_reach.contains(&op.func) && op.func != parent_func)
            .cloned()
            .collect();
        let parent_ops: Vec<SyncOp> = self
            .prims
            .ops_of(chan.id)
            .filter(|op| op.func == parent_func)
            .cloned()
            .collect();

        Ok(BugCtx {
            chan: chan.id,
            chan_site: site,
            chan_span: bug.primitive_span,
            chan_name: bug.primitive_name.clone(),
            parent_func,
            child,
            go_site,
            o2,
            child_ops,
            parent_ops,
            unbuffered: self.prims.all[chan.id.0].buffer_size() == Some(0),
        })
    }

    /// A channel is local when it never escapes through globals, struct
    /// fields, slices, or other channels. Memoized (full-module scan).
    fn channel_is_local(&self, c: PrimId) -> bool {
        if let Some(&cached) = self.locality.borrow().get(&c) {
            return cached;
        }
        let verdict = self.channel_is_local_uncached(c);
        self.locality.borrow_mut().insert(c, verdict);
        verdict
    }

    fn channel_is_local_uncached(&self, c: PrimId) -> bool {
        let site = self.prims.all[c.0].site;
        let escapes = |func: FuncId, op: &Operand| {
            self.analysis
                .operand_points_to(func, op)
                .iter()
                .any(|o| matches!(o, AbstractObject::Chan(l) if *l == site))
        };
        for f in &self.module.funcs {
            for block in &f.blocks {
                for instr in &block.instrs {
                    let escaped = match instr {
                        Instr::StoreGlobal { src, .. } => escapes(f.id, src),
                        Instr::FieldStore { value, .. } => escapes(f.id, value),
                        Instr::IndexStore { value, .. } => escapes(f.id, value),
                        Instr::Send { value, .. } => escapes(f.id, value),
                        Instr::MakeSlice { elems, .. } => elems.iter().any(|e| escapes(f.id, e)),
                        _ => false,
                    };
                    if escaped {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn try_strategy(&self, strategy: Strategy, ctx: &BugCtx) -> Result<Patch, Rejection> {
        match strategy {
            Strategy::IncreaseBuffer => self.strategy1(ctx),
            Strategy::DeferOperation => self.strategy2(ctx),
            Strategy::AddStopChannel => self.strategy3(ctx),
        }
    }

    // ---------------------------------------------------------- strategy I

    fn strategy1(&self, ctx: &BugCtx) -> Result<Patch, Rejection> {
        // Single-sending bug: o2 is the child's only op on c, a send, on an
        // unbuffered channel, and unblocking it has no side effects.
        if ctx.o2.kind != OpKind::Send || !ctx.unbuffered || ctx.o2.select_case.is_some() {
            return Err(Rejection::UnsupportedShape);
        }
        if ctx.child_ops.len() != 1 || self.in_loop(ctx.o2.loc) {
            return Err(Rejection::UnsupportedShape);
        }
        if self.has_side_effects_after(ctx, &ctx.o2, true) {
            return Err(Rejection::SideEffectsAfterO2);
        }
        let mut prog = self.prog.clone();
        let mut ids = IdGen::new(&prog);
        if !edit::set_make_cap(&mut prog, ctx.chan_span, 1, &mut ids) {
            return Err(Rejection::UnsupportedShape);
        }
        Ok(self.finish(
            Strategy::IncreaseBuffer,
            prog,
            ctx,
            format!("increase {}'s buffer size from 0 to 1", ctx.chan_name),
        ))
    }

    // --------------------------------------------------------- strategy II

    fn strategy2(&self, ctx: &BugCtx) -> Result<Patch, Rejection> {
        // Missing-interaction bug: the parent can leave without executing
        // o1. Defer o1 right after c's declaration, removing the originals.
        if ctx.o2.select_case.is_some() {
            return Err(Rejection::UnsupportedShape);
        }
        if ctx.child_ops.len() != 1 || self.in_loop(ctx.o2.loc) {
            return Err(Rejection::UnsupportedShape);
        }
        if self.has_side_effects_after(ctx, &ctx.o2, true) {
            return Err(Rejection::SideEffectsAfterO2);
        }
        // o1 candidates: the parent's ops able to unblock o2.
        let o1s: Vec<&SyncOp> = ctx
            .parent_ops
            .iter()
            .filter(|op| match ctx.o2.kind {
                OpKind::Recv => matches!(op.kind, OpKind::Send | OpKind::Close),
                OpKind::Send => matches!(op.kind, OpKind::Recv),
                OpKind::Close => false,
            })
            .collect();
        if o1s.is_empty() || o1s.iter().any(|o| o.select_case.is_some()) {
            return Err(Rejection::UnsupportedShape);
        }
        let kinds: HashSet<OpKind> = o1s.iter().map(|o| o.kind).collect();
        if kinds.len() != 1 {
            return Err(Rejection::UnsupportedShape);
        }
        let Some(&o1_kind) = kinds.iter().next() else {
            return Err(Rejection::UnsupportedShape);
        };

        // Build the deferred replacement and check per-kind conditions.
        let mut prog = self.prog.clone();
        let mut ids = IdGen::new(&prog);
        let chan_ident = |ids: &mut IdGen| ids.expr(ExprKind::Ident(ctx.chan_name.clone()));
        let deferred: Stmt = match o1_kind {
            OpKind::Close => {
                let ch = chan_ident(&mut ids);
                let callee = ids.expr(ExprKind::Ident("close".into()));
                let call = ids.expr(ExprKind::Call {
                    callee: Box::new(callee),
                    args: vec![ch],
                });
                ids.stmt(StmtKind::Defer(call))
            }
            OpKind::Send => {
                // Every o1 must send the same constant.
                let mut values: Vec<&Expr> = Vec::new();
                for o1 in &o1s {
                    let v = self
                        .sent_value_ast(o1.span)
                        .ok_or(Rejection::UnsupportedShape)?;
                    values.push(v);
                }
                let first = values[0];
                if !is_constant_expr(first) || values.iter().any(|v| v.kind != first.kind) {
                    return Err(Rejection::UnsupportedShape);
                }
                let mut value = first.clone();
                value.id = ids.id();
                let ch = chan_ident(&mut ids);
                let send = ids.stmt(StmtKind::Send { chan: ch, value });
                let body = Block {
                    stmts: vec![send],
                    span: Span::synthetic(),
                };
                let closure = ids.expr(ExprKind::Closure {
                    params: vec![],
                    results: vec![],
                    body,
                });
                let call = ids.expr(ExprKind::Call {
                    callee: Box::new(closure),
                    args: vec![],
                });
                ids.stmt(StmtKind::Defer(call))
            }
            OpKind::Recv => {
                // Allowed only when the received value is discarded.
                if o1s.iter().any(|o| self.recv_value_used(o.loc)) {
                    return Err(Rejection::O1ValueUsed);
                }
                let ch = chan_ident(&mut ids);
                let recv = ids.expr(ExprKind::Recv(Box::new(ch)));
                let stmt = ids.stmt(StmtKind::Expr(recv));
                let body = Block {
                    stmts: vec![stmt],
                    span: Span::synthetic(),
                };
                let closure = ids.expr(ExprKind::Closure {
                    params: vec![],
                    results: vec![],
                    body,
                });
                let call = ids.expr(ExprKind::Call {
                    callee: Box::new(closure),
                    args: vec![],
                });
                ids.stmt(StmtKind::Defer(call))
            }
        };

        if !edit::insert_after(&mut prog, ctx.chan_span, vec![deferred]) {
            return Err(Rejection::UnsupportedShape);
        }
        for o1 in &o1s {
            if !edit::remove_stmt(&mut prog, o1.span) {
                return Err(Rejection::UnsupportedShape);
            }
        }
        Ok(self.finish(
            Strategy::DeferOperation,
            prog,
            ctx,
            format!(
                "defer the parent's {} on {} so every exit performs it",
                match o1_kind {
                    OpKind::Close => "close",
                    OpKind::Send => "send",
                    OpKind::Recv => "receive",
                },
                ctx.chan_name
            ),
        ))
    }

    // -------------------------------------------------------- strategy III

    fn strategy3(&self, ctx: &BugCtx) -> Result<Patch, Rejection> {
        // Multiple-operations bug: replace the child's blocking send with a
        // select on a stop channel closed (deferred) by the parent.
        if ctx.o2.kind != OpKind::Send || ctx.o2.select_case.is_some() {
            return Err(Rejection::UnsupportedShape);
        }
        // o2 must be inside the goroutine-creating *function literal* (§4.4:
        // "Go-B conducts o2 in the function used to create Go-B") — the
        // synthesized stop channel is only visible there by capture.
        if ctx.o2.loc.func != ctx.child || !self.module.func(ctx.child).is_closure {
            return Err(Rejection::UnsupportedShape);
        }
        if self.has_side_effects_after(ctx, &ctx.o2, false) {
            return Err(Rejection::SideEffectsAfterO2);
        }
        let stop = self.fresh_name("stop");
        let mut prog = self.prog.clone();
        let mut ids = IdGen::new(&prog);

        // Parent: stop := make(chan struct{}); defer close(stop).
        let make = ids.expr(ExprKind::Make {
            ty: Type::Chan(Box::new(Type::Unit)),
            cap: None,
        });
        let decl = ids.stmt(StmtKind::Define {
            names: vec![stop.clone()],
            rhs: make,
        });
        let stop_ident = ids.expr(ExprKind::Ident(stop.clone()));
        let close_callee = ids.expr(ExprKind::Ident("close".into()));
        let close_call = ids.expr(ExprKind::Call {
            callee: Box::new(close_callee),
            args: vec![stop_ident],
        });
        let defer_close = ids.stmt(StmtKind::Defer(close_call));
        if !edit::insert_after(&mut prog, ctx.chan_span, vec![decl, defer_close]) {
            return Err(Rejection::UnsupportedShape);
        }

        // Child: replace `c <- v` with select { case c <- v: ; case <-stop: return }.
        let (chan_expr, value_expr) = self
            .send_stmt_parts(ctx.o2.span)
            .ok_or(Rejection::UnsupportedShape)?;
        let mut chan2 = chan_expr.clone();
        chan2.id = ids.id();
        let mut value2 = value_expr.clone();
        value2.id = ids.id();
        let stop_ident2 = ids.expr(ExprKind::Ident(stop.clone()));
        let ret = ids.stmt(StmtKind::Return(vec![]));
        let select = ids.stmt(StmtKind::Select(vec![
            SelectCase {
                kind: SelectCaseKind::Send {
                    chan: chan2,
                    value: value2,
                },
                body: Block {
                    stmts: vec![],
                    span: Span::synthetic(),
                },
                span: Span::synthetic(),
            },
            SelectCase {
                kind: SelectCaseKind::Recv {
                    value: None,
                    ok: None,
                    chan: stop_ident2,
                },
                body: Block {
                    stmts: vec![ret],
                    span: Span::synthetic(),
                },
                span: Span::synthetic(),
            },
        ]));
        if !edit::replace_stmt(&mut prog, ctx.o2.span, vec![select]) {
            return Err(Rejection::UnsupportedShape);
        }
        Ok(self.finish(
            Strategy::AddStopChannel,
            prog,
            ctx,
            format!("add channel {stop}, defer closing it, and select on it at the child's send"),
        ))
    }

    // ----------------------------------------------------------- utilities

    fn finish(&self, strategy: Strategy, prog: Program, ctx: &BugCtx, what: String) -> Patch {
        let before = self.printed_original().as_ref().clone();
        let after = print_program(&prog);
        let changed_lines = golite::diff_lines(&before, &after);
        Patch {
            strategy,
            description: what,
            before,
            after,
            changed_lines,
            primitive_name: ctx.chan_name.clone(),
        }
    }

    /// Whether `loc`'s block sits on a CFG cycle of its function.
    fn in_loop(&self, loc: Loc) -> bool {
        let f = self.module.func(loc.func);
        let mut seen = HashSet::new();
        let mut stack: Vec<ir::BlockId> = f.block(loc.block).term.successors();
        while let Some(b) = stack.pop() {
            if b == loc.block {
                return true;
            }
            if seen.insert(b) {
                stack.extend(f.block(b).term.successors());
            }
        }
        false
    }

    /// Side-effect check for the code forward-reachable from `o2` without
    /// following back edges. With `strict` (Strategies I/II) any call is a
    /// side effect; Strategy III tolerates calls but not concurrency
    /// operations on other primitives or writes escaping Go-B.
    fn has_side_effects_after(&self, ctx: &BugCtx, o2: &SyncOp, strict: bool) -> bool {
        let f = self.module.func(o2.loc.func);
        let dom = Dominators::compute(f);
        let mut effect = false;
        let mut check = |func: FuncId, instr: &Instr| {
            let on_c = |op: &Operand| {
                self.analysis
                    .operand_points_to(func, op)
                    .iter()
                    .any(|o| matches!(o, AbstractObject::Chan(l) if *l == ctx.chan_site))
            };
            match instr {
                Instr::Send { chan, .. } | Instr::Recv { chan, .. } | Instr::Close { chan }
                    if !on_c(chan) =>
                {
                    effect = true;
                }
                Instr::Lock { .. }
                | Instr::Unlock { .. }
                | Instr::WgAdd { .. }
                | Instr::WgDone { .. }
                | Instr::WgWait { .. }
                | Instr::Go { .. }
                | Instr::StoreGlobal { .. }
                | Instr::FieldStore { .. }
                | Instr::IndexStore { .. }
                | Instr::Panic { .. } => effect = true,
                Instr::Call { .. } | Instr::DeferCall { .. } if strict => effect = true,
                _ => {}
            }
        };
        // Forward walk from just after o2, skipping back edges (edges whose
        // target dominates the source — loop repetitions are Go-B's own
        // continued operation, not new effects).
        let mut work: Vec<(ir::BlockId, usize)> = vec![(o2.loc.block, o2.loc.idx as usize + 1)];
        let mut visited: HashSet<ir::BlockId> = HashSet::new();
        while let Some((b, start)) = work.pop() {
            let blk = f.block(b);
            for instr in blk.instrs.iter().skip(start) {
                check(f.id, instr);
            }
            for succ in blk.term.successors() {
                if dom.dominates(succ, b) {
                    continue; // back edge
                }
                if visited.insert(succ) {
                    work.push((succ, 0));
                }
            }
        }
        effect
    }

    /// The AST value expression of the send statement at `span`.
    fn sent_value_ast(&self, span: Span) -> Option<&Expr> {
        self.find_stmt(span).and_then(|s| match &s.kind {
            StmtKind::Send { value, .. } => Some(value),
            _ => None,
        })
    }

    /// The (channel, value) parts of the send statement at `span`.
    fn send_stmt_parts(&self, span: Span) -> Option<(&Expr, &Expr)> {
        self.find_stmt(span).and_then(|s| match &s.kind {
            StmtKind::Send { chan, value } => Some((chan, value)),
            _ => None,
        })
    }

    /// Whether the receive at `loc` binds its value.
    fn recv_value_used(&self, loc: Loc) -> bool {
        match self.module.func(loc.func).instr_at(loc) {
            Some(Instr::Recv { dst, .. }) => dst.is_some(),
            _ => false,
        }
    }

    /// Finds the AST statement with exactly the given span.
    fn find_stmt(&self, span: Span) -> Option<&Stmt> {
        fn walk(block: &Block, span: Span) -> Option<&Stmt> {
            for stmt in &block.stmts {
                if stmt.span == span {
                    return Some(stmt);
                }
                let found = match &stmt.kind {
                    StmtKind::If { then, els, .. } => walk(then, span).or_else(|| {
                        els.as_deref().and_then(|e| match &e.kind {
                            StmtKind::Block(b) => walk(b, span),
                            StmtKind::If { .. } => walk_stmt(e, span),
                            _ => None,
                        })
                    }),
                    StmtKind::For { body, .. } | StmtKind::ForRange { body, .. } => {
                        walk(body, span)
                    }
                    StmtKind::Select(cases) => cases.iter().find_map(|c| walk(&c.body, span)),
                    StmtKind::Block(b) => walk(b, span),
                    StmtKind::Go(e) | StmtKind::Defer(e) | StmtKind::Expr(e) => walk_expr(e, span),
                    StmtKind::Define { rhs, .. } | StmtKind::Assign { rhs, .. } => {
                        walk_expr(rhs, span)
                    }
                    _ => None,
                };
                if found.is_some() {
                    return found;
                }
            }
            None
        }
        fn walk_stmt(stmt: &Stmt, span: Span) -> Option<&Stmt> {
            if let StmtKind::If { then, els, .. } = &stmt.kind {
                if let Some(s) = walk(then, span) {
                    return Some(s);
                }
                if let Some(els) = els {
                    return walk_stmt(els, span);
                }
            }
            None
        }
        fn walk_expr(e: &Expr, span: Span) -> Option<&Stmt> {
            match &e.kind {
                ExprKind::Closure { body, .. } => walk(body, span),
                ExprKind::Call { callee, args } => {
                    walk_expr(callee, span).or_else(|| args.iter().find_map(|a| walk_expr(a, span)))
                }
                ExprKind::Method { recv, args, .. } => {
                    walk_expr(recv, span).or_else(|| args.iter().find_map(|a| walk_expr(a, span)))
                }
                ExprKind::Paren(inner) => walk_expr(inner, span),
                _ => None,
            }
        }
        self.prog.funcs().find_map(|f| walk(&f.body, span))
    }

    /// A variable name not used anywhere in the program.
    fn fresh_name(&self, base: &str) -> String {
        let printed = self.printed_original();
        if !printed.contains(base) {
            return base.to_string();
        }
        for i in 2..=printed.len() as u64 + 2 {
            let cand = format!("{base}{i}");
            if !printed.contains(&cand) {
                return cand;
            }
        }
        // A suffix longer than the whole program cannot be a substring of
        // it, so this is fresh by construction.
        format!("{base}{}", "9".repeat(printed.len() + 1))
    }
}

/// Context assembled by the dispatcher for one fixable bug.
#[derive(Debug)]
struct BugCtx {
    #[allow(dead_code)] // retained for diagnostics
    chan: PrimId,
    chan_site: Loc,
    chan_span: Span,
    chan_name: String,
    #[allow(dead_code)] // retained for diagnostics
    parent_func: FuncId,
    child: FuncId,
    #[allow(dead_code)] // retained for diagnostics
    go_site: Loc,
    o2: SyncOp,
    child_ops: Vec<SyncOp>,
    parent_ops: Vec<SyncOp>,
    unbuffered: bool,
}

/// Whether an expression is a compile-time constant GFix may duplicate into
/// a deferred send.
fn is_constant_expr(e: &Expr) -> bool {
    matches!(
        e.unparen().kind,
        ExprKind::Int(_) | ExprKind::Str(_) | ExprKind::Bool(_) | ExprKind::Nil | ExprKind::UnitLit
    )
}
