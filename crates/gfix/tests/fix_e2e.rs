//! End-to-end detect→fix→validate tests on the paper's three figures — each
//! exercising one strategy — plus dispatcher rejections.

use gcatch::DetectorConfig;
use gfix::{validate, Pipeline, Strategy};

const FIGURE1: &str = r#"
func StdCopy() error {
    return nil
}

func Exec(ctx context.Context) error {
    outDone := make(chan error)
    go func() {
        err := StdCopy()
        outDone <- err
    }()
    select {
    case err := <-outDone:
        if err != nil {
            return err
        }
    case <-ctx.Done():
        return ctx.Err()
    }
    return nil
}

func main() {
    ctx, cancel := context.WithCancel(context.Background())
    cancel()
    Exec(ctx)
}
"#;

#[test]
fn figure1_gets_strategy1_buffer_patch() {
    let pipeline = Pipeline::from_source(FIGURE1).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    let patch = results
        .patches
        .iter()
        .find(|p| p.primitive_name == "outDone")
        .unwrap_or_else(|| panic!("no patch for outDone: {:?}", results.rejections));
    assert_eq!(patch.strategy, Strategy::IncreaseBuffer);
    assert!(
        patch.after.contains("make(chan error, 1)"),
        "patched:\n{}",
        patch.after
    );
    // §5.3: Strategy-I patches change exactly one line (= 2 diff lines:
    // one removed + one added).
    assert_eq!(patch.changed_lines, 2);
}

#[test]
fn figure1_patch_validates_dynamically() {
    let pipeline = Pipeline::from_source(FIGURE1).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    let patch = results
        .patches
        .iter()
        .find(|p| p.primitive_name == "outDone")
        .unwrap();
    let v = validate(&patch.before, &patch.after, "main", 40);
    assert!(
        v.bug_realized,
        "the original program must leak under some schedule"
    );
    assert!(v.patch_blocks_never, "the patched program must never block");
    assert!(v.semantics_preserved, "clean outputs must agree");
    assert!(v.is_correct());
}

const FIGURE3: &str = r#"
func Start(stop chan struct{}) {
    <-stop
}

func Dial() (int, error) {
    return 0, errors.New("connection refused")
}

func TestRWDialer(t *testing.T) {
    stop := make(chan struct{})
    go Start(stop)
    conn, err := Dial()
    _ = conn
    if err != nil {
        t.Fatalf("dial failed")
    }
    stop <- struct{}{}
}
"#;

#[test]
fn figure3_gets_strategy2_defer_patch() {
    let pipeline = Pipeline::from_source(FIGURE3).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    let patch = results
        .patches
        .iter()
        .find(|p| p.primitive_name == "stop")
        .unwrap_or_else(|| panic!("no patch for stop: {:?}", results.rejections));
    assert_eq!(patch.strategy, Strategy::DeferOperation);
    assert!(
        patch.after.contains("defer func() {"),
        "expected a deferred send closure; patched:\n{}",
        patch.after
    );
    // The original trailing send is gone.
    let after_decl = patch.after.split("defer").nth(1).expect("defer present");
    assert!(after_decl.contains("stop <- struct{}{}"));
    // §5.3: Strategy-II patches change four lines.
    assert_eq!(patch.changed_lines, 4, "patched:\n{}", patch.after);
}

#[test]
fn figure3_patch_validates_dynamically() {
    let pipeline = Pipeline::from_source(FIGURE3).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    let patch = results
        .patches
        .iter()
        .find(|p| p.primitive_name == "stop")
        .unwrap();
    let v = validate(&patch.before, &patch.after, "TestRWDialer", 40);
    assert!(v.bug_realized, "Fatal skips the send, leaking Start");
    assert!(v.patch_blocks_never);
    assert!(v.is_correct());
}

const FIGURE4: &str = r#"
func Input() (string, error) {
    return "line", nil
}

func Interactive(abort chan struct{}) {
    scheduler := make(chan string)
    go func() {
        for {
            line, err := Input()
            if err != nil {
                close(scheduler)
                return
            }
            scheduler <- line
        }
    }()
    for {
        select {
        case <-abort:
            return
        case _, ok := <-scheduler:
            if !ok {
                return
            }
        }
    }
}

func main() {
    abort := make(chan struct{}, 1)
    abort <- struct{}{}
    Interactive(abort)
}
"#;

#[test]
fn figure4_gets_strategy3_stop_channel_patch() {
    let pipeline = Pipeline::from_source(FIGURE4).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    let patch = results
        .patches
        .iter()
        .find(|p| p.primitive_name == "scheduler")
        .unwrap_or_else(|| panic!("no patch for scheduler: {:?}", results.rejections));
    assert_eq!(patch.strategy, Strategy::AddStopChannel);
    assert!(
        patch.after.contains("stop := make(chan struct{})"),
        "patched:\n{}",
        patch.after
    );
    assert!(patch.after.contains("defer close(stop)"));
    assert!(patch.after.contains("case scheduler <- line:"));
    assert!(patch.after.contains("case <-stop:"));
    // §5.3: Strategy-III patches are the largest (~10 lines, max 16).
    assert!(
        patch.changed_lines >= 6 && patch.changed_lines <= 16,
        "changed {} lines; patched:\n{}",
        patch.changed_lines,
        patch.after
    );
}

#[test]
fn figure4_patch_validates_dynamically() {
    let pipeline = Pipeline::from_source(FIGURE4).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    let patch = results
        .patches
        .iter()
        .find(|p| p.primitive_name == "scheduler")
        .unwrap();
    let v = validate(&patch.before, &patch.after, "main", 40);
    assert!(v.bug_realized, "abort-first schedules leak the producer");
    assert!(v.patch_blocks_never, "closing stop releases the producer");
}

#[test]
fn blocked_parent_is_rejected() {
    // The *parent* blocks (no child goroutine exists at all).
    let src = r#"
func main() {
    ch := make(chan int)
    go func() {
        ch <- 1
    }()
    <-ch
    <-ch
}
"#;
    let pipeline = Pipeline::from_source(src).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    // The second receive (parent side) is reported but not fixable.
    assert!(
        results
            .rejections
            .iter()
            .any(|(b, _)| b.ops.iter().any(|o| o.what.contains("recv"))),
        "parent-side blocking must be rejected; got patches {:?}",
        results.patches
    );
}

#[test]
fn side_effects_after_o2_are_rejected_for_strategy1() {
    // The child writes a global after its send: unblocking the send would
    // leak that effect, so Strategy I must refuse (§4.2 step four). No other
    // strategy applies either.
    let src = r#"
var flag int

func main() {
    done := make(chan int)
    stopper := make(chan int, 1)
    stopper <- 1
    go func() {
        done <- 1
        flag = 1
    }()
    select {
    case <-done:
    case <-stopper:
    }
}
"#;
    let pipeline = Pipeline::from_source(src).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    let rejected = results
        .rejections
        .iter()
        .any(|(b, r)| b.primitive_name == "done" && *r == gfix::Rejection::SideEffectsAfterO2);
    let patched = results.patches.iter().any(|p| p.primitive_name == "done");
    assert!(
        rejected && !patched,
        "side effects after o2 must block all strategies; rejections: {:?}",
        results.rejections
    );
}

#[test]
fn strategy2_defer_close_form() {
    // Parent closes the channel on the happy path only; child ranges on it.
    let src = r#"
func consume(ch chan int, out chan int) {
    s := 0
    for v := range ch {
        s = s + v
    }
    out <- s
}

func produce(t *testing.T, fail bool) {
    ch := make(chan int)
    out := make(chan int, 1)
    go consume(ch, out)
    if fail {
        t.Fatalf("early exit")
    }
    close(ch)
    <-out
}
"#;
    let pipeline = Pipeline::from_source(src).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    if let Some(patch) = results.patches.iter().find(|p| p.primitive_name == "ch") {
        assert_eq!(patch.strategy, Strategy::DeferOperation);
        assert!(
            patch.after.contains("defer close(ch)"),
            "patched:\n{}",
            patch.after
        );
    } else {
        // The range receive is two static ops after lowering; rejection is
        // acceptable, but the bug must at least be reported.
        assert!(
            results.bugs.iter().any(|b| b.primitive_name == "ch"),
            "bug must be detected; got {:?}",
            results.bugs
        );
    }
}

#[test]
fn strategy2_defer_recv_when_value_unused() {
    // Child sends on a *buffered* channel the parent pre-filled, so
    // Strategy I (which requires an unbuffered channel) does not apply;
    // the parent's draining receive (value discarded) is skipped by a
    // Fatal — GFix defers the receive.
    let src = r#"
func produce(out chan int) {
    out <- 42
}

func check() error {
    return errors.New("bad state")
}

func TestProduce(t *testing.T) {
    out := make(chan int, 1)
    out <- 7
    go produce(out)
    err := check()
    if err != nil {
        t.Fatalf("check failed")
    }
    <-out
}
"#;
    let pipeline = Pipeline::from_source(src).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    let patch = results
        .patches
        .iter()
        .find(|p| p.primitive_name == "out")
        .unwrap_or_else(|| panic!("expected a patch; rejections: {:?}", results.rejections));
    assert_eq!(patch.strategy, Strategy::DeferOperation);
    assert!(patch.after.contains("<-out"), "patched:\n{}", patch.after);
    let v = validate(&patch.before, &patch.after, "TestProduce", 40);
    assert!(v.bug_realized && v.is_correct());
}

#[test]
fn o1_value_used_is_rejected() {
    // Same buffered shape, but the received value is used — deferring the
    // receive would discard it, so GFix must refuse (§5.3's third decline
    // reason).
    let src = r#"
func produce(out chan int) {
    out <- 42
}

func check() error {
    return errors.New("bad state")
}

func TestProduce(t *testing.T) {
    out := make(chan int, 1)
    out <- 7
    go produce(out)
    err := check()
    if err != nil {
        t.Fatalf("check failed")
    }
    v := <-out
    fmt.Println(v)
}
"#;
    let pipeline = Pipeline::from_source(src).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    assert!(
        results.patches.iter().all(|p| p.primitive_name != "out"),
        "must not patch: {:?}",
        results.patches
    );
    assert!(
        results
            .rejections
            .iter()
            .any(|(b, r)| b.primitive_name == "out" && *r == gfix::Rejection::O1ValueUsed),
        "expected O1ValueUsed; got {:?}",
        results.rejections
    );
}

#[test]
fn strategy3_fresh_name_avoids_collision() {
    // The parent already uses `stop`; the synthesized channel must pick a
    // fresh name.
    let src = r#"
func Feed() {
    stop := 0
    _ = stop
    quit := make(chan int, 1)
    quit <- 1
    lines := make(chan string)
    go func() {
        for {
            lines <- "x"
        }
    }()
    for {
        select {
        case <-quit:
            return
        case v := <-lines:
            _ = v
        }
    }
}
"#;
    // `lines` is created in Feed; its blocking send sits in the closure.
    let wrapped = format!("{src}\nfunc main() {{\n}}\n");
    let pipeline = Pipeline::from_source(&wrapped).unwrap();
    let results = pipeline.run(&DetectorConfig::default());
    if let Some(patch) = results.patches.iter().find(|p| p.primitive_name == "lines") {
        assert_eq!(patch.strategy, Strategy::AddStopChannel);
        assert!(
            patch.after.contains("stop2 := make(chan struct{})"),
            "fresh name expected; patched:\n{}",
            patch.after
        );
    } else {
        // `quit` shares the select with `lines`; whichever shape the
        // detector reports, the bug must at least be detected.
        assert!(
            results.bugs.iter().any(|b| b.primitive_name == "lines"),
            "bug must be detected; got {:?}",
            results.bugs
        );
    }
}

/// `run_traced` must wrap the patch loop in a `fix` span with one
/// `fix_bug` child per BMOC bug, recording the winning strategy.
#[test]
fn run_traced_records_fix_spans() {
    let pipeline = Pipeline::from_source(FIGURE1).unwrap();
    let (results, stats, snapshot) = pipeline.run_traced(
        &DetectorConfig::default(),
        &gcatch::Selection::default(),
        gcatch::TraceLevel::Full,
    );
    assert!(!results.patches.is_empty(), "figure 1 is fixable");
    let names = snapshot.span_names();
    for required in ["session", "fix", "fix_bug", "bmoc_channel"] {
        assert!(names.contains(&required), "missing span `{required}`");
    }
    let fix_outcomes: Vec<&str> = snapshot
        .events
        .iter()
        .filter(|(_, e)| e.name == "fix_applied" || e.name == "fix_rejected")
        .map(|(_, e)| e.name.as_ref())
        .collect();
    assert!(
        fix_outcomes.contains(&"fix_applied"),
        "expected a fix_applied instant, got {fix_outcomes:?}"
    );
    // The stats snapshot rides along and still carries the fix stage.
    assert!(stats.counter(gcatch::Counter::ReportsEmitted) >= 1);
}

/// The default `run_with_stats` path records nothing: tracing stays
/// strictly opt-in.
#[test]
fn run_with_stats_traces_nothing() {
    let pipeline = Pipeline::from_source(FIGURE1).unwrap();
    let (_, _, snapshot) = pipeline.run_traced(
        &DetectorConfig::default(),
        &gcatch::Selection::default(),
        gcatch::TraceLevel::Off,
    );
    assert!(snapshot.events.is_empty());
    assert_eq!(snapshot.threads, vec![(0, "main".to_string())]);
}
