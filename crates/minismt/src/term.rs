//! The constraint language consumed by the solver.
//!
//! GCatch's constraint system (§3.4 of the paper) needs exactly three kinds of
//! atoms:
//!
//! * free boolean variables — the `P(s, r)` match variables and `CLOSED`
//!   variables;
//! * difference atoms over integer *order* variables — `O_i < O_j` and
//!   `O_i = O_j`;
//! * pseudo-boolean sums of atoms — the channel-buffer counters `CB`, which
//!   count "sends before minus receives before" and compare against the
//!   buffer size `BS`.
//!
//! [`Term`] closes these atoms under the usual boolean connectives.

use std::fmt;

/// A free boolean variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoolVar(pub u32);

/// An integer variable (an execution-order variable in GCatch's encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntVar(pub u32);

impl fmt::Display for BoolVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for IntVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// An atomic constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A free boolean variable.
    Bool(BoolVar),
    /// `x - y <= c` — the difference-logic atom. Strict `x < y` is
    /// `x - y <= -1`; `x <= y` is `x - y <= 0`.
    DiffLe {
        /// Left variable.
        x: IntVar,
        /// Right variable.
        y: IntVar,
        /// The constant bound.
        c: i64,
    },
}

/// Comparison operators for [`Term::Linear`] constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
}

/// A formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An atom.
    Atom(Atom),
    /// Negation.
    Not(Box<Term>),
    /// Conjunction (empty = true).
    And(Vec<Term>),
    /// Disjunction (empty = false).
    Or(Vec<Term>),
    /// A pseudo-boolean constraint `Σ coefᵢ·atomᵢ cmp k` where a true atom
    /// contributes its coefficient and a false atom contributes 0.
    Linear {
        /// Signed terms of the sum.
        terms: Vec<(i64, Atom)>,
        /// The comparison operator.
        cmp: Cmp,
        /// The right-hand constant.
        k: i64,
    },
}

impl Term {
    /// A free boolean variable as a term.
    pub fn var(v: BoolVar) -> Term {
        Term::Atom(Atom::Bool(v))
    }

    /// `x < y` over integer variables.
    pub fn lt(x: IntVar, y: IntVar) -> Term {
        Term::Atom(Atom::DiffLe { x, y, c: -1 })
    }

    /// `x <= y` over integer variables.
    pub fn le(x: IntVar, y: IntVar) -> Term {
        Term::Atom(Atom::DiffLe { x, y, c: 0 })
    }

    /// `x == y` over integer variables.
    pub fn eq_int(x: IntVar, y: IntVar) -> Term {
        Term::And(vec![Term::le(x, y), Term::le(y, x)])
    }

    /// Negation, with immediate simplification of double negation.
    #[allow(clippy::should_implement_trait)] // constructor named after the connective
    pub fn not(t: Term) -> Term {
        match t {
            Term::Not(inner) => *inner,
            Term::True => Term::False,
            Term::False => Term::True,
            other => Term::Not(Box::new(other)),
        }
    }

    /// N-ary conjunction with constant folding.
    pub fn and(ts: impl IntoIterator<Item = Term>) -> Term {
        let mut out = Vec::new();
        for t in ts {
            match t {
                Term::True => {}
                Term::False => return Term::False,
                Term::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Term::True,
            1 => out.pop().expect("len checked"),
            _ => Term::And(out),
        }
    }

    /// N-ary disjunction with constant folding.
    pub fn or(ts: impl IntoIterator<Item = Term>) -> Term {
        let mut out = Vec::new();
        for t in ts {
            match t {
                Term::False => {}
                Term::True => return Term::True,
                Term::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Term::False,
            1 => out.pop().expect("len checked"),
            _ => Term::Or(out),
        }
    }

    /// `a → b`.
    pub fn implies(a: Term, b: Term) -> Term {
        Term::or([Term::not(a), b])
    }

    /// `a ↔ b`.
    pub fn iff(a: Term, b: Term) -> Term {
        Term::and([Term::implies(a.clone(), b.clone()), Term::implies(b, a)])
    }

    /// Exactly one of `atoms` is true — GCatch's "one and only one receive
    /// matches the send" requirement. The empty case is `false`.
    pub fn exactly_one(atoms: impl IntoIterator<Item = Atom>) -> Term {
        let atoms: Vec<Atom> = atoms.into_iter().collect();
        if atoms.is_empty() {
            return Term::False;
        }
        Term::Linear {
            terms: atoms.into_iter().map(|a| (1, a)).collect(),
            cmp: Cmp::Eq,
            k: 1,
        }
    }

    /// At most one of `atoms` is true.
    pub fn at_most_one(atoms: impl IntoIterator<Item = Atom>) -> Term {
        let terms: Vec<(i64, Atom)> = atoms.into_iter().map(|a| (1, a)).collect();
        if terms.is_empty() {
            return Term::True;
        }
        Term::Linear {
            terms,
            cmp: Cmp::Le,
            k: 1,
        }
    }

    /// Collects every atom mentioned in the term into `out`.
    pub fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Term::True | Term::False => {}
            Term::Atom(a) => out.push(*a),
            Term::Not(t) => t.collect_atoms(out),
            Term::And(ts) | Term::Or(ts) => {
                for t in ts {
                    t.collect_atoms(out);
                }
            }
            Term::Linear { terms, .. } => out.extend(terms.iter().map(|(_, a)| *a)),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::True => write!(f, "true"),
            Term::False => write!(f, "false"),
            Term::Atom(Atom::Bool(v)) => write!(f, "{v}"),
            Term::Atom(Atom::DiffLe { x, y, c }) => match c {
                -1 => write!(f, "({x} < {y})"),
                0 => write!(f, "({x} <= {y})"),
                c => write!(f, "({x} - {y} <= {c})"),
            },
            Term::Not(t) => write!(f, "¬{t}"),
            Term::And(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::Or(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::Linear { terms, cmp, k } => {
                write!(f, "(")?;
                for (i, (c, a)) in terms.iter().enumerate() {
                    if i > 0 || *c < 0 {
                        write!(f, "{}", if *c < 0 { " - " } else { " + " })?;
                    }
                    write!(f, "{}", Term::Atom(*a))?;
                }
                let op = match cmp {
                    Cmp::Lt => "<",
                    Cmp::Le => "<=",
                    Cmp::Gt => ">",
                    Cmp::Ge => ">=",
                    Cmp::Eq => "==",
                };
                write!(f, " {op} {k})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_folds_constants() {
        assert_eq!(Term::and([Term::True, Term::True]), Term::True);
        assert_eq!(Term::and([Term::True, Term::False]), Term::False);
        let v = Term::var(BoolVar(0));
        assert_eq!(Term::and([Term::True, v.clone()]), v);
    }

    #[test]
    fn or_folds_constants() {
        assert_eq!(Term::or([Term::False, Term::False]), Term::False);
        assert_eq!(Term::or([Term::False, Term::True]), Term::True);
    }

    #[test]
    fn nested_ands_flatten() {
        let a = Term::var(BoolVar(0));
        let b = Term::var(BoolVar(1));
        let c = Term::var(BoolVar(2));
        let t = Term::and([Term::and([a.clone(), b.clone()]), c.clone()]);
        assert_eq!(t, Term::And(vec![a, b, c]));
    }

    #[test]
    fn double_negation_cancels() {
        let a = Term::var(BoolVar(0));
        assert_eq!(Term::not(Term::not(a.clone())), a);
    }

    #[test]
    fn strict_lt_encodes_minus_one() {
        match Term::lt(IntVar(0), IntVar(1)) {
            Term::Atom(Atom::DiffLe { c, .. }) => assert_eq!(c, -1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exactly_one_of_empty_is_false() {
        assert_eq!(Term::exactly_one([]), Term::False);
    }

    #[test]
    fn collect_atoms_walks_everything() {
        let t = Term::and([
            Term::var(BoolVar(0)),
            Term::or([
                Term::lt(IntVar(0), IntVar(1)),
                Term::not(Term::var(BoolVar(1))),
            ]),
            Term::exactly_one([Atom::Bool(BoolVar(2))]),
        ]);
        let mut atoms = Vec::new();
        t.collect_atoms(&mut atoms);
        assert_eq!(atoms.len(), 4);
    }

    #[test]
    fn display_is_readable() {
        let t = Term::lt(IntVar(3), IntVar(7));
        assert_eq!(t.to_string(), "(i3 < i7)");
    }
}
