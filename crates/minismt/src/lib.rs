//! # minismt — the constraint solver behind the GCatch reproduction
//!
//! The GCatch/GFix paper (ASPLOS '21) discharges its blocking-bug
//! constraints with Z3. This crate is the from-scratch replacement: a
//! DPLL(T) solver specialized to exactly the constraint language GCatch's
//! encoding (§3.4 of the paper) needs:
//!
//! * **free booleans** — the `P(s, r)` send/receive match variables and the
//!   `CLOSED` channel-state variables;
//! * **difference logic** over integer order variables — `Oᵢ < Oⱼ`
//!   (program/spawn order) and `Oᵢ = Oⱼ` (a matched send and receive execute
//!   together);
//! * **pseudo-boolean sums** — the channel-buffer counters `CB`, computed as
//!   "number of sends before minus number of receives before" and compared
//!   against the buffer size `BS`, plus exactly-one matching cardinality.
//!
//! The architecture is DPLL with chronological backtracking, Tseitin CNF
//! conversion, a counter-based pseudo-boolean propagator with reification,
//! and an eager incremental difference-logic theory that maintains a
//! feasible potential and learns negative-cycle conflict clauses.
//!
//! # Examples
//!
//! Prove that a send on an unbuffered channel must synchronize with its
//! receive:
//!
//! ```
//! use minismt::{Solver, Term};
//!
//! let mut s = Solver::new();
//! let o_send = s.fresh_int();
//! let o_recv = s.fresh_int();
//! let p = s.fresh_bool();
//!
//! // The send proceeds only when matched (buffer size 0), and matching
//! // makes both operations execute at the same time.
//! s.assert(Term::implies(
//!     Term::var(p),
//!     Term::eq_int(o_send, o_recv),
//! ));
//! s.assert(Term::var(p));
//!
//! let model = s.solve().model().expect("satisfiable");
//! assert_eq!(model.int_value(o_send), model.int_value(o_recv));
//! ```

#![warn(missing_docs)]

mod dl;
mod solver;
mod term;

pub use dl::DiffLogic;
pub use solver::{Model, SolveResult, Solver, SolverMode, SolverStats};
pub use term::{Atom, BoolVar, Cmp, IntVar, Term};
