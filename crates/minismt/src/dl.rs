//! Incremental difference-logic theory solver.
//!
//! Maintains a set of constraints of the form `x - y <= c` over integer
//! variables and answers feasibility incrementally. The implementation keeps
//! a *feasible potential* `π` (an assignment satisfying every active
//! constraint). Asserting a new constraint triggers a label-correcting
//! relaxation; if the relaxation wraps around to the constraint's own
//! right-hand variable, the constraint closes a negative cycle and the
//! theory reports the cycle's tags as an explanation.
//!
//! Retracting constraints (on solver backtracking) is free: a potential that
//! is feasible for a superset of constraints is feasible for any subset.

/// Identifies the external fact (a solver literal) that caused an edge.
pub type Tag = u32;

#[derive(Debug, Clone)]
struct Edge {
    /// Constraint `x - y <= c`.
    x: usize,
    y: usize,
    c: i64,
    tag: Tag,
    active: bool,
}

/// The incremental difference-logic solver.
#[derive(Debug, Default)]
pub struct DiffLogic {
    pi: Vec<i64>,
    edges: Vec<Edge>,
    /// For vertex `y`, edges `x - y <= c` (i.e. edges whose bound depends on
    /// `π[y]`).
    out: Vec<Vec<usize>>,
    /// Assertion-ordered stack of edge indices, for backtracking.
    trail: Vec<usize>,
}

impl DiffLogic {
    /// Creates an empty theory state.
    pub fn new() -> Self {
        DiffLogic::default()
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.pi.len() < n {
            self.pi.push(0);
            self.out.push(Vec::new());
        }
    }

    /// Number of currently active constraints.
    pub fn active_len(&self) -> usize {
        self.trail.len()
    }

    /// The current feasible value of variable `v`.
    ///
    /// Values satisfy every active constraint, so they form a model of the
    /// asserted difference constraints.
    pub fn value(&self, v: usize) -> i64 {
        self.pi.get(v).copied().unwrap_or(0)
    }

    /// Asserts `x - y <= c`.
    ///
    /// # Errors
    ///
    /// If the constraint closes a negative cycle, returns the tags of every
    /// constraint on that cycle (including `tag` itself); the theory state is
    /// unchanged.
    pub fn assert(&mut self, x: usize, y: usize, c: i64, tag: Tag) -> Result<(), Vec<Tag>> {
        self.ensure_vars(x.max(y) + 1);
        if x == y {
            if c < 0 {
                return Err(vec![tag]);
            }
            // Trivially true; record an inert edge so backtracking stays aligned.
            let idx = self.edges.len();
            self.edges.push(Edge {
                x,
                y,
                c,
                tag,
                active: true,
            });
            self.trail.push(idx);
            return Ok(());
        }

        let idx = self.edges.len();
        self.edges.push(Edge {
            x,
            y,
            c,
            tag,
            active: true,
        });
        self.out[y].push(idx);
        self.trail.push(idx);

        if self.pi[x] <= self.pi[y] + c {
            return Ok(()); // Already satisfied; potential unchanged.
        }

        // Relax: lower π[x] and propagate decreases. Record prior values so
        // the whole attempt can be rolled back on conflict.
        let mut saved: Vec<(usize, i64)> = Vec::new();
        let mut parent: Vec<Option<usize>> = vec![None; self.pi.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

        saved.push((x, self.pi[x]));
        self.pi[x] = self.pi[y] + c;
        parent[x] = Some(idx);
        queue.push_back(x);

        while let Some(u) = queue.pop_front() {
            // Relax all edges `z - u <= cz`: π[z] must be ≤ π[u] + cz.
            for &ei in &self.out[u].clone() {
                let e = &self.edges[ei];
                if !e.active {
                    continue;
                }
                let (z, cz) = (e.x, e.c);
                if self.pi[z] > self.pi[u] + cz {
                    if z == y {
                        // Negative cycle: new edge plus the parent chain from
                        // `u` back to `x`, plus this closing edge.
                        let mut tags = vec![self.edges[ei].tag];
                        let mut cur = u;
                        loop {
                            let pe = parent[cur].expect("relaxed vertices have parents");
                            tags.push(self.edges[pe].tag);
                            if pe == idx {
                                break;
                            }
                            cur = self.edges[pe].y;
                        }
                        // Roll back the attempted relaxation and the edge.
                        for &(v, old) in saved.iter().rev() {
                            self.pi[v] = old;
                        }
                        self.retract_last();
                        tags.dedup();
                        return Err(tags);
                    }
                    saved.push((z, self.pi[z]));
                    self.pi[z] = self.pi[u] + cz;
                    parent[z] = Some(ei);
                    queue.push_back(z);
                }
            }
        }
        Ok(())
    }

    /// Retracts the most recently asserted constraint.
    ///
    /// # Panics
    ///
    /// Panics if no constraint is active.
    pub fn retract_last(&mut self) {
        let idx = self.trail.pop().expect("retract on empty trail");
        self.edges[idx].active = false;
        // Remove from adjacency (it is at the back by construction).
        let y = self.edges[idx].y;
        if self.edges[idx].x != y {
            if let Some(pos) = self.out[y].iter().rposition(|&e| e == idx) {
                self.out[y].remove(pos);
            }
        }
        self.edges.truncate(self.edges.len().min(idx + 1));
        if self.edges.len() == idx + 1 && !self.edges[idx].active {
            self.edges.pop();
        }
    }

    /// Retracts constraints until only `n` remain active.
    pub fn retract_to(&mut self, n: usize) {
        while self.trail.len() > n {
            self.retract_last();
        }
    }

    /// Checks that the current potential satisfies every active constraint.
    /// Exposed for tests and debug assertions.
    pub fn check_invariant(&self) -> bool {
        self.trail.iter().all(|&ei| {
            let e = &self.edges[ei];
            !e.active || self.pi[e.x] <= self.pi[e.y] + e.c
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_chain_is_feasible() {
        let mut dl = DiffLogic::new();
        // a < b < c  (a-b <= -1, b-c <= -1)
        dl.assert(0, 1, -1, 1).unwrap();
        dl.assert(1, 2, -1, 2).unwrap();
        assert!(dl.check_invariant());
        assert!(dl.value(0) < dl.value(1));
        assert!(dl.value(1) < dl.value(2));
    }

    #[test]
    fn two_cycle_is_conflict() {
        let mut dl = DiffLogic::new();
        dl.assert(0, 1, -1, 10).unwrap(); // a < b
        let err = dl.assert(1, 0, -1, 20).unwrap_err(); // b < a
        assert!(err.contains(&10) && err.contains(&20));
        // State must be unchanged: re-asserting a compatible constraint works.
        assert!(dl.check_invariant());
        dl.assert(1, 0, 5, 30).unwrap(); // b - a <= 5 is fine
        assert!(dl.check_invariant());
    }

    #[test]
    fn long_cycle_reports_all_tags() {
        let mut dl = DiffLogic::new();
        dl.assert(0, 1, -1, 1).unwrap();
        dl.assert(1, 2, -1, 2).unwrap();
        dl.assert(2, 3, -1, 3).unwrap();
        let err = dl.assert(3, 0, -1, 4).unwrap_err();
        let mut tags = err.clone();
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2, 3, 4]);
    }

    #[test]
    fn equality_via_two_le_edges() {
        let mut dl = DiffLogic::new();
        dl.assert(0, 1, 0, 1).unwrap();
        dl.assert(1, 0, 0, 2).unwrap();
        assert_eq!(dl.value(0), dl.value(1));
        // x = y plus x < y is a conflict.
        assert!(dl.assert(0, 1, -1, 3).is_err());
    }

    #[test]
    fn retract_restores_feasibility() {
        let mut dl = DiffLogic::new();
        dl.assert(0, 1, -1, 1).unwrap();
        let mark = dl.active_len();
        dl.assert(1, 2, -1, 2).unwrap();
        dl.retract_to(mark);
        // Now 2 < 0 is fine because 1 < 2 is gone.
        dl.assert(2, 0, -5, 3).unwrap();
        assert!(dl.check_invariant());
    }

    #[test]
    fn self_edge_negative_is_conflict() {
        let mut dl = DiffLogic::new();
        assert_eq!(dl.assert(0, 0, -1, 7).unwrap_err(), vec![7]);
        dl.assert(0, 0, 0, 8).unwrap(); // x - x <= 0 trivially true
        assert!(dl.check_invariant());
    }

    #[test]
    fn bounded_difference_constraints() {
        let mut dl = DiffLogic::new();
        dl.assert(0, 1, 3, 1).unwrap(); // x - y <= 3
        dl.assert(1, 0, -2, 2).unwrap(); // y - x <= -2, i.e. x >= y + 2
        assert!(dl.check_invariant());
        let (x, y) = (dl.value(0), dl.value(1));
        assert!(x - y <= 3 && y - x <= -2);
        // Tighten into infeasibility: x - y <= 1 contradicts x - y >= 2.
        assert!(dl.assert(0, 1, 1, 3).is_err());
        assert!(dl.check_invariant());
    }

    #[test]
    fn many_vars_independent_groups() {
        let mut dl = DiffLogic::new();
        for i in 0..50usize {
            let base = i * 3;
            dl.assert(base, base + 1, -1, i as u32).unwrap();
            dl.assert(base + 1, base + 2, -1, 100 + i as u32).unwrap();
        }
        assert!(dl.check_invariant());
        for i in 0..50usize {
            let base = i * 3;
            assert!(dl.value(base) < dl.value(base + 1));
            assert!(dl.value(base + 1) < dl.value(base + 2));
        }
    }
}
