//! The DPLL(T) engine.
//!
//! The engine combines three propagation mechanisms over one assignment
//! trail:
//!
//! 1. **Clauses** from the Tseitin encoding of asserted [`Term`]s,
//!    propagated either by two-watched-literal lists
//!    ([`SolverMode::Watched`], the default) or by full occurrence-list
//!    rescans ([`SolverMode::Rescan`], the legacy engine kept for
//!    differential testing);
//! 2. **Pseudo-boolean constraints** (reified `Σ cᵢ·litᵢ <= k`), used for
//!    GCatch's channel-buffer counters and exactly-one matching;
//! 3. **Difference logic** for order atoms `x - y <= c`, checked eagerly by
//!    the incremental [`DiffLogic`] theory whenever an order atom is
//!    assigned.
//!
//! Search is DPLL with chronological backtracking plus conflict clauses
//! harvested from theory cycles and violated PB constraints. The watched
//! engine adds an activity-bumped (VSIDS-lite) decision heuristic that is
//! fully deterministic: ties break toward the lowest variable index.
//!
//! The solver is **incremental**: assertions are encoded eagerly into a
//! persistent engine, [`Solver::push`]/[`Solver::pop`] open and close
//! assertion scopes, and [`Solver::solve_under`] answers queries under
//! assumption literals without mutating the assertion stack. Conflict
//! clauses learned by a query are retained for later queries in the same
//! scope (they are consequences of the asserted formula and the theory,
//! never of the assumptions, so retention is sound).

use crate::dl::DiffLogic;
use crate::term::{Atom, BoolVar, Cmp, IntVar, Term};
use std::collections::HashMap;

/// A satisfying assignment.
#[derive(Debug, Clone, Default)]
pub struct Model {
    bools: HashMap<BoolVar, bool>,
    ints: HashMap<IntVar, i64>,
}

impl Model {
    /// Value of a boolean variable, if it was mentioned in the problem.
    pub fn bool_value(&self, v: BoolVar) -> Option<bool> {
        self.bools.get(&v).copied()
    }

    /// Value of an integer variable, if it was mentioned in the problem.
    /// Unconstrained variables default to 0.
    pub fn int_value(&self, v: IntVar) -> Option<i64> {
        self.ints.get(&v).copied()
    }

    /// Iterates over all integer variable values.
    pub fn ints(&self) -> impl Iterator<Item = (IntVar, i64)> + '_ {
        self.ints.iter().map(|(v, x)| (*v, *x))
    }
}

/// Search-effort counters for one [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Propagation/decision steps consumed (the budgeted quantity).
    pub steps: u64,
    /// Decision points: unassigned variables picked during search.
    pub decisions: u64,
    /// Conflicts: clause/PB violations and theory cycles hit.
    pub conflicts: u64,
    /// Wall-clock time of the call (encode + search). Unlike the effort
    /// counters this is *not* deterministic; consumers exporting
    /// reproducible output must use `steps`/`decisions`/`conflicts`.
    pub elapsed: std::time::Duration,
}

/// The outcome of [`Solver::solve`].
#[derive(Debug, Clone)]
pub enum SolveResult {
    /// A model satisfying all asserted terms.
    Sat(Model),
    /// No model exists (under the assumptions, if any were given).
    Unsat,
    /// The step limit or wall-clock deadline was exhausted before a
    /// verdict.
    Unknown,
}

impl SolveResult {
    /// `true` if the result is [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// `true` if the result is [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// Extracts the model, if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// Which propagation engine the solver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Two-watched-literal clause propagation with the VSIDS-lite decision
    /// heuristic. The default.
    #[default]
    Watched,
    /// The legacy clone-free occurrence-list rescan engine with the
    /// first-unassigned-index heuristic. Kept as an escape hatch for
    /// differential testing against the watched engine.
    Rescan,
}

/// Saved sizes for one [`Solver::push`] scope; [`Solver::pop`] truncates
/// every growable structure back to these marks.
#[derive(Debug, Clone, Copy)]
struct ScopeMark {
    n_bool: u32,
    n_int: u32,
    n_assertions: usize,
    n_vars: usize,
    n_clauses: usize,
    n_units: usize,
    n_pbs: usize,
    n_empty: u32,
    n_atoms: usize,
    n_intern: usize,
    learned: u64,
}

/// A constraint-solving context: create variables, assert terms, solve.
///
/// # Examples
///
/// ```
/// use minismt::{Solver, Term};
///
/// let mut s = Solver::new();
/// let a = s.fresh_int();
/// let b = s.fresh_int();
/// let c = s.fresh_int();
/// s.assert(Term::lt(a, b));
/// s.assert(Term::lt(b, c));
/// let model = s.solve().model().expect("a < b < c is satisfiable");
/// assert!(model.int_value(a) < model.int_value(b));
///
/// let mut s2 = Solver::new();
/// let x = s2.fresh_int();
/// let y = s2.fresh_int();
/// s2.assert(Term::lt(x, y));
/// s2.assert(Term::lt(y, x));
/// assert!(s2.solve().is_unsat());
/// ```
///
/// Incremental use — scopes and assumptions:
///
/// ```
/// use minismt::{Solver, Term};
///
/// let mut s = Solver::new();
/// let p = s.fresh_bool();
/// let q = s.fresh_bool();
/// s.assert(Term::or([Term::var(p), Term::var(q)]));
/// s.push();
/// s.assert(Term::not(Term::var(p)));
/// assert!(s.solve_under(&[Term::not(Term::var(q))]).is_unsat());
/// assert!(s.solve().is_sat()); // assumptions do not persist
/// s.pop();
/// assert!(s.solve_under(&[Term::not(Term::var(q))]).is_sat());
/// ```
#[derive(Debug)]
pub struct Solver {
    n_bool: u32,
    n_int: u32,
    n_assertions: usize,
    engine: Engine,
    scopes: Vec<ScopeMark>,
    step_limit: u64,
    deadline: Option<std::time::Instant>,
    fault_step: Option<u64>,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with the default engine
    /// ([`SolverMode::Watched`]), the default step limit, and no deadline.
    pub fn new() -> Self {
        Solver::with_mode(SolverMode::default())
    }

    /// Creates an empty solver running the given propagation engine.
    pub fn with_mode(mode: SolverMode) -> Self {
        Solver {
            n_bool: 0,
            n_int: 0,
            n_assertions: 0,
            engine: Engine::new(mode),
            scopes: Vec::new(),
            step_limit: 5_000_000,
            deadline: None,
            fault_step: None,
            stats: SolverStats::default(),
        }
    }

    /// The propagation engine this solver runs.
    pub fn mode(&self) -> SolverMode {
        self.engine.mode
    }

    /// Creates a fresh boolean variable.
    pub fn fresh_bool(&mut self) -> BoolVar {
        let v = BoolVar(self.n_bool);
        self.n_bool += 1;
        v
    }

    /// Creates a fresh integer variable.
    pub fn fresh_int(&mut self) -> IntVar {
        let v = IntVar(self.n_int);
        self.n_int += 1;
        v
    }

    /// Sets the search budget (number of propagation/decision steps) for
    /// subsequent solve calls.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Sets (or clears) a wall-clock deadline for [`Solver::solve`].
    ///
    /// The search checks the clock cooperatively every few hundred
    /// steps and returns [`SolveResult::Unknown`] once the deadline
    /// passes. Unlike the step limit this makes the *verdict*
    /// timing-dependent, so callers needing reproducible output should
    /// prefer the step limit and treat the deadline as a last-resort
    /// bound.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Arms a test-only fault: the search panics once it has consumed
    /// `after` steps, simulating pathological step exhaustion at the same
    /// site where the real step limit is enforced. The panic message
    /// carries the `injected fault:` marker so supervisors can classify
    /// it as transient. Never armed in production paths; callers opt in
    /// explicitly (see the fault-injection layer in `gcatch`).
    pub fn inject_step_fault(&mut self, after: u64) {
        self.fault_step = Some(after);
    }

    /// Arms or clears the test-only step fault (see
    /// [`Solver::inject_step_fault`]); incremental callers re-arm per
    /// query.
    pub fn set_step_fault(&mut self, after: Option<u64>) {
        self.fault_step = after;
    }

    /// Asserts that `t` must hold in any model. The term is encoded into
    /// the persistent engine immediately; assertions are permanent until
    /// the enclosing [`Solver::push`] scope is popped.
    pub fn assert(&mut self, t: Term) {
        self.n_assertions += 1;
        self.engine.assert_term(&t);
    }

    /// Number of asserted top-level terms in the current scope stack.
    pub fn num_assertions(&self) -> usize {
        self.n_assertions
    }

    /// Total clauses in the engine (base, Tseitin, and learned). The delta
    /// across queries within a scope counts retained learned clauses.
    pub fn num_clauses(&self) -> usize {
        self.engine.clauses.len()
    }

    /// Conflict clauses learned (theory cycles and PB violations) and still
    /// retained in the current scope stack.
    pub fn num_learned(&self) -> u64 {
        self.engine.learned
    }

    /// Opens an assertion scope: variables, assertions, and learned
    /// clauses added after this call are discarded by the matching
    /// [`Solver::pop`].
    pub fn push(&mut self) {
        self.scopes.push(ScopeMark {
            n_bool: self.n_bool,
            n_int: self.n_int,
            n_assertions: self.n_assertions,
            n_vars: self.engine.kinds.len(),
            n_clauses: self.engine.clauses.len(),
            n_units: self.engine.units.len(),
            n_pbs: self.engine.pbs.len(),
            n_empty: self.engine.empty_clauses,
            n_atoms: self.engine.atom_log.len(),
            n_intern: self.engine.intern_log.len(),
            learned: self.engine.learned,
        });
    }

    /// Closes the innermost assertion scope, discarding everything added
    /// since the matching [`Solver::push`].
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let m = self
            .scopes
            .pop()
            .expect("Solver::pop without matching push");
        self.n_bool = m.n_bool;
        self.n_int = m.n_int;
        self.n_assertions = m.n_assertions;
        self.engine.pop_scope(&m);
    }

    /// Number of open assertion scopes.
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    /// Solves the conjunction of all asserted terms.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_under(&[])
    }

    /// Solves the asserted terms under additional assumption terms.
    ///
    /// Assumptions hold only for this query: they are assigned on the
    /// trail below every decision (so backtracking can never flip them)
    /// and are fully retracted afterwards. An [`SolveResult::Unsat`]
    /// answer means "unsatisfiable under these assumptions". Conflict
    /// clauses learned during the query are kept for later queries in the
    /// same scope.
    pub fn solve_under(&mut self, assumptions: &[Term]) -> SolveResult {
        let start = std::time::Instant::now();
        self.engine.limit = self.step_limit;
        self.engine.deadline = self.deadline;
        self.engine.fault_step = self.fault_step;
        let mut lits = Vec::with_capacity(assumptions.len());
        for t in assumptions {
            // Register atoms first so the model covers every mentioned var.
            let mut atoms = Vec::new();
            t.collect_atoms(&mut atoms);
            for a in atoms {
                self.engine.atom_var(&a);
            }
            lits.push(self.engine.encode(t));
        }
        let result = self.engine.search(&lits);
        self.stats = SolverStats {
            steps: self.engine.steps,
            decisions: self.engine.decisions,
            conflicts: self.engine.conflicts,
            elapsed: start.elapsed(),
        };
        self.engine.reset_trail();
        result
    }

    /// Effort counters of the most recent [`Solver::solve`] call.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}

// ---------------------------------------------------------------- internals

/// A literal: variable index with polarity in the low bit (`v<<1 | neg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Lit(u32);

impl Lit {
    fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    fn var(self) -> u32 {
        self.0 >> 1
    }

    fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    fn neg(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The value this literal requires its variable to take.
    fn target(self) -> bool {
        !self.is_neg()
    }

    /// Index into per-literal tables (two slots per variable).
    fn code(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
enum VarKind {
    /// A free boolean (or Tseitin auxiliary) variable.
    Free,
    /// A difference-logic atom `x - y <= c`.
    Diff { x: u32, y: u32, c: i64 },
}

#[derive(Debug)]
struct PbConstraint {
    /// Activation literal: `act` true ⇔ `Σ cᵢ·litᵢ <= k`.
    act: Lit,
    /// Positive-coefficient terms; a true literal contributes its coefficient.
    terms: Vec<(i64, Lit)>,
    k: i64,
}

#[derive(Debug, Clone, Copy)]
struct TrailEntry {
    var: u32,
    value: bool,
    /// Whether this was a decision (searchable) or an implication.
    decision: bool,
    /// Whether the decision has already been flipped once.
    flipped: bool,
    /// Number of DL edges asserted before this entry.
    dl_mark: usize,
}

/// Activity decay factor: each conflict scales the bump increment by
/// `1/ACTIVITY_DECAY`, geometrically favouring recent conflicts.
const ACTIVITY_DECAY: f64 = 0.95;

/// Rescale threshold keeping activities inside f64 range. Rescaling
/// divides every activity by the same constant, so comparisons — and with
/// them decisions and step counts — are unaffected.
const ACTIVITY_RESCALE: f64 = 1e100;

#[derive(Debug)]
struct Engine {
    mode: SolverMode,
    kinds: Vec<VarKind>,
    values: Vec<Option<bool>>,
    atom_ids: HashMap<Atom, u32>,
    /// Insertion order of `atom_ids`, so `pop_scope` can evict exactly the
    /// atoms a scope introduced.
    atom_log: Vec<Atom>,
    /// Structural-hash cons table: composite terms already Tseitin-encoded
    /// map to their activation literal, so re-encoding an identical
    /// subterm is a hash lookup instead of fresh clauses.
    intern: HashMap<Term, Lit>,
    intern_log: Vec<Term>,
    clauses: Vec<Vec<Lit>>,
    /// var -> clause indices containing it (Rescan engine only).
    occurs: Vec<Vec<u32>>,
    /// lit code -> clauses currently watching that literal (Watched engine
    /// only). The watched literals of clause `ci` are `clauses[ci][0..2]`.
    watches: Vec<Vec<u32>>,
    /// Literals that must hold unconditionally: unit clauses plus ground
    /// PB propagations. Replayed at the start of every watched search.
    units: Vec<Lit>,
    /// Unit conflict clauses learned during the current search; replayed
    /// after every backtrack (the queue is cleared by trail pops).
    fresh_units: Vec<Lit>,
    empty_clauses: u32,
    pbs: Vec<PbConstraint>,
    /// var -> PB indices containing it (as term or activation).
    pb_occurs: Vec<Vec<u32>>,
    trail: Vec<TrailEntry>,
    /// var -> trail index, `u32::MAX` when unassigned. Lets conflict
    /// learning watch the deepest-assigned literals.
    trail_pos: Vec<u32>,
    queue: std::collections::VecDeque<Lit>,
    /// VSIDS-lite activity per variable (Watched engine only).
    activity: Vec<f64>,
    var_inc: f64,
    dl: DiffLogic,
    steps: u64,
    decisions: u64,
    conflicts: u64,
    limit: u64,
    /// Optional wall-clock bound, checked every `DEADLINE_STRIDE` steps.
    deadline: Option<std::time::Instant>,
    /// Step count at which the deadline is next consulted.
    next_deadline_check: u64,
    /// Test-only armed fault: panic once `steps` reaches this value.
    fault_step: Option<u64>,
    /// Conflict clauses learned and retained in the current scope stack.
    learned: u64,
    true_var: u32,
}

/// How many search steps pass between wall-clock deadline checks; keeps
/// `Instant::now()` off the hot path.
const DEADLINE_STRIDE: u64 = 256;

impl Engine {
    fn new(mode: SolverMode) -> Engine {
        let mut e = Engine {
            mode,
            kinds: Vec::new(),
            values: Vec::new(),
            atom_ids: HashMap::new(),
            atom_log: Vec::new(),
            intern: HashMap::new(),
            intern_log: Vec::new(),
            clauses: Vec::new(),
            occurs: Vec::new(),
            watches: Vec::new(),
            units: Vec::new(),
            fresh_units: Vec::new(),
            empty_clauses: 0,
            pbs: Vec::new(),
            pb_occurs: Vec::new(),
            trail: Vec::new(),
            trail_pos: Vec::new(),
            queue: std::collections::VecDeque::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            dl: DiffLogic::new(),
            steps: 0,
            decisions: 0,
            conflicts: 0,
            limit: 5_000_000,
            deadline: None,
            next_deadline_check: 0,
            fault_step: None,
            learned: 0,
            true_var: 0,
        };
        e.true_var = e.fresh_var(VarKind::Free);
        e.add_clause(vec![Lit::pos(e.true_var)]);
        e
    }

    fn fresh_var(&mut self, kind: VarKind) -> u32 {
        let v = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.values.push(None);
        self.occurs.push(Vec::new());
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.pb_occurs.push(Vec::new());
        self.trail_pos.push(u32::MAX);
        self.activity.push(0.0);
        v
    }

    fn atom_var(&mut self, atom: &Atom) -> u32 {
        if let Some(&v) = self.atom_ids.get(atom) {
            return v;
        }
        let kind = match atom {
            Atom::Bool(_) => VarKind::Free,
            Atom::DiffLe { x, y, c } => VarKind::Diff {
                x: x.0,
                y: y.0,
                c: *c,
            },
        };
        let v = self.fresh_var(kind);
        self.atom_ids.insert(*atom, v);
        self.atom_log.push(*atom);
        v
    }

    fn assert_term(&mut self, t: &Term) {
        // Register any variable the formula mentions so the model covers it.
        let mut atoms = Vec::new();
        t.collect_atoms(&mut atoms);
        for a in atoms {
            self.atom_var(&a);
        }
        let lit = self.encode(t);
        self.add_clause(vec![lit]);
    }

    fn add_clause(&mut self, lits: Vec<Lit>) {
        let idx = self.clauses.len() as u32;
        match self.mode {
            SolverMode::Rescan => {
                for l in &lits {
                    self.occurs[l.var() as usize].push(idx);
                }
            }
            SolverMode::Watched => {
                if lits.len() >= 2 {
                    self.watches[lits[0].code()].push(idx);
                    self.watches[lits[1].code()].push(idx);
                }
            }
        }
        match lits.len() {
            0 => self.empty_clauses += 1,
            1 => self.units.push(lits[0]),
            _ => {}
        }
        self.clauses.push(lits);
    }

    /// Records a conflict clause: bumps the involved variables, orders the
    /// two deepest-assigned literals into the watch slots (so the watched
    /// invariant survives the chronological backtrack that follows), and
    /// adds the clause permanently for the rest of the scope.
    fn learn_clause(&mut self, mut lits: Vec<Lit>) {
        self.learned += 1;
        for &lit in &lits {
            self.bump(lit.var());
        }
        if self.mode == SolverMode::Watched && lits.len() >= 2 {
            for slot in 0..2 {
                let mut best = slot;
                for k in (slot + 1)..lits.len() {
                    if self.watch_rank(lits[k]) > self.watch_rank(lits[best]) {
                        best = k;
                    }
                }
                lits.swap(slot, best);
            }
        }
        if lits.len() == 1 {
            self.fresh_units.push(lits[0]);
        }
        self.add_clause(lits);
    }

    /// Watch preference for a learned-clause literal: unassigned beats
    /// assigned, deeper trail positions beat shallower ones. Backtracking
    /// pops the trail from the top, so the two top-ranked literals are
    /// the last to stay falsified — exactly the watched invariant.
    fn watch_rank(&self, l: Lit) -> u64 {
        match self.trail_pos[l.var() as usize] {
            u32::MAX => u64::MAX,
            p => p as u64,
        }
    }

    fn bump(&mut self, var: u32) {
        if self.mode != SolverMode::Watched {
            return;
        }
        self.activity[var as usize] += self.var_inc;
        if self.activity[var as usize] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
    }

    fn decay(&mut self) {
        if self.mode != SolverMode::Watched {
            return;
        }
        self.var_inc /= ACTIVITY_DECAY;
    }

    // -------------------------------------------------------- CNF encoding

    fn encode(&mut self, t: &Term) -> Lit {
        match t {
            Term::True => Lit::pos(self.true_var),
            Term::False => Lit::pos(self.true_var).neg(),
            Term::Atom(a) => Lit::pos(self.atom_var(a)),
            Term::Not(inner) => self.encode(inner).neg(),
            Term::And(_) | Term::Or(_) | Term::Linear { .. } => {
                if let Some(&l) = self.intern.get(t) {
                    return l;
                }
                let l = match t {
                    Term::And(ts) => {
                        let lits: Vec<Lit> = ts.iter().map(|t| self.encode(t)).collect();
                        let v = Lit::pos(self.fresh_var(VarKind::Free));
                        // v -> each lit
                        for &l in &lits {
                            self.add_clause(vec![v.neg(), l]);
                        }
                        // all lits -> v
                        let mut clause: Vec<Lit> = lits.iter().map(|l| l.neg()).collect();
                        clause.push(v);
                        self.add_clause(clause);
                        v
                    }
                    Term::Or(ts) => {
                        let lits: Vec<Lit> = ts.iter().map(|t| self.encode(t)).collect();
                        let v = Lit::pos(self.fresh_var(VarKind::Free));
                        // v -> (l1 | ... | ln)
                        let mut clause = vec![v.neg()];
                        clause.extend(lits.iter().copied());
                        self.add_clause(clause);
                        // each lit -> v
                        for &l in &lits {
                            self.add_clause(vec![l.neg(), v]);
                        }
                        v
                    }
                    Term::Linear { terms, cmp, k } => self.encode_linear(terms, *cmp, *k),
                    _ => unreachable!("only composite terms are interned"),
                };
                self.intern.insert(t.clone(), l);
                self.intern_log.push(t.clone());
                l
            }
        }
    }

    /// Reifies `Σ cᵢ·aᵢ cmp k` into an activation literal.
    fn encode_linear(&mut self, terms: &[(i64, Atom)], cmp: Cmp, k: i64) -> Lit {
        match cmp {
            Cmp::Le => self.encode_le(terms, k),
            Cmp::Lt => self.encode_le(terms, k - 1),
            Cmp::Ge => {
                let negated: Vec<(i64, Atom)> = terms.iter().map(|&(c, a)| (-c, a)).collect();
                self.encode_le(&negated, -k)
            }
            Cmp::Gt => {
                let negated: Vec<(i64, Atom)> = terms.iter().map(|&(c, a)| (-c, a)).collect();
                self.encode_le(&negated, -k - 1)
            }
            Cmp::Eq => {
                let le = self.encode_le(terms, k);
                let negated: Vec<(i64, Atom)> = terms.iter().map(|&(c, a)| (-c, a)).collect();
                let ge = self.encode_le(&negated, -k);
                // v <-> le & ge
                let v = Lit::pos(self.fresh_var(VarKind::Free));
                self.add_clause(vec![v.neg(), le]);
                self.add_clause(vec![v.neg(), ge]);
                self.add_clause(vec![le.neg(), ge.neg(), v]);
                v
            }
        }
    }

    /// Core reified `Σ cᵢ·aᵢ <= k` with arbitrary-sign coefficients.
    /// Normalized to positive coefficients over possibly negated literals:
    /// `-c·a == c·(¬a) - c`.
    fn encode_le(&mut self, terms: &[(i64, Atom)], k: i64) -> Lit {
        let mut norm: Vec<(i64, Lit)> = Vec::with_capacity(terms.len());
        for &(c, ref a) in terms {
            let v = self.atom_var(a);
            if c > 0 {
                norm.push((c, Lit::pos(v)));
            } else if c < 0 {
                // -|c|·a = |c|·(¬a) - |c|, so the bound k gains +|c|.
                norm.push((-c, Lit::pos(v).neg()));
            }
        }
        let shift: i64 = terms
            .iter()
            .filter(|(c, _)| *c < 0)
            .map(|(c, _)| c.abs())
            .sum();
        let k = k + shift;

        let act = Lit::pos(self.fresh_var(VarKind::Free));
        let idx = self.pbs.len() as u32;
        for (_, l) in &norm {
            self.pb_occurs[l.var() as usize].push(idx);
        }
        self.pb_occurs[act.var() as usize].push(idx);
        // Ground propagations (the only ones possible with nothing
        // assigned): record them as units so the watched engine need not
        // rescan every PB at each solve.
        let total: i64 = norm.iter().map(|(c, _)| *c).sum();
        if total <= k {
            self.units.push(act);
        } else if k < 0 {
            self.units.push(act.neg());
        }
        self.pbs.push(PbConstraint {
            act,
            terms: norm,
            k,
        });
        act
    }

    // ------------------------------------------------------------- search

    fn value_of(&self, l: Lit) -> Option<bool> {
        self.values[l.var() as usize].map(|v| v != l.is_neg())
    }

    fn enqueue(&mut self, l: Lit) {
        self.queue.push_back(l);
    }

    /// Assigns `l`; returns false on an immediate theory conflict.
    fn assign(&mut self, l: Lit, decision: bool) -> bool {
        let var = l.var();
        let value = l.target();
        debug_assert!(self.values[var as usize].is_none());
        let dl_mark = self.dl.active_len();
        self.values[var as usize] = Some(value);
        self.trail_pos[var as usize] = self.trail.len() as u32;
        self.trail.push(TrailEntry {
            var,
            value,
            decision,
            flipped: false,
            dl_mark,
        });

        if let VarKind::Diff { x, y, c } = self.kinds[var as usize] {
            let result = if value {
                self.dl.assert(x as usize, y as usize, c, var)
            } else {
                // ¬(x - y <= c)  ⇔  y - x <= -c - 1
                self.dl.assert(y as usize, x as usize, -c - 1, var)
            };
            if let Err(cycle) = result {
                // Learn the cycle clause: at least one involved atom must flip.
                let clause: Vec<Lit> = cycle
                    .iter()
                    .map(|&tag| {
                        let val = self.values[tag as usize].expect("cycle atoms are assigned");
                        if val {
                            Lit::pos(tag).neg()
                        } else {
                            Lit::pos(tag)
                        }
                    })
                    .collect();
                self.learn_clause(clause);
                return false;
            }
        }
        true
    }

    /// Undoes trail entries above `len`.
    fn pop_to(&mut self, len: usize) {
        while self.trail.len() > len {
            let e = self.trail.pop().expect("len checked");
            self.values[e.var as usize] = None;
            self.trail_pos[e.var as usize] = u32::MAX;
            self.dl.retract_to(e.dl_mark);
        }
        self.queue.clear();
    }

    /// Fully retracts the trail after a solve, restoring the engine to
    /// its quiescent between-queries state.
    fn reset_trail(&mut self) {
        self.pop_to(0);
    }

    /// Propagates until fixpoint. Returns false on conflict.
    fn propagate(&mut self) -> bool {
        loop {
            let Some(l) = self.queue.pop_front() else {
                return true;
            };
            self.steps += 1;
            match self.value_of(l) {
                Some(true) => continue,
                Some(false) => {
                    self.bump(l.var());
                    return false;
                }
                None => {
                    if !self.assign(l, false) {
                        return false;
                    }
                }
            }
            if !self.post_assign(l) {
                return false;
            }
        }
    }

    /// Mode dispatch for the work following an assignment of `l`.
    fn post_assign(&mut self, l: Lit) -> bool {
        match self.mode {
            SolverMode::Rescan => self.process_var(l.var()),
            SolverMode::Watched => self.on_assigned_watched(l) && self.process_pbs(l.var()),
        }
    }

    /// Re-evaluates every clause and PB constraint mentioning `var` after it
    /// was assigned (Rescan engine). Returns false on conflict.
    ///
    /// Iterates by index rather than cloning the occurrence lists: new
    /// entries are appended only by conflict learning, which makes the
    /// enclosing check return false before the next iteration, so the
    /// iteration never observes a stale snapshot.
    fn process_var(&mut self, var: u32) -> bool {
        let mut i = 0;
        while i < self.occurs[var as usize].len() {
            let ci = self.occurs[var as usize][i] as usize;
            if !self.check_clause(ci) {
                return false;
            }
            i += 1;
        }
        self.process_pbs(var)
    }

    /// Re-evaluates every PB constraint mentioning `var` (both engines).
    fn process_pbs(&mut self, var: u32) -> bool {
        let mut i = 0;
        while i < self.pb_occurs[var as usize].len() {
            let pi = self.pb_occurs[var as usize][i] as usize;
            if !self.check_pb(pi) {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Visits every clause watching the falsification of `p`'s complement
    /// (Watched engine): moves watches to non-false literals, propagates
    /// units, detects conflicts. Returns false on conflict.
    fn on_assigned_watched(&mut self, p: Lit) -> bool {
        let false_lit = p.neg();
        let code = false_lit.code();
        let mut i = 0;
        'clauses: while i < self.watches[code].len() {
            let ci = self.watches[code][i] as usize;
            // Normalize: the falsified watched literal sits in slot 1.
            if self.clauses[ci][0] == false_lit {
                self.clauses[ci].swap(0, 1);
            }
            let first = self.clauses[ci][0];
            if self.value_of(first) == Some(true) {
                i += 1;
                continue;
            }
            // Find a replacement watch among the tail literals.
            for k in 2..self.clauses[ci].len() {
                let cand = self.clauses[ci][k];
                if self.value_of(cand) != Some(false) {
                    self.clauses[ci].swap(1, k);
                    self.watches[cand.code()].push(ci as u32);
                    self.watches[code].swap_remove(i);
                    continue 'clauses;
                }
            }
            // No replacement: the clause is unit or conflicting.
            if self.value_of(first) == Some(false) {
                for k in 0..self.clauses[ci].len() {
                    let v = self.clauses[ci][k].var();
                    self.bump(v);
                }
                return false;
            }
            self.enqueue(first);
            i += 1;
        }
        true
    }

    /// Evaluates clause `ci`: detects conflict or unit-propagates
    /// (Rescan engine).
    fn check_clause(&mut self, ci: usize) -> bool {
        let mut unassigned: Option<Lit> = None;
        let mut n_unassigned = 0;
        for &l in &self.clauses[ci] {
            match self.value_of(l) {
                Some(true) => return true,
                Some(false) => {}
                None => {
                    n_unassigned += 1;
                    unassigned = Some(l);
                }
            }
        }
        match n_unassigned {
            0 => false,
            1 => {
                self.enqueue(unassigned.expect("counted one"));
                true
            }
            _ => true,
        }
    }

    /// Evaluates PB constraint `pi`: bounds checking plus propagation.
    fn check_pb(&mut self, pi: usize) -> bool {
        let (act, k) = (self.pbs[pi].act, self.pbs[pi].k);
        let mut min = 0i64;
        let mut max = 0i64;
        for &(c, l) in &self.pbs[pi].terms {
            match self.value_of(l) {
                Some(true) => {
                    min += c;
                    max += c;
                }
                Some(false) => {}
                None => max += c,
            }
        }
        match self.value_of(act) {
            Some(true) => {
                // Σ <= k must hold.
                if min > k {
                    return self.pb_conflict(pi, true);
                }
                if max > k {
                    // Force false any literal whose coefficient would overflow.
                    let pending: Vec<Lit> = self.pbs[pi]
                        .terms
                        .iter()
                        .filter(|&&(c, l)| self.value_of(l).is_none() && min + c > k)
                        .map(|&(_, l)| l.neg())
                        .collect();
                    for l in pending {
                        self.enqueue(l);
                    }
                }
                true
            }
            Some(false) => {
                // Σ >= k + 1 must hold.
                if max < k + 1 {
                    return self.pb_conflict(pi, false);
                }
                if min < k + 1 {
                    let pending: Vec<Lit> = self.pbs[pi]
                        .terms
                        .iter()
                        .filter(|&&(c, l)| self.value_of(l).is_none() && max - c < k + 1)
                        .map(|&(_, l)| l)
                        .collect();
                    for l in pending {
                        self.enqueue(l);
                    }
                }
                true
            }
            None => {
                if max <= k {
                    self.enqueue(act);
                } else if min > k {
                    self.enqueue(act.neg());
                }
                true
            }
        }
    }

    /// Records a learned clause for a violated PB constraint and reports
    /// conflict. `act_true` says which side of the reification was violated.
    fn pb_conflict(&mut self, pi: usize, act_true: bool) -> bool {
        let mut clause: Vec<Lit> = Vec::new();
        let act = self.pbs[pi].act;
        clause.push(if act_true { act.neg() } else { act });
        let lits: Vec<(i64, Lit)> = self.pbs[pi].terms.clone();
        for (_, l) in lits {
            match self.value_of(l) {
                // For the <= side, true literals push the sum up; for the >=
                // side, false literals pull the max down.
                Some(true) if act_true => clause.push(l.neg()),
                Some(false) if !act_true => clause.push(l),
                _ => {}
            }
        }
        self.learn_clause(clause);
        false
    }

    fn search(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.steps = 0;
        self.decisions = 0;
        self.conflicts = 0;
        self.next_deadline_check = 0;
        self.fresh_units.clear();
        debug_assert!(self.trail.is_empty());
        if self.empty_clauses > 0 {
            return SolveResult::Unsat;
        }
        // Initial pass: the Rescan engine scans every constraint (handles
        // unit clauses and ground PB facts); the Watched engine replays
        // the precomputed unit list instead.
        match self.mode {
            SolverMode::Rescan => {
                for ci in 0..self.clauses.len() {
                    if !self.check_clause(ci) {
                        return SolveResult::Unsat;
                    }
                }
                for pi in 0..self.pbs.len() {
                    if !self.check_pb(pi) {
                        return SolveResult::Unsat;
                    }
                }
            }
            SolverMode::Watched => {
                for i in 0..self.units.len() {
                    let u = self.units[i];
                    self.enqueue(u);
                }
            }
        }
        if !self.propagate() {
            self.conflicts += 1;
            return SolveResult::Unsat;
        }
        // Assumptions sit below every decision on the trail, so backtrack
        // can never flip them: a conflict with no flippable decision left
        // is Unsat-under-assumptions.
        for &a in assumptions {
            match self.value_of(a) {
                Some(true) => {}
                Some(false) => return SolveResult::Unsat,
                None => {
                    self.enqueue(a);
                    if !self.propagate() {
                        self.conflicts += 1;
                        return SolveResult::Unsat;
                    }
                }
            }
        }
        loop {
            if let Some(after) = self.fault_step {
                if self.steps >= after {
                    panic!(
                        "injected fault: solver-step exhaustion after {} steps",
                        self.steps
                    );
                }
            }
            if self.steps > self.limit {
                return SolveResult::Unknown;
            }
            if self.deadline_hit() {
                return SolveResult::Unknown;
            }
            if self.propagate() {
                // Pick the next unassigned variable.
                match self.pick_branch() {
                    None => return SolveResult::Sat(self.extract_model()),
                    Some(var) => {
                        self.decisions += 1;
                        let l = Lit::pos(var).neg(); // try false first
                        if (!self.assign(l, true) || !self.post_assign(l)) && !self.recover() {
                            return SolveResult::Unsat;
                        }
                    }
                }
            } else if !self.recover() {
                return SolveResult::Unsat;
            }
        }
    }

    /// Conflict bookkeeping: count, decay activities, backtrack, and
    /// replay any unit conflict clauses the search has learned (trail
    /// pops cleared them from the queue). Returns false when no
    /// flippable decision remains.
    fn recover(&mut self) -> bool {
        self.conflicts += 1;
        self.decay();
        if !self.backtrack() {
            return false;
        }
        if self.mode == SolverMode::Watched {
            for i in 0..self.fresh_units.len() {
                let u = self.fresh_units[i];
                if self.value_of(u) != Some(true) {
                    self.enqueue(u);
                }
            }
        }
        true
    }

    /// The next decision variable: highest activity (ties toward the
    /// lowest index) under the watched engine, first unassigned index
    /// under the rescan engine. Both are deterministic.
    fn pick_branch(&self) -> Option<u32> {
        match self.mode {
            SolverMode::Rescan => self
                .values
                .iter()
                .position(|v| v.is_none())
                .map(|v| v as u32),
            SolverMode::Watched => {
                let mut best: Option<u32> = None;
                let mut best_act = f64::NEG_INFINITY;
                for (v, val) in self.values.iter().enumerate() {
                    if val.is_none() && self.activity[v] > best_act {
                        best_act = self.activity[v];
                        best = Some(v as u32);
                    }
                }
                best
            }
        }
    }

    /// Whether the wall-clock deadline has passed (amortized check).
    fn deadline_hit(&mut self) -> bool {
        let Some(d) = self.deadline else { return false };
        if self.steps < self.next_deadline_check {
            return false;
        }
        self.next_deadline_check = self.steps + DEADLINE_STRIDE;
        std::time::Instant::now() >= d
    }

    /// Flips the most recent unflipped decision; false if none remains.
    fn backtrack(&mut self) -> bool {
        loop {
            let Some(pos) = self.trail.iter().rposition(|e| e.decision && !e.flipped) else {
                return false;
            };
            let entry = self.trail[pos];
            self.pop_to(pos);
            let flipped_lit = if entry.value {
                Lit::pos(entry.var).neg()
            } else {
                Lit::pos(entry.var)
            };
            if self.assign(flipped_lit, true) {
                // Mark as flipped so we never flip it back.
                let last = self.trail.len() - 1;
                self.trail[last].flipped = true;
                if self.post_assign(flipped_lit) {
                    return true;
                }
            }
            // Flipping caused an immediate conflict; undo and search for an
            // earlier decision.
            self.conflicts += 1;
            self.decay();
            self.pop_to(pos);
            self.steps += 1;
            if self.steps > self.limit {
                return false;
            }
        }
    }

    /// Discards everything a scope added: clauses (unhooking watches or
    /// occurrence entries), PB constraints, atoms, interned terms, and
    /// variables. The trail is already empty between queries; difference-
    /// logic edges were retracted with it, and any stale potential values
    /// remain feasible for the surviving (smaller) constraint set.
    fn pop_scope(&mut self, m: &ScopeMark) {
        self.reset_trail();
        while self.clauses.len() > m.n_clauses {
            let ci = (self.clauses.len() - 1) as u32;
            let clause = self.clauses.pop().expect("len checked");
            match self.mode {
                SolverMode::Rescan => {
                    // Occurrence lists are clause-index-ascending, so a
                    // popped clause's entries sit at each list's tail.
                    for l in &clause {
                        let occ = &mut self.occurs[l.var() as usize];
                        while occ.last() == Some(&ci) {
                            occ.pop();
                        }
                    }
                }
                SolverMode::Watched => {
                    if clause.len() >= 2 {
                        for &w in &clause[0..2] {
                            let ws = &mut self.watches[w.code()];
                            if let Some(p) = ws.iter().position(|&c| c == ci) {
                                ws.swap_remove(p);
                            }
                        }
                    }
                }
            }
        }
        self.units.truncate(m.n_units);
        self.empty_clauses = m.n_empty;
        while self.pbs.len() > m.n_pbs {
            let pi = (self.pbs.len() - 1) as u32;
            let pb = self.pbs.pop().expect("len checked");
            for (_, l) in &pb.terms {
                let po = &mut self.pb_occurs[l.var() as usize];
                while po.last() == Some(&pi) {
                    po.pop();
                }
            }
            let po = &mut self.pb_occurs[pb.act.var() as usize];
            while po.last() == Some(&pi) {
                po.pop();
            }
        }
        for a in self.atom_log.split_off(m.n_atoms) {
            self.atom_ids.remove(&a);
        }
        for t in self.intern_log.split_off(m.n_intern) {
            self.intern.remove(&t);
        }
        self.kinds.truncate(m.n_vars);
        self.values.truncate(m.n_vars);
        self.trail_pos.truncate(m.n_vars);
        self.activity.truncate(m.n_vars);
        self.occurs.truncate(m.n_vars);
        self.watches.truncate(2 * m.n_vars);
        self.pb_occurs.truncate(m.n_vars);
        self.learned = m.learned;
    }

    fn extract_model(&self) -> Model {
        let mut model = Model::default();
        for (atom, &var) in &self.atom_ids {
            if let Atom::Bool(b) = atom {
                model
                    .bools
                    .insert(*b, self.values[var as usize].unwrap_or(false));
            }
        }
        // Integer values come from the difference-logic potential.
        let mut int_vars: Vec<u32> = Vec::new();
        for atom in self.atom_ids.keys() {
            if let Atom::DiffLe { x, y, .. } = atom {
                int_vars.push(x.0);
                int_vars.push(y.0);
            }
        }
        int_vars.sort_unstable();
        int_vars.dedup();
        for v in int_vars {
            model.ints.insert(IntVar(v), self.dl.value(v as usize));
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Atom, Term};

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        s.assert(Term::True);
        assert!(s.solve().is_sat());

        let mut s = Solver::new();
        s.assert(Term::False);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn boolean_contradiction() {
        let mut s = Solver::new();
        let a = s.fresh_bool();
        s.assert(Term::var(a));
        s.assert(Term::not(Term::var(a)));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn disjunction_finds_witness() {
        let mut s = Solver::new();
        let a = s.fresh_bool();
        let b = s.fresh_bool();
        s.assert(Term::or([Term::var(a), Term::var(b)]));
        s.assert(Term::not(Term::var(a)));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(a), Some(false));
        assert_eq!(m.bool_value(b), Some(true));
    }

    #[test]
    fn order_cycle_is_unsat() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..4).map(|_| s.fresh_int()).collect();
        for w in vars.windows(2) {
            s.assert(Term::lt(w[0], w[1]));
        }
        s.assert(Term::lt(vars[3], vars[0]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn order_chain_model_is_ordered() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..6).map(|_| s.fresh_int()).collect();
        for w in vars.windows(2) {
            s.assert(Term::lt(w[0], w[1]));
        }
        let m = s.solve().model().unwrap();
        for w in vars.windows(2) {
            assert!(m.int_value(w[0]).unwrap() < m.int_value(w[1]).unwrap());
        }
    }

    #[test]
    fn conditional_order_via_bool() {
        // p -> (a < b), ¬p -> (b < a), and a < b forced: p must be true.
        let mut s = Solver::new();
        let p = s.fresh_bool();
        let a = s.fresh_int();
        let b = s.fresh_int();
        s.assert(Term::implies(Term::var(p), Term::lt(a, b)));
        s.assert(Term::implies(Term::not(Term::var(p)), Term::lt(b, a)));
        s.assert(Term::lt(a, b));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(p), Some(true));
    }

    #[test]
    fn exactly_one_picks_one() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..5).map(|_| s.fresh_bool()).collect();
        s.assert(Term::exactly_one(vars.iter().map(|&v| Atom::Bool(v))));
        let m = s.solve().model().unwrap();
        let count = vars
            .iter()
            .filter(|&&v| m.bool_value(v) == Some(true))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn exactly_one_conflicts_with_two_forced() {
        let mut s = Solver::new();
        let a = s.fresh_bool();
        let b = s.fresh_bool();
        s.assert(Term::exactly_one([Atom::Bool(a), Atom::Bool(b)]));
        s.assert(Term::var(a));
        s.assert(Term::var(b));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn linear_ge_counts() {
        // At least 2 of 3 must hold, and one is forced false.
        let mut s = Solver::new();
        let vars: Vec<_> = (0..3).map(|_| s.fresh_bool()).collect();
        s.assert(Term::Linear {
            terms: vars.iter().map(|&v| (1, Atom::Bool(v))).collect(),
            cmp: Cmp::Ge,
            k: 2,
        });
        s.assert(Term::not(Term::var(vars[0])));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(vars[1]), Some(true));
        assert_eq!(m.bool_value(vars[2]), Some(true));
    }

    #[test]
    fn negative_coefficients_subtract() {
        // a - b <= 0 with a forced true requires b true.
        let mut s = Solver::new();
        let a = s.fresh_bool();
        let b = s.fresh_bool();
        s.assert(Term::Linear {
            terms: vec![(1, Atom::Bool(a)), (-1, Atom::Bool(b))],
            cmp: Cmp::Le,
            k: 0,
        });
        s.assert(Term::var(a));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(b), Some(true));
    }

    #[test]
    fn channel_buffer_style_encoding() {
        // Mimics GCatch's unbuffered-send blocking constraint: a send with
        // BS = 0 cannot proceed via the buffer, so the matching disjunct
        // must hold, forcing P and the order equality.
        let mut s = Solver::new();
        let p = s.fresh_bool(); // P(send, recv)
        let o_send = s.fresh_int();
        let o_recv = s.fresh_int();
        let o_before = s.fresh_int();
        // "buffer has room" is CB < 0 which is false for an empty sum:
        let buffer_ok = Term::Linear {
            terms: vec![],
            cmp: Cmp::Lt,
            k: 0,
        };
        let matched = Term::and([Term::var(p), Term::eq_int(o_send, o_recv)]);
        s.assert(Term::or([buffer_ok, matched]));
        s.assert(Term::lt(o_before, o_send));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(p), Some(true));
        assert_eq!(m.int_value(o_send), m.int_value(o_recv));
        assert!(m.int_value(o_before).unwrap() < m.int_value(o_send).unwrap());
    }

    #[test]
    fn eq_linear_reification() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..4).map(|_| s.fresh_bool()).collect();
        // Exactly 2 of 4.
        s.assert(Term::Linear {
            terms: vars.iter().map(|&v| (1, Atom::Bool(v))).collect(),
            cmp: Cmp::Eq,
            k: 2,
        });
        let m = s.solve().model().unwrap();
        let count = vars
            .iter()
            .filter(|&&v| m.bool_value(v) == Some(true))
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn unknown_on_tiny_budget() {
        let mut s = Solver::new();
        s.set_step_limit(1);
        let vars: Vec<_> = (0..30).map(|_| s.fresh_bool()).collect();
        // A moderately hard pigeonhole-ish instance.
        for chunk in vars.chunks(3) {
            s.assert(Term::exactly_one(chunk.iter().map(|&v| Atom::Bool(v))));
        }
        assert!(matches!(
            s.solve(),
            SolveResult::Unknown | SolveResult::Sat(_)
        ));
    }

    #[test]
    fn unknown_on_expired_deadline() {
        let mut s = Solver::new();
        s.set_deadline(Some(std::time::Instant::now()));
        let vars: Vec<_> = (0..30).map(|_| s.fresh_bool()).collect();
        for chunk in vars.chunks(3) {
            s.assert(Term::exactly_one(chunk.iter().map(|&v| Atom::Bool(v))));
        }
        assert!(matches!(s.solve(), SolveResult::Unknown));
        // Clearing the deadline restores a verdict.
        s.set_deadline(None);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn injected_step_fault_panics_with_marker() {
        let mut s = Solver::new();
        s.inject_step_fault(0);
        let vars: Vec<_> = (0..6).map(|_| s.fresh_bool()).collect();
        for chunk in vars.chunks(3) {
            s.assert(Term::exactly_one(chunk.iter().map(|&v| Atom::Bool(v))));
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.solve()))
            .expect_err("armed fault must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|m| m.to_string()))
            .unwrap_or_default();
        assert!(
            msg.starts_with("injected fault:"),
            "unexpected panic: {msg}"
        );
    }

    #[test]
    fn mixed_theory_and_boolean_backtracking() {
        // Force the solver to backtrack across theory assignments:
        // (a<b ∨ b<a) ∧ (b<c) ∧ (c<a ∨ q) — the only consistent choice in the
        // first disjunct with c<a is b<a...a<b... exercise search.
        let mut s = Solver::new();
        let a = s.fresh_int();
        let b = s.fresh_int();
        let c = s.fresh_int();
        let q = s.fresh_bool();
        s.assert(Term::or([Term::lt(a, b), Term::lt(b, a)]));
        s.assert(Term::lt(b, c));
        s.assert(Term::or([Term::lt(c, a), Term::var(q)]));
        s.assert(Term::not(Term::var(q)));
        // c < a forces b < c < a, so first disjunct must pick b < a.
        let m = s.solve().model().unwrap();
        assert!(m.int_value(b).unwrap() < m.int_value(a).unwrap());
    }

    // ----------------------------------------------- incremental interface

    #[test]
    fn push_pop_restores_assertions_and_vars() {
        let mut s = Solver::new();
        let a = s.fresh_bool();
        s.assert(Term::var(a));
        s.push();
        let b = s.fresh_bool();
        s.assert(Term::not(Term::var(a)));
        s.assert(Term::var(b));
        assert_eq!(s.num_assertions(), 3);
        assert!(s.solve().is_unsat());
        s.pop();
        assert_eq!(s.num_assertions(), 1);
        assert!(s.solve().is_sat());
        // The popped fresh_bool slot is reusable.
        let b2 = s.fresh_bool();
        assert_eq!(b, b2);
    }

    #[test]
    fn nested_scopes_pop_in_order() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..3).map(|_| s.fresh_int()).collect();
        s.assert(Term::lt(vars[0], vars[1]));
        s.push();
        s.assert(Term::lt(vars[1], vars[2]));
        s.push();
        s.assert(Term::lt(vars[2], vars[0]));
        assert_eq!(s.scope_depth(), 2);
        assert!(s.solve().is_unsat());
        s.pop();
        assert!(s.solve().is_sat());
        s.pop();
        assert_eq!(s.scope_depth(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = Solver::new();
        let a = s.fresh_bool();
        let b = s.fresh_bool();
        s.assert(Term::or([Term::var(a), Term::var(b)]));
        let m = s
            .solve_under(&[Term::not(Term::var(a))])
            .model()
            .expect("sat under ¬a");
        assert_eq!(m.bool_value(a), Some(false));
        assert_eq!(m.bool_value(b), Some(true));
        assert!(s
            .solve_under(&[Term::not(Term::var(a)), Term::not(Term::var(b))])
            .is_unsat());
        // The solver itself is still satisfiable with no assumptions.
        assert!(s.solve().is_sat());
        // ...and a can be true again.
        assert!(s.solve_under(&[Term::var(a)]).is_sat());
    }

    #[test]
    fn assumptions_over_theory_atoms() {
        let mut s = Solver::new();
        let a = s.fresh_int();
        let b = s.fresh_int();
        s.assert(Term::or([Term::lt(a, b), Term::lt(b, a)]));
        assert!(s.solve_under(&[Term::lt(a, b)]).is_sat());
        assert!(s.solve_under(&[Term::lt(b, a)]).is_sat());
        assert!(s.solve_under(&[Term::lt(a, b), Term::lt(b, a)]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn learned_clauses_are_retained_within_scope() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..4).map(|_| s.fresh_int()).collect();
        for w in vars.windows(2) {
            s.assert(Term::lt(w[0], w[1]));
        }
        s.push();
        s.assert(Term::lt(vars[3], vars[0]));
        assert!(s.solve().is_unsat());
        let learned_after_first = s.num_learned();
        assert!(learned_after_first > 0, "cycle conflicts must learn");
        // The second identical query reuses the retained cycle clauses.
        assert!(s.solve().is_unsat());
        s.pop();
        assert_eq!(s.num_learned(), 0, "pop discards scope-learned clauses");
        assert!(s.solve().is_sat());
    }

    #[test]
    fn watched_and_rescan_agree() {
        // A differential harness over mixed boolean/theory/PB instances:
        // both engines must produce the same verdict.
        let build = |s: &mut Solver, variant: usize| {
            let ints: Vec<_> = (0..4).map(|_| s.fresh_int()).collect();
            let bools: Vec<_> = (0..4).map(|_| s.fresh_bool()).collect();
            for w in ints.windows(2) {
                s.assert(Term::lt(w[0], w[1]));
            }
            s.assert(Term::exactly_one(bools.iter().map(|&v| Atom::Bool(v))));
            s.assert(Term::implies(
                Term::var(bools[0]),
                Term::lt(ints[3], ints[0]),
            ));
            if variant.is_multiple_of(2) {
                s.assert(Term::var(bools[0]));
            }
            if variant.is_multiple_of(3) {
                s.assert(Term::Linear {
                    terms: bools.iter().map(|&v| (1, Atom::Bool(v))).collect(),
                    cmp: Cmp::Ge,
                    k: 2,
                });
            }
        };
        for variant in 0..6 {
            let mut w = Solver::with_mode(SolverMode::Watched);
            build(&mut w, variant);
            let mut r = Solver::with_mode(SolverMode::Rescan);
            build(&mut r, variant);
            let (rw, rr) = (w.solve(), r.solve());
            assert_eq!(
                rw.is_sat(),
                rr.is_sat(),
                "engines disagree on variant {variant}"
            );
            assert_eq!(
                rw.is_unsat(),
                rr.is_unsat(),
                "engines disagree on variant {variant}"
            );
        }
    }

    #[test]
    fn interner_shares_repeated_subterms() {
        let mut s = Solver::new();
        let a = s.fresh_int();
        let b = s.fresh_int();
        let p = s.fresh_bool();
        s.assert(Term::implies(Term::var(p), Term::eq_int(a, b)));
        let clauses_once = s.num_clauses();
        // Re-asserting a structurally identical implication re-uses the
        // interned encoding: only the top-level unit clause is new.
        s.assert(Term::implies(Term::var(p), Term::eq_int(a, b)));
        assert_eq!(s.num_clauses(), clauses_once + 1);
    }

    #[test]
    fn incremental_query_sequence_matches_fresh() {
        // Verdict equivalence between one incremental solver answering a
        // query sequence under assumptions and fresh solvers per query.
        let assumptions: Vec<Vec<usize>> = vec![vec![0], vec![1], vec![0, 1], vec![2], vec![]];
        let mut inc = Solver::new();
        let ints: Vec<_> = (0..3).map(|_| inc.fresh_int()).collect();
        let flags: Vec<_> = (0..3).map(|_| inc.fresh_bool()).collect();
        let encode = |s: &mut Solver, ints: &[IntVar], flags: &[BoolVar]| {
            s.assert(Term::implies(
                Term::var(flags[0]),
                Term::lt(ints[0], ints[1]),
            ));
            s.assert(Term::implies(
                Term::var(flags[1]),
                Term::lt(ints[1], ints[0]),
            ));
            s.assert(Term::implies(
                Term::var(flags[2]),
                Term::lt(ints[2], ints[2]),
            ));
        };
        encode(&mut inc, &ints, &flags);
        for set in &assumptions {
            let assume: Vec<Term> = set.iter().map(|&i| Term::var(flags[i])).collect();
            let inc_result = inc.solve_under(&assume);
            let mut fresh = Solver::new();
            let fints: Vec<_> = (0..3).map(|_| fresh.fresh_int()).collect();
            let fflags: Vec<_> = (0..3).map(|_| fresh.fresh_bool()).collect();
            encode(&mut fresh, &fints, &fflags);
            let fresh_assume: Vec<Term> = set.iter().map(|&i| Term::var(fflags[i])).collect();
            let fresh_result = fresh.solve_under(&fresh_assume);
            assert_eq!(
                inc_result.is_sat(),
                fresh_result.is_sat(),
                "incremental vs fresh disagree under {set:?}"
            );
        }
    }
}
