//! The DPLL(T) engine.
//!
//! The engine combines three propagation mechanisms over one assignment
//! trail:
//!
//! 1. **Clauses** from the Tseitin encoding of asserted [`Term`]s;
//! 2. **Pseudo-boolean constraints** (reified `Σ cᵢ·litᵢ <= k`), used for
//!    GCatch's channel-buffer counters and exactly-one matching;
//! 3. **Difference logic** for order atoms `x - y <= c`, checked eagerly by
//!    the incremental [`DiffLogic`] theory whenever an order atom is
//!    assigned.
//!
//! Search is DPLL with chronological backtracking plus conflict clauses
//! harvested from theory cycles and violated PB constraints.

use crate::dl::DiffLogic;
use crate::term::{Atom, BoolVar, Cmp, IntVar, Term};
use std::collections::HashMap;

/// A satisfying assignment.
#[derive(Debug, Clone, Default)]
pub struct Model {
    bools: HashMap<BoolVar, bool>,
    ints: HashMap<IntVar, i64>,
}

impl Model {
    /// Value of a boolean variable, if it was mentioned in the problem.
    pub fn bool_value(&self, v: BoolVar) -> Option<bool> {
        self.bools.get(&v).copied()
    }

    /// Value of an integer variable, if it was mentioned in the problem.
    /// Unconstrained variables default to 0.
    pub fn int_value(&self, v: IntVar) -> Option<i64> {
        self.ints.get(&v).copied()
    }

    /// Iterates over all integer variable values.
    pub fn ints(&self) -> impl Iterator<Item = (IntVar, i64)> + '_ {
        self.ints.iter().map(|(v, x)| (*v, *x))
    }
}

/// Search-effort counters for one [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Propagation/decision steps consumed (the budgeted quantity).
    pub steps: u64,
    /// Decision points: unassigned variables picked during search.
    pub decisions: u64,
    /// Conflicts: clause/PB violations and theory cycles hit.
    pub conflicts: u64,
    /// Wall-clock time of the call (encode + search). Unlike the effort
    /// counters this is *not* deterministic; consumers exporting
    /// reproducible output must use `steps`/`decisions`/`conflicts`.
    pub elapsed: std::time::Duration,
}

/// The outcome of [`Solver::solve`].
#[derive(Debug, Clone)]
pub enum SolveResult {
    /// A model satisfying all asserted terms.
    Sat(Model),
    /// No model exists.
    Unsat,
    /// The step limit or wall-clock deadline was exhausted before a
    /// verdict.
    Unknown,
}

impl SolveResult {
    /// `true` if the result is [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// `true` if the result is [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// Extracts the model, if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A constraint-solving context: create variables, assert terms, solve.
///
/// # Examples
///
/// ```
/// use minismt::{Solver, Term};
///
/// let mut s = Solver::new();
/// let a = s.fresh_int();
/// let b = s.fresh_int();
/// let c = s.fresh_int();
/// s.assert(Term::lt(a, b));
/// s.assert(Term::lt(b, c));
/// let model = s.solve().model().expect("a < b < c is satisfiable");
/// assert!(model.int_value(a) < model.int_value(b));
///
/// let mut s2 = Solver::new();
/// let x = s2.fresh_int();
/// let y = s2.fresh_int();
/// s2.assert(Term::lt(x, y));
/// s2.assert(Term::lt(y, x));
/// assert!(s2.solve().is_unsat());
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    n_bool: u32,
    n_int: u32,
    asserted: Vec<Term>,
    step_limit: u64,
    deadline: Option<std::time::Instant>,
    fault_step: Option<u64>,
    stats: SolverStats,
}

impl Solver {
    /// Creates an empty solver with the default step limit and no
    /// deadline.
    pub fn new() -> Self {
        Solver {
            n_bool: 0,
            n_int: 0,
            asserted: Vec::new(),
            step_limit: 5_000_000,
            deadline: None,
            fault_step: None,
            stats: SolverStats::default(),
        }
    }

    /// Creates a fresh boolean variable.
    pub fn fresh_bool(&mut self) -> BoolVar {
        let v = BoolVar(self.n_bool);
        self.n_bool += 1;
        v
    }

    /// Creates a fresh integer variable.
    pub fn fresh_int(&mut self) -> IntVar {
        let v = IntVar(self.n_int);
        self.n_int += 1;
        v
    }

    /// Sets the search budget (number of propagation/decision steps).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Sets (or clears) a wall-clock deadline for [`Solver::solve`].
    ///
    /// The search checks the clock cooperatively every few hundred
    /// steps and returns [`SolveResult::Unknown`] once the deadline
    /// passes. Unlike the step limit this makes the *verdict*
    /// timing-dependent, so callers needing reproducible output should
    /// prefer the step limit and treat the deadline as a last-resort
    /// bound.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Arms a test-only fault: the search panics once it has consumed
    /// `after` steps, simulating pathological step exhaustion at the same
    /// site where the real step limit is enforced. The panic message
    /// carries the `injected fault:` marker so supervisors can classify
    /// it as transient. Never armed in production paths; callers opt in
    /// explicitly (see the fault-injection layer in `gcatch`).
    pub fn inject_step_fault(&mut self, after: u64) {
        self.fault_step = Some(after);
    }

    /// Asserts that `t` must hold in any model.
    pub fn assert(&mut self, t: Term) {
        self.asserted.push(t);
    }

    /// Number of asserted top-level terms.
    pub fn num_assertions(&self) -> usize {
        self.asserted.len()
    }

    /// Solves the conjunction of all asserted terms.
    pub fn solve(&mut self) -> SolveResult {
        let start = std::time::Instant::now();
        let mut engine = Engine::new(self.step_limit);
        engine.deadline = self.deadline;
        engine.fault_step = self.fault_step;
        for t in &self.asserted {
            // Register any variable the formula mentions so the model covers it.
            let mut atoms = Vec::new();
            t.collect_atoms(&mut atoms);
            for a in atoms {
                engine.atom_var(&a);
            }
        }
        for t in self.asserted.clone() {
            let lit = engine.encode(&t);
            engine.add_clause(vec![lit]);
        }
        let result = engine.search();
        self.stats = SolverStats {
            steps: engine.steps,
            decisions: engine.decisions,
            conflicts: engine.conflicts,
            elapsed: start.elapsed(),
        };
        result
    }

    /// Effort counters of the most recent [`Solver::solve`] call.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}

// ---------------------------------------------------------------- internals

/// A literal: variable index with polarity in the low bit (`v<<1 | neg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Lit(u32);

impl Lit {
    fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    fn var(self) -> u32 {
        self.0 >> 1
    }

    fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    fn neg(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The value this literal requires its variable to take.
    fn target(self) -> bool {
        !self.is_neg()
    }
}

#[derive(Debug, Clone, Copy)]
enum VarKind {
    /// A free boolean (or Tseitin auxiliary) variable.
    Free,
    /// A difference-logic atom `x - y <= c`.
    Diff { x: u32, y: u32, c: i64 },
}

#[derive(Debug)]
struct PbConstraint {
    /// Activation literal: `act` true ⇔ `Σ cᵢ·litᵢ <= k`.
    act: Lit,
    /// Positive-coefficient terms; a true literal contributes its coefficient.
    terms: Vec<(i64, Lit)>,
    k: i64,
}

#[derive(Debug, Clone, Copy)]
struct TrailEntry {
    var: u32,
    value: bool,
    /// Whether this was a decision (searchable) or an implication.
    decision: bool,
    /// Whether the decision has already been flipped once.
    flipped: bool,
    /// Number of DL edges asserted before this entry.
    dl_mark: usize,
}

struct Engine {
    kinds: Vec<VarKind>,
    values: Vec<Option<bool>>,
    atom_ids: HashMap<Atom, u32>,
    clauses: Vec<Vec<Lit>>,
    /// var -> clause indices containing it.
    occurs: Vec<Vec<u32>>,
    pbs: Vec<PbConstraint>,
    /// var -> PB indices containing it (as term or activation).
    pb_occurs: Vec<Vec<u32>>,
    trail: Vec<TrailEntry>,
    queue: std::collections::VecDeque<Lit>,
    dl: DiffLogic,
    steps: u64,
    decisions: u64,
    conflicts: u64,
    limit: u64,
    /// Optional wall-clock bound, checked every `DEADLINE_STRIDE` steps.
    deadline: Option<std::time::Instant>,
    /// Step count at which the deadline is next consulted.
    next_deadline_check: u64,
    /// Test-only armed fault: panic once `steps` reaches this value.
    fault_step: Option<u64>,
    true_var: u32,
}

/// How many search steps pass between wall-clock deadline checks; keeps
/// `Instant::now()` off the hot path.
const DEADLINE_STRIDE: u64 = 256;

impl Engine {
    fn new(limit: u64) -> Engine {
        let mut e = Engine {
            kinds: Vec::new(),
            values: Vec::new(),
            atom_ids: HashMap::new(),
            clauses: Vec::new(),
            occurs: Vec::new(),
            pbs: Vec::new(),
            pb_occurs: Vec::new(),
            trail: Vec::new(),
            queue: std::collections::VecDeque::new(),
            dl: DiffLogic::new(),
            steps: 0,
            decisions: 0,
            conflicts: 0,
            limit,
            deadline: None,
            next_deadline_check: 0,
            fault_step: None,
            true_var: 0,
        };
        e.true_var = e.fresh_var(VarKind::Free);
        e.add_clause(vec![Lit::pos(e.true_var)]);
        e
    }

    fn fresh_var(&mut self, kind: VarKind) -> u32 {
        let v = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.values.push(None);
        self.occurs.push(Vec::new());
        self.pb_occurs.push(Vec::new());
        v
    }

    fn atom_var(&mut self, atom: &Atom) -> u32 {
        if let Some(&v) = self.atom_ids.get(atom) {
            return v;
        }
        let kind = match atom {
            Atom::Bool(_) => VarKind::Free,
            Atom::DiffLe { x, y, c } => VarKind::Diff {
                x: x.0,
                y: y.0,
                c: *c,
            },
        };
        let v = self.fresh_var(kind);
        self.atom_ids.insert(*atom, v);
        v
    }

    fn add_clause(&mut self, lits: Vec<Lit>) {
        let idx = self.clauses.len() as u32;
        for l in &lits {
            self.occurs[l.var() as usize].push(idx);
        }
        self.clauses.push(lits);
    }

    // -------------------------------------------------------- CNF encoding

    fn encode(&mut self, t: &Term) -> Lit {
        match t {
            Term::True => Lit::pos(self.true_var),
            Term::False => Lit::pos(self.true_var).neg(),
            Term::Atom(a) => Lit::pos(self.atom_var(a)),
            Term::Not(inner) => self.encode(inner).neg(),
            Term::And(ts) => {
                let lits: Vec<Lit> = ts.iter().map(|t| self.encode(t)).collect();
                let v = Lit::pos(self.fresh_var(VarKind::Free));
                // v -> each lit
                for &l in &lits {
                    self.add_clause(vec![v.neg(), l]);
                }
                // all lits -> v
                let mut clause: Vec<Lit> = lits.iter().map(|l| l.neg()).collect();
                clause.push(v);
                self.add_clause(clause);
                v
            }
            Term::Or(ts) => {
                let lits: Vec<Lit> = ts.iter().map(|t| self.encode(t)).collect();
                let v = Lit::pos(self.fresh_var(VarKind::Free));
                // v -> (l1 | ... | ln)
                let mut clause = vec![v.neg()];
                clause.extend(lits.iter().copied());
                self.add_clause(clause);
                // each lit -> v
                for &l in &lits {
                    self.add_clause(vec![l.neg(), v]);
                }
                v
            }
            Term::Linear { terms, cmp, k } => self.encode_linear(terms, *cmp, *k),
        }
    }

    /// Reifies `Σ cᵢ·aᵢ cmp k` into an activation literal.
    fn encode_linear(&mut self, terms: &[(i64, Atom)], cmp: Cmp, k: i64) -> Lit {
        match cmp {
            Cmp::Le => self.encode_le(terms, k),
            Cmp::Lt => self.encode_le(terms, k - 1),
            Cmp::Ge => {
                let negated: Vec<(i64, Atom)> = terms.iter().map(|&(c, a)| (-c, a)).collect();
                self.encode_le(&negated, -k)
            }
            Cmp::Gt => {
                let negated: Vec<(i64, Atom)> = terms.iter().map(|&(c, a)| (-c, a)).collect();
                self.encode_le(&negated, -k - 1)
            }
            Cmp::Eq => {
                let le = self.encode_le(terms, k);
                let negated: Vec<(i64, Atom)> = terms.iter().map(|&(c, a)| (-c, a)).collect();
                let ge = self.encode_le(&negated, -k);
                // v <-> le & ge
                let v = Lit::pos(self.fresh_var(VarKind::Free));
                self.add_clause(vec![v.neg(), le]);
                self.add_clause(vec![v.neg(), ge]);
                self.add_clause(vec![le.neg(), ge.neg(), v]);
                v
            }
        }
    }

    /// Core reified `Σ cᵢ·aᵢ <= k` with arbitrary-sign coefficients.
    /// Normalized to positive coefficients over possibly negated literals:
    /// `-c·a == c·(¬a) - c`.
    fn encode_le(&mut self, terms: &[(i64, Atom)], k: i64) -> Lit {
        let mut norm: Vec<(i64, Lit)> = Vec::with_capacity(terms.len());
        for &(c, ref a) in terms {
            let v = self.atom_var(a);
            if c > 0 {
                norm.push((c, Lit::pos(v)));
            } else if c < 0 {
                // -|c|·a = |c|·(¬a) - |c|, so the bound k gains +|c|.
                norm.push((-c, Lit::pos(v).neg()));
            }
        }
        let shift: i64 = terms
            .iter()
            .filter(|(c, _)| *c < 0)
            .map(|(c, _)| c.abs())
            .sum();
        let k = k + shift;

        let act = Lit::pos(self.fresh_var(VarKind::Free));
        let idx = self.pbs.len() as u32;
        for (_, l) in &norm {
            self.pb_occurs[l.var() as usize].push(idx);
        }
        self.pb_occurs[act.var() as usize].push(idx);
        self.pbs.push(PbConstraint {
            act,
            terms: norm,
            k,
        });
        act
    }

    // ------------------------------------------------------------- search

    fn value_of(&self, l: Lit) -> Option<bool> {
        self.values[l.var() as usize].map(|v| v != l.is_neg())
    }

    fn enqueue(&mut self, l: Lit) {
        self.queue.push_back(l);
    }

    /// Assigns `l`; returns false on an immediate theory conflict.
    fn assign(&mut self, l: Lit, decision: bool) -> bool {
        let var = l.var();
        let value = l.target();
        debug_assert!(self.values[var as usize].is_none());
        let dl_mark = self.dl.active_len();
        self.values[var as usize] = Some(value);
        self.trail.push(TrailEntry {
            var,
            value,
            decision,
            flipped: false,
            dl_mark,
        });

        if let VarKind::Diff { x, y, c } = self.kinds[var as usize] {
            let result = if value {
                self.dl.assert(x as usize, y as usize, c, var)
            } else {
                // ¬(x - y <= c)  ⇔  y - x <= -c - 1
                self.dl.assert(y as usize, x as usize, -c - 1, var)
            };
            if let Err(cycle) = result {
                // Learn the cycle clause: at least one involved atom must flip.
                let clause: Vec<Lit> = cycle
                    .iter()
                    .map(|&tag| {
                        let val = self.values[tag as usize].expect("cycle atoms are assigned");
                        if val {
                            Lit::pos(tag).neg()
                        } else {
                            Lit::pos(tag)
                        }
                    })
                    .collect();
                self.add_clause(clause);
                return false;
            }
        }
        true
    }

    /// Undoes trail entries above `len`.
    fn pop_to(&mut self, len: usize) {
        while self.trail.len() > len {
            let e = self.trail.pop().expect("len checked");
            self.values[e.var as usize] = None;
            self.dl.retract_to(e.dl_mark);
        }
        self.queue.clear();
    }

    /// Propagates until fixpoint. Returns false on conflict.
    fn propagate(&mut self) -> bool {
        loop {
            let Some(l) = self.queue.pop_front() else {
                return true;
            };
            self.steps += 1;
            match self.value_of(l) {
                Some(true) => continue,
                Some(false) => return false,
                None => {
                    if !self.assign(l, false) {
                        return false;
                    }
                }
            }
            if !self.process_var(l.var()) {
                return false;
            }
        }
    }

    /// Re-evaluates every clause and PB constraint mentioning `var` after it
    /// was assigned. Returns false on conflict.
    fn process_var(&mut self, var: u32) -> bool {
        for ci in self.occurs[var as usize].clone() {
            if !self.check_clause(ci as usize) {
                return false;
            }
        }
        for pi in self.pb_occurs[var as usize].clone() {
            if !self.check_pb(pi as usize) {
                return false;
            }
        }
        true
    }

    /// Evaluates clause `ci`: detects conflict or unit-propagates.
    fn check_clause(&mut self, ci: usize) -> bool {
        let mut unassigned: Option<Lit> = None;
        let mut n_unassigned = 0;
        for &l in &self.clauses[ci] {
            match self.value_of(l) {
                Some(true) => return true,
                Some(false) => {}
                None => {
                    n_unassigned += 1;
                    unassigned = Some(l);
                }
            }
        }
        match n_unassigned {
            0 => false,
            1 => {
                self.enqueue(unassigned.expect("counted one"));
                true
            }
            _ => true,
        }
    }

    /// Evaluates PB constraint `pi`: bounds checking plus propagation.
    fn check_pb(&mut self, pi: usize) -> bool {
        let (act, k) = (self.pbs[pi].act, self.pbs[pi].k);
        let mut min = 0i64;
        let mut max = 0i64;
        for &(c, l) in &self.pbs[pi].terms {
            match self.value_of(l) {
                Some(true) => {
                    min += c;
                    max += c;
                }
                Some(false) => {}
                None => max += c,
            }
        }
        match self.value_of(act) {
            Some(true) => {
                // Σ <= k must hold.
                if min > k {
                    return self.pb_conflict(pi, true);
                }
                if max > k {
                    // Force false any literal whose coefficient would overflow.
                    let pending: Vec<Lit> = self.pbs[pi]
                        .terms
                        .iter()
                        .filter(|&&(c, l)| self.value_of(l).is_none() && min + c > k)
                        .map(|&(_, l)| l.neg())
                        .collect();
                    for l in pending {
                        self.enqueue(l);
                    }
                }
                true
            }
            Some(false) => {
                // Σ >= k + 1 must hold.
                if max < k + 1 {
                    return self.pb_conflict(pi, false);
                }
                if min < k + 1 {
                    let pending: Vec<Lit> = self.pbs[pi]
                        .terms
                        .iter()
                        .filter(|&&(c, l)| self.value_of(l).is_none() && max - c < k + 1)
                        .map(|&(_, l)| l)
                        .collect();
                    for l in pending {
                        self.enqueue(l);
                    }
                }
                true
            }
            None => {
                if max <= k {
                    self.enqueue(act);
                } else if min > k {
                    self.enqueue(act.neg());
                }
                true
            }
        }
    }

    /// Records a learned clause for a violated PB constraint and reports
    /// conflict. `act_true` says which side of the reification was violated.
    fn pb_conflict(&mut self, pi: usize, act_true: bool) -> bool {
        let mut clause: Vec<Lit> = Vec::new();
        let act = self.pbs[pi].act;
        clause.push(if act_true { act.neg() } else { act });
        let lits: Vec<(i64, Lit)> = self.pbs[pi].terms.clone();
        for (_, l) in lits {
            match self.value_of(l) {
                // For the <= side, true literals push the sum up; for the >=
                // side, false literals pull the max down.
                Some(true) if act_true => clause.push(l.neg()),
                Some(false) if !act_true => clause.push(l),
                _ => {}
            }
        }
        self.add_clause(clause);
        false
    }

    fn search(&mut self) -> SolveResult {
        // Initial pass over all constraints (handles empty/unit clauses and
        // ground PB facts).
        for ci in 0..self.clauses.len() {
            if !self.check_clause(ci) {
                return SolveResult::Unsat;
            }
        }
        for pi in 0..self.pbs.len() {
            if !self.check_pb(pi) {
                return SolveResult::Unsat;
            }
        }
        loop {
            if let Some(after) = self.fault_step {
                if self.steps >= after {
                    panic!(
                        "injected fault: solver-step exhaustion after {} steps",
                        self.steps
                    );
                }
            }
            if self.steps > self.limit {
                return SolveResult::Unknown;
            }
            if self.deadline_hit() {
                return SolveResult::Unknown;
            }
            if self.propagate() {
                // Pick the next unassigned variable.
                match self.values.iter().position(|v| v.is_none()) {
                    None => return SolveResult::Sat(self.extract_model()),
                    Some(var) => {
                        self.decisions += 1;
                        let l = Lit::pos(var as u32).neg(); // try false first
                        if !self.assign(l, true) || !self.process_var(var as u32) {
                            self.conflicts += 1;
                            if !self.backtrack() {
                                return SolveResult::Unsat;
                            }
                        }
                    }
                }
            } else {
                self.conflicts += 1;
                if !self.backtrack() {
                    return SolveResult::Unsat;
                }
            }
        }
    }

    /// Whether the wall-clock deadline has passed (amortized check).
    fn deadline_hit(&mut self) -> bool {
        let Some(d) = self.deadline else { return false };
        if self.steps < self.next_deadline_check {
            return false;
        }
        self.next_deadline_check = self.steps + DEADLINE_STRIDE;
        std::time::Instant::now() >= d
    }

    /// Flips the most recent unflipped decision; false if none remains.
    fn backtrack(&mut self) -> bool {
        loop {
            let Some(pos) = self.trail.iter().rposition(|e| e.decision && !e.flipped) else {
                return false;
            };
            let entry = self.trail[pos];
            self.pop_to(pos);
            let flipped_lit = if entry.value {
                Lit::pos(entry.var).neg()
            } else {
                Lit::pos(entry.var)
            };
            if self.assign(flipped_lit, true) {
                // Mark as flipped so we never flip it back.
                let last = self.trail.len() - 1;
                self.trail[last].flipped = true;
                if self.process_var(entry.var) {
                    return true;
                }
            }
            // Flipping caused an immediate conflict; undo and search for an
            // earlier decision.
            self.conflicts += 1;
            self.pop_to(pos);
            self.steps += 1;
            if self.steps > self.limit {
                return false;
            }
        }
    }

    fn extract_model(&self) -> Model {
        let mut model = Model::default();
        for (atom, &var) in &self.atom_ids {
            if let Atom::Bool(b) = atom {
                model
                    .bools
                    .insert(*b, self.values[var as usize].unwrap_or(false));
            }
        }
        // Integer values come from the difference-logic potential.
        let mut int_vars: Vec<u32> = Vec::new();
        for atom in self.atom_ids.keys() {
            if let Atom::DiffLe { x, y, .. } = atom {
                int_vars.push(x.0);
                int_vars.push(y.0);
            }
        }
        int_vars.sort_unstable();
        int_vars.dedup();
        for v in int_vars {
            model.ints.insert(IntVar(v), self.dl.value(v as usize));
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Atom, Term};

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        s.assert(Term::True);
        assert!(s.solve().is_sat());

        let mut s = Solver::new();
        s.assert(Term::False);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn boolean_contradiction() {
        let mut s = Solver::new();
        let a = s.fresh_bool();
        s.assert(Term::var(a));
        s.assert(Term::not(Term::var(a)));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn disjunction_finds_witness() {
        let mut s = Solver::new();
        let a = s.fresh_bool();
        let b = s.fresh_bool();
        s.assert(Term::or([Term::var(a), Term::var(b)]));
        s.assert(Term::not(Term::var(a)));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(a), Some(false));
        assert_eq!(m.bool_value(b), Some(true));
    }

    #[test]
    fn order_cycle_is_unsat() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..4).map(|_| s.fresh_int()).collect();
        for w in vars.windows(2) {
            s.assert(Term::lt(w[0], w[1]));
        }
        s.assert(Term::lt(vars[3], vars[0]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn order_chain_model_is_ordered() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..6).map(|_| s.fresh_int()).collect();
        for w in vars.windows(2) {
            s.assert(Term::lt(w[0], w[1]));
        }
        let m = s.solve().model().unwrap();
        for w in vars.windows(2) {
            assert!(m.int_value(w[0]).unwrap() < m.int_value(w[1]).unwrap());
        }
    }

    #[test]
    fn conditional_order_via_bool() {
        // p -> (a < b), ¬p -> (b < a), and a < b forced: p must be true.
        let mut s = Solver::new();
        let p = s.fresh_bool();
        let a = s.fresh_int();
        let b = s.fresh_int();
        s.assert(Term::implies(Term::var(p), Term::lt(a, b)));
        s.assert(Term::implies(Term::not(Term::var(p)), Term::lt(b, a)));
        s.assert(Term::lt(a, b));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(p), Some(true));
    }

    #[test]
    fn exactly_one_picks_one() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..5).map(|_| s.fresh_bool()).collect();
        s.assert(Term::exactly_one(vars.iter().map(|&v| Atom::Bool(v))));
        let m = s.solve().model().unwrap();
        let count = vars
            .iter()
            .filter(|&&v| m.bool_value(v) == Some(true))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn exactly_one_conflicts_with_two_forced() {
        let mut s = Solver::new();
        let a = s.fresh_bool();
        let b = s.fresh_bool();
        s.assert(Term::exactly_one([Atom::Bool(a), Atom::Bool(b)]));
        s.assert(Term::var(a));
        s.assert(Term::var(b));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn linear_ge_counts() {
        // At least 2 of 3 must hold, and one is forced false.
        let mut s = Solver::new();
        let vars: Vec<_> = (0..3).map(|_| s.fresh_bool()).collect();
        s.assert(Term::Linear {
            terms: vars.iter().map(|&v| (1, Atom::Bool(v))).collect(),
            cmp: Cmp::Ge,
            k: 2,
        });
        s.assert(Term::not(Term::var(vars[0])));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(vars[1]), Some(true));
        assert_eq!(m.bool_value(vars[2]), Some(true));
    }

    #[test]
    fn negative_coefficients_subtract() {
        // a - b <= 0 with a forced true requires b true.
        let mut s = Solver::new();
        let a = s.fresh_bool();
        let b = s.fresh_bool();
        s.assert(Term::Linear {
            terms: vec![(1, Atom::Bool(a)), (-1, Atom::Bool(b))],
            cmp: Cmp::Le,
            k: 0,
        });
        s.assert(Term::var(a));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(b), Some(true));
    }

    #[test]
    fn channel_buffer_style_encoding() {
        // Mimics GCatch's unbuffered-send blocking constraint: a send with
        // BS = 0 cannot proceed via the buffer, so the matching disjunct
        // must hold, forcing P and the order equality.
        let mut s = Solver::new();
        let p = s.fresh_bool(); // P(send, recv)
        let o_send = s.fresh_int();
        let o_recv = s.fresh_int();
        let o_before = s.fresh_int();
        // "buffer has room" is CB < 0 which is false for an empty sum:
        let buffer_ok = Term::Linear {
            terms: vec![],
            cmp: Cmp::Lt,
            k: 0,
        };
        let matched = Term::and([Term::var(p), Term::eq_int(o_send, o_recv)]);
        s.assert(Term::or([buffer_ok, matched]));
        s.assert(Term::lt(o_before, o_send));
        let m = s.solve().model().unwrap();
        assert_eq!(m.bool_value(p), Some(true));
        assert_eq!(m.int_value(o_send), m.int_value(o_recv));
        assert!(m.int_value(o_before).unwrap() < m.int_value(o_send).unwrap());
    }

    #[test]
    fn eq_linear_reification() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..4).map(|_| s.fresh_bool()).collect();
        // Exactly 2 of 4.
        s.assert(Term::Linear {
            terms: vars.iter().map(|&v| (1, Atom::Bool(v))).collect(),
            cmp: Cmp::Eq,
            k: 2,
        });
        let m = s.solve().model().unwrap();
        let count = vars
            .iter()
            .filter(|&&v| m.bool_value(v) == Some(true))
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn unknown_on_tiny_budget() {
        let mut s = Solver::new();
        s.set_step_limit(1);
        let vars: Vec<_> = (0..30).map(|_| s.fresh_bool()).collect();
        // A moderately hard pigeonhole-ish instance.
        for chunk in vars.chunks(3) {
            s.assert(Term::exactly_one(chunk.iter().map(|&v| Atom::Bool(v))));
        }
        assert!(matches!(
            s.solve(),
            SolveResult::Unknown | SolveResult::Sat(_)
        ));
    }

    #[test]
    fn unknown_on_expired_deadline() {
        let mut s = Solver::new();
        s.set_deadline(Some(std::time::Instant::now()));
        let vars: Vec<_> = (0..30).map(|_| s.fresh_bool()).collect();
        for chunk in vars.chunks(3) {
            s.assert(Term::exactly_one(chunk.iter().map(|&v| Atom::Bool(v))));
        }
        assert!(matches!(s.solve(), SolveResult::Unknown));
        // Clearing the deadline restores a verdict.
        s.set_deadline(None);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn injected_step_fault_panics_with_marker() {
        let mut s = Solver::new();
        s.inject_step_fault(0);
        let vars: Vec<_> = (0..6).map(|_| s.fresh_bool()).collect();
        for chunk in vars.chunks(3) {
            s.assert(Term::exactly_one(chunk.iter().map(|&v| Atom::Bool(v))));
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.solve()))
            .expect_err("armed fault must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|m| m.to_string()))
            .unwrap_or_default();
        assert!(
            msg.starts_with("injected fault:"),
            "unexpected panic: {msg}"
        );
    }

    #[test]
    fn mixed_theory_and_boolean_backtracking() {
        // Force the solver to backtrack across theory assignments:
        // (a<b ∨ b<a) ∧ (b<c) ∧ (c<a ∨ q) — the only consistent choice in the
        // first disjunct with c<a is b<a...a<b... exercise search.
        let mut s = Solver::new();
        let a = s.fresh_int();
        let b = s.fresh_int();
        let c = s.fresh_int();
        let q = s.fresh_bool();
        s.assert(Term::or([Term::lt(a, b), Term::lt(b, a)]));
        s.assert(Term::lt(b, c));
        s.assert(Term::or([Term::lt(c, a), Term::var(q)]));
        s.assert(Term::not(Term::var(q)));
        // c < a forces b < c < a, so first disjunct must pick b < a.
        let m = s.solve().model().unwrap();
        assert!(m.int_value(b).unwrap() < m.int_value(a).unwrap());
    }
}
