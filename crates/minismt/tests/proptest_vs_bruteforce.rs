//! Differential testing: the DPLL(T) solver must agree with a brute-force
//! reference on small random instances.
//!
//! The reference enumerates every truth assignment of the atoms appearing in
//! the formula, evaluates the boolean structure (with linear constraints
//! evaluated arithmetically), and checks difference-logic consistency of the
//! implied edge set with Floyd–Warshall. Random terms come from a seeded
//! generator (no external property-testing crate).

use minismt::{Atom, BoolVar, Cmp, IntVar, SolveResult, Solver, Term};
use prng::Prng;

const N_INT: u32 = 4;
const N_BOOL: u32 = 3;
const CASES: u64 = 512;

fn gen_atom(rng: &mut Prng) -> Atom {
    if rng.gen_bool(0.5) {
        Atom::Bool(BoolVar(rng.gen_range(0..N_BOOL)))
    } else {
        Atom::DiffLe {
            x: IntVar(rng.gen_range(0..N_INT)),
            y: IntVar(rng.gen_range(0..N_INT)),
            c: rng.gen_range(-1i64..=1),
        }
    }
}

fn gen_leaf(rng: &mut Prng) -> Term {
    // Weighted like the original strategy: atom 4, True 1, False 1, linear 2.
    match rng.gen_range(0..8usize) {
        0..=3 => Term::Atom(gen_atom(rng)),
        4 => Term::True,
        5 => Term::False,
        _ => {
            let n = rng.gen_range(1..4usize);
            let terms: Vec<(i64, Atom)> = (0..n)
                .map(|_| (rng.gen_range(-1i64..=1), gen_atom(rng)))
                .filter(|(c, _)| *c != 0)
                .collect();
            let k = rng.gen_range(-2i64..=3);
            if terms.is_empty() {
                Term::True
            } else {
                Term::Linear {
                    terms,
                    cmp: Cmp::Le,
                    k,
                }
            }
        }
    }
}

fn gen_term(rng: &mut Prng, depth: usize) -> Term {
    if depth == 0 || rng.gen_bool(0.4) {
        return gen_leaf(rng);
    }
    let n = rng.gen_range(1..4usize);
    match rng.gen_range(0..3usize) {
        0 => Term::And((0..n).map(|_| gen_term(rng, depth - 1)).collect()),
        1 => Term::Or((0..n).map(|_| gen_term(rng, depth - 1)).collect()),
        _ => Term::Not(Box::new(gen_term(rng, depth - 1))),
    }
}

/// Collect distinct atoms of a term.
fn atoms_of(t: &Term) -> Vec<Atom> {
    let mut atoms = Vec::new();
    t.collect_atoms(&mut atoms);
    let mut seen = Vec::new();
    for a in atoms {
        if !seen.contains(&a) {
            seen.push(a);
        }
    }
    seen
}

fn eval(t: &Term, atoms: &[Atom], assignment: u32) -> bool {
    let truth = |a: &Atom| -> bool {
        let idx = atoms.iter().position(|x| x == a).expect("atom registered");
        assignment >> idx & 1 == 1
    };
    fn go(t: &Term, truth: &dyn Fn(&Atom) -> bool) -> bool {
        match t {
            Term::True => true,
            Term::False => false,
            Term::Atom(a) => truth(a),
            Term::Not(inner) => !go(inner, truth),
            Term::And(ts) => ts.iter().all(|t| go(t, truth)),
            Term::Or(ts) => ts.iter().any(|t| go(t, truth)),
            Term::Linear { terms, cmp, k } => {
                let sum: i64 = terms
                    .iter()
                    .map(|(c, a)| if truth(a) { *c } else { 0 })
                    .sum();
                match cmp {
                    Cmp::Lt => sum < *k,
                    Cmp::Le => sum <= *k,
                    Cmp::Gt => sum > *k,
                    Cmp::Ge => sum >= *k,
                    Cmp::Eq => sum == *k,
                }
            }
        }
    }
    go(t, &truth)
}

/// Floyd–Warshall feasibility of the difference constraints implied by an
/// atom assignment (true: `x - y <= c`; false: `y - x <= -c-1`).
fn diff_consistent(atoms: &[Atom], assignment: u32) -> bool {
    let n = N_INT as usize;
    let inf = i64::MAX / 4;
    let mut d = vec![vec![inf; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for (idx, atom) in atoms.iter().enumerate() {
        if let Atom::DiffLe { x, y, c } = atom {
            let (x, y) = (x.0 as usize, y.0 as usize);
            let (fx, fy, fc) = if assignment >> idx & 1 == 1 {
                (x, y, *c)
            } else {
                (y, x, -c - 1)
            };
            // Constraint fx - fy <= fc: edge fy -> fx of weight fc.
            if d[fy][fx] > fc {
                d[fy][fx] = fc;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    (0..n).all(|i| d[i][i] >= 0)
}

fn brute_force_sat(t: &Term) -> bool {
    let atoms = atoms_of(t);
    assert!(atoms.len() <= 20, "instance too large for brute force");
    (0u32..1 << atoms.len())
        .any(|assignment| eval(t, &atoms, assignment) && diff_consistent(&atoms, assignment))
}

/// Validates a SAT model against the original term.
fn model_satisfies(t: &Term, model: &minismt::Model) -> bool {
    fn truth(a: &Atom, model: &minismt::Model) -> bool {
        match a {
            Atom::Bool(v) => model.bool_value(*v).unwrap_or(false),
            Atom::DiffLe { x, y, c } => {
                let vx = model.int_value(*x).unwrap_or(0);
                let vy = model.int_value(*y).unwrap_or(0);
                vx - vy <= *c
            }
        }
    }
    fn go(t: &Term, model: &minismt::Model) -> bool {
        match t {
            Term::True => true,
            Term::False => false,
            Term::Atom(a) => truth(a, model),
            Term::Not(inner) => !go(inner, model),
            Term::And(ts) => ts.iter().all(|t| go(t, model)),
            Term::Or(ts) => ts.iter().any(|t| go(t, model)),
            Term::Linear { terms, cmp, k } => {
                let sum: i64 = terms
                    .iter()
                    .map(|(c, a)| if truth(a, model) { *c } else { 0 })
                    .sum();
                match cmp {
                    Cmp::Lt => sum < *k,
                    Cmp::Le => sum <= *k,
                    Cmp::Gt => sum > *k,
                    Cmp::Ge => sum >= *k,
                    Cmp::Eq => sum == *k,
                }
            }
        }
    }
    go(t, model)
}

/// Solver verdicts agree with brute force, and SAT models actually
/// satisfy the formula.
#[test]
fn solver_agrees_with_bruteforce() {
    for seed in 0..CASES {
        let t = gen_term(&mut Prng::seed_from_u64(seed), 3);
        let expected = brute_force_sat(&t);
        let mut s = Solver::new();
        s.assert(t.clone());
        match s.solve() {
            SolveResult::Sat(model) => {
                assert!(
                    expected,
                    "seed {seed}: solver said SAT, brute force says UNSAT: {t}"
                );
                assert!(
                    model_satisfies(&t, &model),
                    "seed {seed}: model does not satisfy the formula: {t}"
                );
            }
            SolveResult::Unsat => {
                assert!(
                    !expected,
                    "seed {seed}: solver said UNSAT, brute force says SAT: {t}"
                );
            }
            SolveResult::Unknown => panic!("seed {seed}: budget exhausted on a tiny instance"),
        }
    }
}

/// Conjunction of two terms is SAT only if each conjunct is SAT.
#[test]
fn conjunction_soundness() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed ^ 0xC0_FFEE);
        let a = gen_term(&mut rng, 3);
        let b = gen_term(&mut rng, 3);
        let mut s = Solver::new();
        s.assert(a.clone());
        s.assert(b.clone());
        if s.solve().is_sat() {
            let mut sa = Solver::new();
            sa.assert(a);
            assert!(sa.solve().is_sat(), "seed {seed}");
            let mut sb = Solver::new();
            sb.assert(b);
            assert!(sb.solve().is_sat(), "seed {seed}");
        }
    }
}
