//! Differential testing: the DPLL(T) solver must agree with a brute-force
//! reference on small random instances.
//!
//! The reference enumerates every truth assignment of the atoms appearing in
//! the formula, evaluates the boolean structure (with linear constraints
//! evaluated arithmetically), and checks difference-logic consistency of the
//! implied edge set with Floyd–Warshall.

use minismt::{Atom, BoolVar, Cmp, IntVar, SolveResult, Solver, Term};
use proptest::prelude::*;

const N_INT: u32 = 4;
const N_BOOL: u32 = 3;

fn atom_strategy() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0..N_BOOL).prop_map(|v| Atom::Bool(BoolVar(v))),
        (0..N_INT, 0..N_INT, -1i64..=1).prop_map(|(x, y, c)| Atom::DiffLe {
            x: IntVar(x),
            y: IntVar(y),
            c
        }),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        4 => atom_strategy().prop_map(Term::Atom),
        1 => Just(Term::True),
        1 => Just(Term::False),
        2 => (proptest::collection::vec((-1i64..=1, atom_strategy()), 1..4), -2i64..=3)
            .prop_map(|(terms, k)| {
                let terms: Vec<(i64, Atom)> =
                    terms.into_iter().filter(|(c, _)| *c != 0).collect();
                if terms.is_empty() {
                    Term::True
                } else {
                    Term::Linear { terms, cmp: Cmp::Le, k }
                }
            }),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Term::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Term::Or),
            inner.prop_map(|t| Term::Not(Box::new(t))),
        ]
    })
}

/// Collect distinct atoms of a term.
fn atoms_of(t: &Term) -> Vec<Atom> {
    let mut atoms = Vec::new();
    t.collect_atoms(&mut atoms);
    let mut seen = Vec::new();
    for a in atoms {
        if !seen.contains(&a) {
            seen.push(a);
        }
    }
    seen
}

fn eval(t: &Term, atoms: &[Atom], assignment: u32) -> bool {
    let truth = |a: &Atom| -> bool {
        let idx = atoms.iter().position(|x| x == a).expect("atom registered");
        assignment >> idx & 1 == 1
    };
    fn go(t: &Term, truth: &dyn Fn(&Atom) -> bool) -> bool {
        match t {
            Term::True => true,
            Term::False => false,
            Term::Atom(a) => truth(a),
            Term::Not(inner) => !go(inner, truth),
            Term::And(ts) => ts.iter().all(|t| go(t, truth)),
            Term::Or(ts) => ts.iter().any(|t| go(t, truth)),
            Term::Linear { terms, cmp, k } => {
                let sum: i64 =
                    terms.iter().map(|(c, a)| if truth(a) { *c } else { 0 }).sum();
                match cmp {
                    Cmp::Lt => sum < *k,
                    Cmp::Le => sum <= *k,
                    Cmp::Gt => sum > *k,
                    Cmp::Ge => sum >= *k,
                    Cmp::Eq => sum == *k,
                }
            }
        }
    }
    go(t, &truth)
}

/// Floyd–Warshall feasibility of the difference constraints implied by an
/// atom assignment (true: `x - y <= c`; false: `y - x <= -c-1`).
fn diff_consistent(atoms: &[Atom], assignment: u32) -> bool {
    let n = N_INT as usize;
    let inf = i64::MAX / 4;
    let mut d = vec![vec![inf; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for (idx, atom) in atoms.iter().enumerate() {
        if let Atom::DiffLe { x, y, c } = atom {
            let (x, y) = (x.0 as usize, y.0 as usize);
            let (fx, fy, fc) = if assignment >> idx & 1 == 1 {
                (x, y, *c)
            } else {
                (y, x, -c - 1)
            };
            // Constraint fx - fy <= fc: edge fy -> fx of weight fc.
            if d[fy][fx] > fc {
                d[fy][fx] = fc;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    (0..n).all(|i| d[i][i] >= 0)
}

fn brute_force_sat(t: &Term) -> bool {
    let atoms = atoms_of(t);
    assert!(atoms.len() <= 20, "instance too large for brute force");
    (0u32..1 << atoms.len())
        .any(|assignment| eval(t, &atoms, assignment) && diff_consistent(&atoms, assignment))
}

/// Validates a SAT model against the original term.
fn model_satisfies(t: &Term, model: &minismt::Model) -> bool {
    fn truth(a: &Atom, model: &minismt::Model) -> bool {
        match a {
            Atom::Bool(v) => model.bool_value(*v).unwrap_or(false),
            Atom::DiffLe { x, y, c } => {
                let vx = model.int_value(*x).unwrap_or(0);
                let vy = model.int_value(*y).unwrap_or(0);
                vx - vy <= *c
            }
        }
    }
    fn go(t: &Term, model: &minismt::Model) -> bool {
        match t {
            Term::True => true,
            Term::False => false,
            Term::Atom(a) => truth(a, model),
            Term::Not(inner) => !go(inner, model),
            Term::And(ts) => ts.iter().all(|t| go(t, model)),
            Term::Or(ts) => ts.iter().any(|t| go(t, model)),
            Term::Linear { terms, cmp, k } => {
                let sum: i64 = terms
                    .iter()
                    .map(|(c, a)| if truth(a, model) { *c } else { 0 })
                    .sum();
                match cmp {
                    Cmp::Lt => sum < *k,
                    Cmp::Le => sum <= *k,
                    Cmp::Gt => sum > *k,
                    Cmp::Ge => sum >= *k,
                    Cmp::Eq => sum == *k,
                }
            }
        }
    }
    go(t, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Solver verdicts agree with brute force, and SAT models actually
    /// satisfy the formula.
    #[test]
    fn solver_agrees_with_bruteforce(t in term_strategy()) {
        let expected = brute_force_sat(&t);
        let mut s = Solver::new();
        s.assert(t.clone());
        match s.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected, "solver said SAT, brute force says UNSAT: {t}");
                prop_assert!(model_satisfies(&t, &model),
                    "model does not satisfy the formula: {t}");
            }
            SolveResult::Unsat => {
                prop_assert!(!expected, "solver said UNSAT, brute force says SAT: {t}");
            }
            SolveResult::Unknown => prop_assert!(false, "budget exhausted on a tiny instance"),
        }
    }

    /// Conjunction of two terms is SAT only if each conjunct is SAT.
    #[test]
    fn conjunction_soundness(a in term_strategy(), b in term_strategy()) {
        let mut s = Solver::new();
        s.assert(a.clone());
        s.assert(b.clone());
        if s.solve().is_sat() {
            let mut sa = Solver::new();
            sa.assert(a);
            prop_assert!(sa.solve().is_sat());
            let mut sb = Solver::new();
            sb.assert(b);
            prop_assert!(sb.solve().is_sat());
        }
    }
}
