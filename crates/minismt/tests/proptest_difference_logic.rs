//! Property tests for the incremental difference-logic theory against a
//! Floyd–Warshall reference, including backtracking behavior. Random edge
//! sets come from a seeded generator (no external property-testing crate).

use minismt::DiffLogic;
use prng::Prng;

const N: usize = 5;
const CASES: u64 = 256;

#[derive(Debug, Clone)]
struct EdgeSpec {
    x: usize,
    y: usize,
    c: i64,
}

fn gen_edges(rng: &mut Prng) -> Vec<EdgeSpec> {
    let n = rng.gen_range(1..12usize);
    (0..n)
        .map(|_| EdgeSpec {
            x: rng.gen_range(0..N),
            y: rng.gen_range(0..N),
            c: rng.gen_range(-2i64..=2),
        })
        .collect()
}

/// Floyd–Warshall feasibility of `x - y <= c` constraints.
fn reference_feasible(edges: &[EdgeSpec]) -> bool {
    let inf = i64::MAX / 4;
    let mut d = vec![vec![inf; N]; N];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for e in edges {
        // Constraint x - y <= c: edge y -> x with weight c.
        if d[e.y][e.x] > e.c {
            d[e.y][e.x] = e.c;
        }
    }
    for k in 0..N {
        for i in 0..N {
            for j in 0..N {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    (0..N).all(|i| d[i][i] >= 0)
}

/// Incremental assertion agrees with the batch reference: the theory
/// accepts exactly the feasible prefixes.
#[test]
fn incremental_matches_floyd_warshall() {
    for seed in 0..CASES {
        let edges = gen_edges(&mut Prng::seed_from_u64(seed));
        let mut dl = DiffLogic::new();
        let mut accepted: Vec<EdgeSpec> = Vec::new();
        for (tag, e) in edges.iter().enumerate() {
            let verdict = dl.assert(e.x, e.y, e.c, tag as u32);
            let mut candidate = accepted.clone();
            candidate.push(e.clone());
            let feasible = reference_feasible(&candidate);
            assert_eq!(
                verdict.is_ok(),
                feasible,
                "seed {seed}: edge {e:?} against accepted {accepted:?}"
            );
            if verdict.is_ok() {
                accepted.push(e.clone());
                assert!(dl.check_invariant());
                // The maintained potential is a real model.
                for a in &accepted {
                    assert!(dl.value(a.x) - dl.value(a.y) <= a.c);
                }
            }
        }
    }
}

/// Retracting restores acceptance of previously conflicting edges.
#[test]
fn retract_reopens_the_state() {
    for seed in 0..CASES {
        let edges = gen_edges(&mut Prng::seed_from_u64(seed));
        let mut dl = DiffLogic::new();
        let mut n_active = 0usize;
        for (tag, e) in edges.iter().enumerate() {
            if dl.assert(e.x, e.y, e.c, tag as u32).is_ok() {
                n_active += 1;
            }
        }
        assert_eq!(dl.active_len(), n_active, "seed {seed}");
        // Retract everything; any single edge must now be accepted.
        dl.retract_to(0);
        for e in &edges {
            if e.x != e.y || e.c >= 0 {
                let mut fresh = DiffLogic::new();
                assert!(
                    fresh.assert(e.x, e.y, e.c, 0).is_ok()
                        == reference_feasible(std::slice::from_ref(e)),
                    "seed {seed}"
                );
                assert!(
                    dl.assert(e.x, e.y, e.c, 99).is_ok()
                        == reference_feasible(std::slice::from_ref(e)),
                    "seed {seed}"
                );
                dl.retract_to(0);
            }
        }
    }
}
