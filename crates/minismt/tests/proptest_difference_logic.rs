//! Property tests for the incremental difference-logic theory against a
//! Floyd–Warshall reference, including backtracking behavior.

use minismt::DiffLogic;
use proptest::prelude::*;

const N: usize = 5;

#[derive(Debug, Clone)]
struct EdgeSpec {
    x: usize,
    y: usize,
    c: i64,
}

fn edges_strategy() -> impl Strategy<Value = Vec<EdgeSpec>> {
    proptest::collection::vec(
        (0..N, 0..N, -2i64..=2).prop_map(|(x, y, c)| EdgeSpec { x, y, c }),
        1..12,
    )
}

/// Floyd–Warshall feasibility of `x - y <= c` constraints.
fn reference_feasible(edges: &[EdgeSpec]) -> bool {
    let inf = i64::MAX / 4;
    let mut d = vec![vec![inf; N]; N];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for e in edges {
        // Constraint x - y <= c: edge y -> x with weight c.
        if d[e.y][e.x] > e.c {
            d[e.y][e.x] = e.c;
        }
    }
    for k in 0..N {
        for i in 0..N {
            for j in 0..N {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    (0..N).all(|i| d[i][i] >= 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Incremental assertion agrees with the batch reference: the theory
    /// accepts exactly the feasible prefixes.
    #[test]
    fn incremental_matches_floyd_warshall(edges in edges_strategy()) {
        let mut dl = DiffLogic::new();
        let mut accepted: Vec<EdgeSpec> = Vec::new();
        for (tag, e) in edges.iter().enumerate() {
            let verdict = dl.assert(e.x, e.y, e.c, tag as u32);
            let mut candidate = accepted.clone();
            candidate.push(e.clone());
            let feasible = reference_feasible(&candidate);
            prop_assert_eq!(
                verdict.is_ok(),
                feasible,
                "edge {:?} against accepted {:?}",
                e,
                accepted
            );
            if verdict.is_ok() {
                accepted.push(e.clone());
                prop_assert!(dl.check_invariant());
                // The maintained potential is a real model.
                for a in &accepted {
                    prop_assert!(dl.value(a.x) - dl.value(a.y) <= a.c);
                }
            }
        }
    }

    /// Retracting restores acceptance of previously conflicting edges.
    #[test]
    fn retract_reopens_the_state(edges in edges_strategy()) {
        let mut dl = DiffLogic::new();
        let mut n_active = 0usize;
        for (tag, e) in edges.iter().enumerate() {
            if dl.assert(e.x, e.y, e.c, tag as u32).is_ok() {
                n_active += 1;
            }
        }
        prop_assert_eq!(dl.active_len(), n_active);
        // Retract everything; any single edge must now be accepted.
        dl.retract_to(0);
        for e in &edges {
            if e.x != e.y || e.c >= 0 {
                let mut fresh = DiffLogic::new();
                prop_assert!(fresh.assert(e.x, e.y, e.c, 0).is_ok() == reference_feasible(std::slice::from_ref(e)));
                prop_assert!(dl.assert(e.x, e.y, e.c, 99).is_ok() == reference_feasible(std::slice::from_ref(e)));
                dl.retract_to(0);
            }
        }
    }
}
