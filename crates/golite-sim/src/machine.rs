//! The goroutine scheduler and IR interpreter.
//!
//! The simulator executes a lowered [`Module`] under a seeded random
//! scheduler with Go channel semantics: unbuffered rendezvous, buffered FIFO
//! queues, `close` broadcast, `select` with uniform choice among ready cases,
//! mutexes/rwmutexes, wait groups, condition variables, `defer` (LIFO, run on
//! return, panic-free subset), and `t.Fatal`'s goroutine-exit semantics.
//!
//! Scheduling is one instruction per step, picking uniformly among runnable
//! goroutines, which realizes the interleaving non-determinism the paper's
//! bug patterns depend on. With `sleep_injection` enabled the scheduler
//! additionally skips goroutines that are about to perform a channel
//! operation with some probability — the "random-length sleeps around the
//! channel operations" the authors use to validate patches (§5.3).

use golite_ir::ir::*;
use prng::Prng;
use std::collections::VecDeque;
use std::rc::Rc;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Zero value of reference types; also the `error` nil.
    Nil,
    /// The unit value `struct{}{}`.
    Unit,
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String (also non-nil `error` values).
    Str(Rc<str>),
    /// Channel reference.
    Chan(usize),
    /// Mutex reference.
    Mutex(usize),
    /// Wait-group reference.
    WaitGroup(usize),
    /// Condition-variable reference.
    Cond(usize),
    /// Struct object reference.
    Struct(usize),
    /// Slice reference.
    Slice(usize),
    /// A function value with bound captures.
    Closure {
        /// Target function.
        func: FuncId,
        /// Captured values.
        bound: Rc<Vec<Value>>,
    },
}

impl Value {
    fn truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Structural/reference equality matching Go `==` for the GoLite subset.
    fn eq_value(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Nil, Value::Chan(_)) | (Value::Chan(_), Value::Nil) => false,
            (Value::Nil, Value::Str(_)) | (Value::Str(_), Value::Nil) => false,
            (Value::Nil, _) | (_, Value::Nil) => false,
            (Value::Unit, Value::Unit) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Chan(a), Value::Chan(b)) => a == b,
            (Value::Mutex(a), Value::Mutex(b)) => a == b,
            (Value::Struct(a), Value::Struct(b)) => a == b,
            (Value::Slice(a), Value::Slice(b)) => a == b,
            _ => false,
        }
    }

    fn render(&self) -> String {
        match self {
            Value::Nil => "<nil>".into(),
            Value::Unit => "{}".into(),
            Value::Int(v) => v.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.to_string(),
            Value::Chan(i) => format!("chan#{i}"),
            Value::Mutex(i) => format!("mutex#{i}"),
            Value::WaitGroup(i) => format!("wg#{i}"),
            Value::Cond(i) => format!("cond#{i}"),
            Value::Struct(i) => format!("struct#{i}"),
            Value::Slice(i) => format!("slice#{i}"),
            Value::Closure { func, .. } => format!("func#{}", func.0),
        }
    }
}

#[derive(Debug)]
struct ChanState {
    cap: usize,
    buf: VecDeque<Value>,
    closed: bool,
}

#[derive(Debug, Default)]
struct MutexState {
    locked: bool,
    readers: usize,
}

#[derive(Debug, Default)]
struct WgState {
    count: i64,
}

#[derive(Debug, Default)]
struct CondState {
    /// Goroutine ids currently waiting.
    waiters: Vec<usize>,
    /// Wake tokens granted by Signal/Broadcast.
    wakes: Vec<usize>,
}

/// Why a goroutine cannot currently run.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockReason {
    /// Blocked sending on a channel.
    Send(usize),
    /// Blocked sending on a nil channel (blocks forever).
    NilChannelOp,
    /// Blocked receiving on a channel.
    Recv(usize),
    /// Blocked in a `select` with the given channels (send?, chan id).
    Select(Vec<(bool, usize)>),
    /// Blocked acquiring a mutex.
    Lock(usize),
    /// Blocked in `WaitGroup.Wait`.
    WgWait(usize),
    /// Blocked in `Cond.Wait`.
    CondWait(usize),
}

#[derive(Debug, Clone, PartialEq)]
enum GoState {
    Runnable,
    Blocked(BlockReason),
    Sleeping(u64),
    Done,
}

/// A pending deferred call.
#[derive(Debug, Clone)]
struct Deferred {
    target: CallTarget,
    args: Vec<Value>,
}

#[derive(Debug, Clone)]
enum CallTarget {
    Func(FuncId, Vec<Value>), // with bound captures
    External,
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    regs: Vec<Value>,
    block: BlockId,
    idx: usize,
    defers: Vec<Deferred>,
    /// Result registers in the *caller* awaiting this frame's return.
    ret_dsts: Vec<Var>,
    /// Set once a return/goexit started; defers drain before the pop.
    ret_vals: Option<Vec<Value>>,
    /// Whether the frame is a deferred-call frame (returns are absorbed).
    is_defer: bool,
}

#[derive(Debug)]
struct Goroutine {
    id: usize,
    frames: Vec<Frame>,
    state: GoState,
    /// Set when `t.Fatal` fired: unwind everything, running defers.
    goexit: bool,
    /// Source location where the goroutine was spawned (kept for debug dumps).
    #[allow(dead_code)]
    spawn_loc: Option<Loc>,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// RNG seed for the scheduler.
    pub seed: u64,
    /// Abort after this many scheduler steps.
    pub max_steps: u64,
    /// Entry function name.
    pub entry: String,
    /// Randomly delay goroutines at channel operations (§5.3 validation).
    pub sleep_injection: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 0,
            max_steps: 200_000,
            entry: "main".into(),
            sleep_injection: false,
        }
    }
}

/// How a simulation ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every goroutine finished.
    Clean,
    /// The entry goroutine finished but some goroutines remain blocked
    /// forever — the paper's "blocked bug" (goroutine leak).
    Leak,
    /// Every live goroutine is blocked (classic global deadlock).
    GlobalDeadlock,
    /// A goroutine panicked (including send/close on closed channel).
    Panic(String),
    /// The step budget ran out with runnable goroutines remaining.
    StepLimit,
}

/// A blocked-goroutine description in a [`RunReport`].
#[derive(Debug, Clone)]
pub struct BlockedGoroutine {
    /// Goroutine id (0 = entry).
    pub id: usize,
    /// Function at the top of its stack.
    pub func: String,
    /// Why it is blocked.
    pub reason: BlockReason,
    /// Source span of the blocking operation.
    pub span: golite::Span,
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Terminal state.
    pub outcome: Outcome,
    /// Scheduler steps taken.
    pub steps: u64,
    /// Instructions actually executed (the overhead metric of §5.3).
    pub instrs_executed: u64,
    /// Lines printed by the program.
    pub output: Vec<String>,
    /// Goroutines still blocked at the end.
    pub blocked: Vec<BlockedGoroutine>,
}

impl RunReport {
    /// Whether this run exhibits a blocking bug (leak or global deadlock).
    pub fn is_blocking(&self) -> bool {
        matches!(self.outcome, Outcome::Leak | Outcome::GlobalDeadlock)
    }
}

/// The simulator. Construct once per module, then [`Simulator::run`] under
/// as many seeds as desired.
///
/// # Examples
///
/// ```
/// let module = golite_ir::lower_source("
/// func main() {
///     ch := make(chan int, 1)
///     ch <- 42
///     <-ch
/// }
/// ").unwrap();
/// let sim = golite_sim::Simulator::new(&module);
/// let report = sim.run(&golite_sim::Config::default());
/// assert_eq!(report.outcome, golite_sim::Outcome::Clean);
/// ```
pub struct Simulator<'m> {
    module: &'m Module,
}

struct Machine<'m> {
    module: &'m Module,
    chans: Vec<ChanState>,
    mutexes: Vec<MutexState>,
    wgs: Vec<WgState>,
    conds: Vec<CondState>,
    structs: Vec<std::collections::HashMap<golite_ir::Symbol, Value>>,
    slices: Vec<Vec<Value>>,
    globals: Vec<Value>,
    goroutines: Vec<Goroutine>,
    rng: Prng,
    tick: u64,
    steps: u64,
    instrs: u64,
    output: Vec<String>,
    panic_msg: Option<String>,
    sleep_injection: bool,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator for `module`.
    pub fn new(module: &'m Module) -> Simulator<'m> {
        Simulator { module }
    }

    /// Runs the program once under the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the entry function does not exist or takes parameters other
    /// than an optional `*testing.T` (which receives a dummy value).
    pub fn run(&self, config: &Config) -> RunReport {
        let entry = self
            .module
            .func_by_name(&config.entry)
            .unwrap_or_else(|| panic!("entry function `{}` not found", config.entry));
        let mut m = Machine {
            module: self.module,
            chans: Vec::new(),
            mutexes: Vec::new(),
            wgs: Vec::new(),
            conds: Vec::new(),
            structs: Vec::new(),
            slices: Vec::new(),
            globals: vec![Value::Nil; self.module.globals.len()],
            goroutines: Vec::new(),
            rng: Prng::seed_from_u64(config.seed),
            tick: 0,
            steps: 0,
            instrs: 0,
            output: Vec::new(),
            panic_msg: None,
            sleep_injection: config.sleep_injection,
        };
        // Run __init (global initializers) to completion first, if present.
        if let Some(init) = self.module.func_by_name("__init") {
            m.spawn_frame(init.id, vec![], None);
            m.run_scheduler(u64::MAX, true);
            m.goroutines.clear();
        }
        // Entry goroutine; a *testing.T parameter receives a dummy value.
        let args: Vec<Value> = entry.params.iter().map(|_| Value::Nil).collect();
        m.spawn_frame(entry.id, args, None);
        m.run_scheduler(config.max_steps, false);
        m.report()
    }

    /// Runs under many seeds, returning every report. Used by GFix's patch
    /// validation and by the differential tests.
    pub fn explore(&self, base: &Config, seeds: std::ops::Range<u64>) -> Vec<RunReport> {
        seeds
            .map(|seed| {
                let mut c = base.clone();
                c.seed = seed;
                self.run(&c)
            })
            .collect()
    }
}

impl<'m> Machine<'m> {
    fn spawn_frame(&mut self, func: FuncId, args: Vec<Value>, spawn_loc: Option<Loc>) {
        let f = self.module.func(func);
        let mut regs = vec![Value::Nil; f.var_names.len()];
        for (i, a) in args.into_iter().enumerate() {
            if let Some(&p) = f.params.get(i) {
                regs[p.0 as usize] = a;
            }
        }
        let frame = Frame {
            func,
            regs,
            block: BlockId(0),
            idx: 0,
            defers: Vec::new(),
            ret_dsts: Vec::new(),
            ret_vals: None,
            is_defer: false,
        };
        let id = self.goroutines.len();
        self.goroutines.push(Goroutine {
            id,
            frames: vec![frame],
            state: GoState::Runnable,
            goexit: false,
            spawn_loc,
        });
    }

    fn report(&mut self) -> RunReport {
        let blocked = self.collect_blocked();
        let outcome = if let Some(msg) = &self.panic_msg {
            Outcome::Panic(msg.clone())
        } else if self.steps == u64::MAX {
            Outcome::StepLimit
        } else if blocked.is_empty() {
            Outcome::Clean
        } else if self
            .goroutines
            .first()
            .is_some_and(|g| g.state == GoState::Done)
        {
            Outcome::Leak
        } else {
            Outcome::GlobalDeadlock
        };
        RunReport {
            outcome,
            steps: self.steps,
            instrs_executed: self.instrs,
            output: std::mem::take(&mut self.output),
            blocked,
        }
    }

    fn collect_blocked(&self) -> Vec<BlockedGoroutine> {
        self.goroutines
            .iter()
            .filter_map(|g| match &g.state {
                GoState::Blocked(reason) => {
                    let top = g.frames.last()?;
                    let f = self.module.func(top.func);
                    let span = f
                        .blocks
                        .get(top.block.0 as usize)
                        .and_then(|b| {
                            if top.idx < b.instrs.len() {
                                b.spans.get(top.idx).copied()
                            } else {
                                Some(b.term_span)
                            }
                        })
                        .unwrap_or_default();
                    Some(BlockedGoroutine {
                        id: g.id,
                        func: f.name.to_string(),
                        reason: reason.clone(),
                        span,
                    })
                }
                _ => None,
            })
            .collect()
    }

    fn run_scheduler(&mut self, max_steps: u64, init_mode: bool) {
        let mut budget = max_steps;
        loop {
            if self.panic_msg.is_some() {
                return;
            }
            if budget == 0 {
                self.steps = u64::MAX; // marks StepLimit in report()
                return;
            }
            // Wake sleepers whose deadline passed; collect runnables.
            let mut runnable: Vec<usize> = Vec::new();
            let mut min_wake: Option<u64> = None;
            for g in &mut self.goroutines {
                match g.state {
                    GoState::Sleeping(until) if until <= self.tick => {
                        g.state = GoState::Runnable;
                        runnable.push(g.id);
                    }
                    GoState::Sleeping(until) => {
                        min_wake = Some(min_wake.map_or(until, |w: u64| w.min(until)));
                    }
                    GoState::Runnable => runnable.push(g.id),
                    _ => {}
                }
            }
            // Blocked goroutines may have become unblockable; try them too.
            let blocked: Vec<usize> = self
                .goroutines
                .iter()
                .filter(|g| matches!(g.state, GoState::Blocked(_)))
                .map(|g| g.id)
                .collect();

            if runnable.is_empty() {
                // Try to resolve a blocked goroutine (rendezvous pairing).
                let mut progressed = false;
                for &gid in &blocked {
                    if self.try_unblock(gid) {
                        progressed = true;
                        break;
                    }
                }
                if progressed {
                    continue;
                }
                if let Some(wake) = min_wake {
                    self.tick = wake; // fast-forward time
                    continue;
                }
                // No runnable, no sleeper, nothing unblockable: done or stuck.
                return;
            }

            // Also opportunistically unblock one blocked goroutine per round
            // so rendezvous pairs resolve even while others run.
            if !blocked.is_empty() {
                let pick = blocked[self.rng.gen_range(0..blocked.len())];
                let _ = self.try_unblock(pick);
            }

            let gid = runnable[self.rng.gen_range(0..runnable.len())];
            self.steps += 1;
            self.tick += 1;
            budget -= 1;
            self.step(gid, init_mode);
        }
    }

    /// Attempts to unblock goroutine `gid` by re-checking its block reason
    /// (including rendezvous pairing). Returns true if it made progress.
    fn try_unblock(&mut self, gid: usize) -> bool {
        let reason = match &self.goroutines[gid].state {
            GoState::Blocked(r) => r.clone(),
            _ => return false,
        };
        match reason {
            BlockReason::NilChannelOp => false,
            BlockReason::Send(ch) => self.try_send_blocked(gid, ch),
            BlockReason::Recv(ch) => self.try_recv_blocked(gid, ch),
            BlockReason::Select(_) => self.try_select_blocked(gid),
            BlockReason::Lock(mu) => {
                let read = match self.current_instr(gid) {
                    Some(Instr::Lock { read, .. }) => *read,
                    _ => false,
                };
                if self.can_lock(mu, read) {
                    self.do_lock(mu, read);
                    self.advance(gid);
                    self.goroutines[gid].state = GoState::Runnable;
                    true
                } else {
                    false
                }
            }
            BlockReason::WgWait(wg) => {
                if self.wgs[wg].count <= 0 {
                    self.advance(gid);
                    self.goroutines[gid].state = GoState::Runnable;
                    true
                } else {
                    false
                }
            }
            BlockReason::CondWait(c) => {
                if let Some(pos) = self.conds[c].wakes.iter().position(|&w| w == gid) {
                    self.conds[c].wakes.remove(pos);
                    self.conds[c].waiters.retain(|&w| w != gid);
                    self.advance(gid);
                    self.goroutines[gid].state = GoState::Runnable;
                    true
                } else {
                    false
                }
            }
        }
    }

    // ------------------------------------------------------------ stepping

    fn current_instr(&self, gid: usize) -> Option<&Instr> {
        let frame = self.goroutines[gid].frames.last()?;
        let f = self.module.func(frame.func);
        f.blocks.get(frame.block.0 as usize)?.instrs.get(frame.idx)
    }

    fn advance(&mut self, gid: usize) {
        if let Some(frame) = self.goroutines[gid].frames.last_mut() {
            frame.idx += 1;
        }
    }

    fn eval(&self, gid: usize, op: &Operand) -> Value {
        match op {
            Operand::Var(v) => {
                let frame = self.goroutines[gid].frames.last().expect("live frame");
                frame.regs[v.0 as usize].clone()
            }
            Operand::Const(c) => match c {
                ConstVal::Int(v) => Value::Int(*v),
                ConstVal::Bool(b) => Value::Bool(*b),
                ConstVal::Str(s) => Value::Str(Rc::from(s.as_str())),
                ConstVal::Unit => Value::Unit,
                ConstVal::Nil => Value::Nil,
                ConstVal::Func(f) => Value::Closure {
                    func: *f,
                    bound: Rc::new(vec![]),
                },
            },
        }
    }

    fn set_reg(&mut self, gid: usize, var: Var, value: Value) {
        let frame = self.goroutines[gid].frames.last_mut().expect("live frame");
        frame.regs[var.0 as usize] = value;
    }

    fn block_on(&mut self, gid: usize, reason: BlockReason) {
        self.goroutines[gid].state = GoState::Blocked(reason);
    }

    fn panic_program(&mut self, msg: impl Into<String>) {
        self.panic_msg = Some(msg.into());
    }

    /// Executes one step of goroutine `gid`: either its current instruction
    /// or its block terminator.
    fn step(&mut self, gid: usize, init_mode: bool) {
        let _ = init_mode;
        let Some(frame) = self.goroutines[gid].frames.last() else {
            self.goroutines[gid].state = GoState::Done;
            return;
        };
        // A frame in return-unwinding mode drains defers first.
        if self.goroutines[gid]
            .frames
            .last()
            .expect("checked")
            .ret_vals
            .is_some()
        {
            self.continue_unwind(gid);
            return;
        }
        let func = frame.func;
        let block = frame.block;
        let idx = frame.idx;
        let f = self.module.func(func);
        let blk = &f.blocks[block.0 as usize];

        if idx < blk.instrs.len() {
            // Sleep-injection: randomly delay goroutines at channel ops.
            if self.sleep_injection && blk.instrs[idx].can_block() && self.rng.gen_bool(0.3) {
                let delay = self.rng.gen_range(1..5u64);
                self.goroutines[gid].state = GoState::Sleeping(self.tick + delay);
                return;
            }
            let instr = blk.instrs[idx].clone();
            self.instrs += 1;
            self.exec_instr(gid, &instr);
        } else {
            let term = blk.term.clone();
            self.instrs += 1;
            self.exec_term(gid, &term);
        }
    }

    fn exec_instr(&mut self, gid: usize, instr: &Instr) {
        match instr {
            Instr::Const { dst, value } => {
                let v = self.eval(gid, &Operand::Const(value.clone()));
                self.set_reg(gid, *dst, v);
                self.advance(gid);
            }
            Instr::Copy { dst, src } => {
                let v = self.eval(gid, src);
                self.set_reg(gid, *dst, v);
                self.advance(gid);
            }
            Instr::UnOp { dst, op, src } => {
                let v = self.eval(gid, src);
                let out = match (op, v) {
                    (golite::UnOp::Neg, Value::Int(i)) => Value::Int(-i),
                    (golite::UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (_, other) => other,
                };
                self.set_reg(gid, *dst, out);
                self.advance(gid);
            }
            Instr::BinOp { dst, op, l, r } => {
                let lv = self.eval(gid, l);
                let rv = self.eval(gid, r);
                let out = self.eval_binop(*op, lv, rv);
                self.set_reg(gid, *dst, out);
                self.advance(gid);
            }
            Instr::MakeChan { dst, cap, .. } => {
                let cap = match self.eval(gid, cap) {
                    Value::Int(n) if n >= 0 => n as usize,
                    _ => 0,
                };
                let id = self.chans.len();
                self.chans.push(ChanState {
                    cap,
                    buf: VecDeque::new(),
                    closed: false,
                });
                self.set_reg(gid, *dst, Value::Chan(id));
                self.advance(gid);
            }
            Instr::MakeMutex { dst, .. } => {
                let id = self.mutexes.len();
                self.mutexes.push(MutexState::default());
                self.set_reg(gid, *dst, Value::Mutex(id));
                self.advance(gid);
            }
            Instr::MakeWaitGroup { dst } => {
                let id = self.wgs.len();
                self.wgs.push(WgState::default());
                self.set_reg(gid, *dst, Value::WaitGroup(id));
                self.advance(gid);
            }
            Instr::MakeCond { dst } => {
                let id = self.conds.len();
                self.conds.push(CondState::default());
                self.set_reg(gid, *dst, Value::Cond(id));
                self.advance(gid);
            }
            Instr::MakeStruct { dst, fields, name } => {
                let mut map = std::collections::HashMap::new();
                // Initialize declared primitive fields with fresh objects.
                if let Some(decl) = self.module.struct_decl(name) {
                    for (fname, fty) in &decl.fields {
                        let v = match fty {
                            golite::Type::Mutex | golite::Type::RwMutex => {
                                let id = self.mutexes.len();
                                self.mutexes.push(MutexState::default());
                                Value::Mutex(id)
                            }
                            golite::Type::WaitGroup => {
                                let id = self.wgs.len();
                                self.wgs.push(WgState::default());
                                Value::WaitGroup(id)
                            }
                            golite::Type::Int => Value::Int(0),
                            golite::Type::Bool => Value::Bool(false),
                            golite::Type::String => Value::Str(Rc::from("")),
                            _ => Value::Nil,
                        };
                        map.insert(golite_ir::Symbol::intern(fname), v);
                    }
                }
                for (fname, op) in fields {
                    let v = self.eval(gid, op);
                    map.insert(*fname, v);
                }
                let id = self.structs.len();
                self.structs.push(map);
                self.set_reg(gid, *dst, Value::Struct(id));
                self.advance(gid);
            }
            Instr::MakeSlice { dst, elems } => {
                let vals: Vec<Value> = elems.iter().map(|e| self.eval(gid, e)).collect();
                let id = self.slices.len();
                self.slices.push(vals);
                self.set_reg(gid, *dst, Value::Slice(id));
                self.advance(gid);
            }
            Instr::MakeClosure { dst, func, bound } => {
                let vals: Vec<Value> = bound.iter().map(|b| self.eval(gid, b)).collect();
                self.set_reg(
                    gid,
                    *dst,
                    Value::Closure {
                        func: *func,
                        bound: Rc::new(vals),
                    },
                );
                self.advance(gid);
            }
            Instr::Len { dst, obj } => {
                let n = match self.eval(gid, obj) {
                    Value::Slice(s) => self.slices[s].len() as i64,
                    Value::Str(s) => s.len() as i64,
                    _ => 0,
                };
                self.set_reg(gid, *dst, Value::Int(n));
                self.advance(gid);
            }
            Instr::IndexLoad { dst, obj, index } => {
                let o = self.eval(gid, obj);
                let i = match self.eval(gid, index) {
                    Value::Int(i) => i,
                    _ => 0,
                };
                match o {
                    Value::Slice(s) => match self.slices[s].get(i as usize) {
                        Some(v) => {
                            let v = v.clone();
                            self.set_reg(gid, *dst, v);
                            self.advance(gid);
                        }
                        None => self.panic_program(format!("index out of range [{i}]")),
                    },
                    _ => self.panic_program("index of non-slice"),
                }
            }
            Instr::IndexStore { obj, index, value } => {
                let o = self.eval(gid, obj);
                let i = match self.eval(gid, index) {
                    Value::Int(i) => i,
                    _ => 0,
                };
                let v = self.eval(gid, value);
                match o {
                    Value::Slice(s) => {
                        let slice = &mut self.slices[s];
                        if (i as usize) < slice.len() {
                            slice[i as usize] = v;
                            self.advance(gid);
                        } else if i as usize == slice.len() {
                            slice.push(v); // tolerate append-style writes
                            self.advance(gid);
                        } else {
                            self.panic_program(format!("index out of range [{i}]"));
                        }
                    }
                    _ => self.panic_program("index store into non-slice"),
                }
            }
            Instr::FieldLoad { dst, obj, field } => {
                let o = self.eval(gid, obj);
                match o {
                    Value::Struct(s) => {
                        let v = self.structs[s].get(field).cloned().unwrap_or(Value::Nil);
                        self.set_reg(gid, *dst, v);
                        self.advance(gid);
                    }
                    Value::Nil => self.panic_program("nil pointer dereference"),
                    _ => {
                        self.set_reg(gid, *dst, Value::Nil);
                        self.advance(gid);
                    }
                }
            }
            Instr::FieldStore { obj, field, value } => {
                let o = self.eval(gid, obj);
                let v = self.eval(gid, value);
                match o {
                    Value::Struct(s) => {
                        self.structs[s].insert(*field, v);
                        self.advance(gid);
                    }
                    Value::Nil => self.panic_program("nil pointer dereference"),
                    _ => self.advance(gid),
                }
            }
            Instr::LoadGlobal { dst, global } => {
                let v = self.globals[global.0 as usize].clone();
                self.set_reg(gid, *dst, v);
                self.advance(gid);
            }
            Instr::StoreGlobal { global, src } => {
                let v = self.eval(gid, src);
                self.globals[global.0 as usize] = v;
                self.advance(gid);
            }
            Instr::Send { chan, value } => {
                let c = self.eval(gid, chan);
                match c {
                    Value::Chan(ch) => {
                        if !self.try_send_now(gid, ch, value) {
                            self.block_on(gid, BlockReason::Send(ch));
                        }
                    }
                    Value::Nil => self.block_on(gid, BlockReason::NilChannelOp),
                    _ => self.panic_program("send on non-channel"),
                }
            }
            Instr::Recv { chan, .. } => {
                let c = self.eval(gid, chan);
                match c {
                    Value::Chan(ch) => {
                        if !self.try_recv_now(gid, ch) {
                            self.block_on(gid, BlockReason::Recv(ch));
                        }
                    }
                    Value::Nil => self.block_on(gid, BlockReason::NilChannelOp),
                    _ => self.panic_program("receive on non-channel"),
                }
            }
            Instr::Close { chan } => {
                let c = self.eval(gid, chan);
                match c {
                    Value::Chan(ch) => {
                        if self.chans[ch].closed {
                            self.panic_program("close of closed channel");
                        } else {
                            self.chans[ch].closed = true;
                            self.advance(gid);
                        }
                    }
                    Value::Nil => self.panic_program("close of nil channel"),
                    _ => self.panic_program("close of non-channel"),
                }
            }
            Instr::Lock { mutex, read } => {
                let m = self.eval(gid, mutex);
                match m {
                    Value::Mutex(mu) => {
                        if self.can_lock(mu, *read) {
                            self.do_lock(mu, *read);
                            self.advance(gid);
                        } else {
                            self.block_on(gid, BlockReason::Lock(mu));
                        }
                    }
                    _ => self.panic_program("lock of non-mutex"),
                }
            }
            Instr::Unlock { mutex, read } => {
                let m = self.eval(gid, mutex);
                match m {
                    Value::Mutex(mu) => {
                        let st = &mut self.mutexes[mu];
                        if *read {
                            if st.readers == 0 {
                                self.panic_program("RUnlock of unlocked RWMutex");
                                return;
                            }
                            st.readers -= 1;
                        } else {
                            if !st.locked {
                                self.panic_program("unlock of unlocked mutex");
                                return;
                            }
                            st.locked = false;
                        }
                        self.advance(gid);
                    }
                    _ => self.panic_program("unlock of non-mutex"),
                }
            }
            Instr::WgAdd { wg, n } => {
                let w = self.eval(gid, wg);
                let n = match self.eval(gid, n) {
                    Value::Int(i) => i,
                    _ => 0,
                };
                if let Value::WaitGroup(id) = w {
                    self.wgs[id].count += n;
                    if self.wgs[id].count < 0 {
                        self.panic_program("negative WaitGroup counter");
                        return;
                    }
                }
                self.advance(gid);
            }
            Instr::WgDone { wg } => {
                let w = self.eval(gid, wg);
                if let Value::WaitGroup(id) = w {
                    self.wgs[id].count -= 1;
                    if self.wgs[id].count < 0 {
                        self.panic_program("negative WaitGroup counter");
                        return;
                    }
                }
                self.advance(gid);
            }
            Instr::WgWait { wg } => {
                let w = self.eval(gid, wg);
                if let Value::WaitGroup(id) = w {
                    if self.wgs[id].count <= 0 {
                        self.advance(gid);
                    } else {
                        self.block_on(gid, BlockReason::WgWait(id));
                    }
                } else {
                    self.advance(gid);
                }
            }
            Instr::CondWait { cond } => {
                let c = self.eval(gid, cond);
                if let Value::Cond(id) = c {
                    self.conds[id].waiters.push(gid);
                    self.block_on(gid, BlockReason::CondWait(id));
                } else {
                    self.advance(gid);
                }
            }
            Instr::CondSignal { cond } => {
                let c = self.eval(gid, cond);
                if let Value::Cond(id) = c {
                    if let Some(&w) = self.conds[id].waiters.first() {
                        self.conds[id].wakes.push(w);
                    }
                }
                self.advance(gid);
            }
            Instr::CondBroadcast { cond } => {
                let c = self.eval(gid, cond);
                if let Value::Cond(id) = c {
                    let all: Vec<usize> = self.conds[id].waiters.clone();
                    self.conds[id].wakes.extend(all);
                }
                self.advance(gid);
            }
            Instr::Go { func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(gid, a)).collect();
                let loc = self.loc_of(gid);
                match self.resolve_target(gid, func) {
                    Some((fid, bound)) => {
                        let mut all = bound;
                        all.extend(vals);
                        self.advance(gid);
                        self.spawn_frame(fid, all, loc);
                    }
                    None => self.advance(gid), // external spawn: no-op
                }
            }
            Instr::Call { dsts, func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(gid, a)).collect();
                match self.resolve_target(gid, func) {
                    Some((fid, bound)) => {
                        let mut all = bound;
                        all.extend(vals);
                        self.advance(gid);
                        self.push_frame(gid, fid, all, dsts.clone(), false);
                    }
                    None => {
                        // External call: zero results.
                        for &d in dsts {
                            self.set_reg(gid, d, Value::Nil);
                        }
                        self.advance(gid);
                    }
                }
            }
            Instr::DeferCall { func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(gid, a)).collect();
                let target = match self.resolve_target(gid, func) {
                    Some((fid, bound)) => CallTarget::Func(fid, bound),
                    None => CallTarget::External,
                };
                let frame = self.goroutines[gid].frames.last_mut().expect("live frame");
                frame.defers.push(Deferred { target, args: vals });
                self.advance(gid);
            }
            Instr::Sleep { n } => {
                let n = match self.eval(gid, n) {
                    Value::Int(i) if i > 0 => i as u64,
                    _ => 1,
                };
                self.advance(gid);
                self.goroutines[gid].state = GoState::Sleeping(self.tick + n);
            }
            Instr::Fatal => {
                // runtime.Goexit semantics: unwind all frames running defers.
                self.goroutines[gid].goexit = true;
                let frame = self.goroutines[gid].frames.last_mut().expect("live frame");
                frame.ret_vals = Some(vec![]);
            }
            Instr::Panic { value } => {
                let v = self.eval(gid, value);
                self.panic_program(format!("panic: {}", v.render()));
            }
            Instr::Print { args } => {
                let line: Vec<String> = args.iter().map(|a| self.eval(gid, a).render()).collect();
                self.output.push(line.join(" "));
                self.advance(gid);
            }
            Instr::Nop => self.advance(gid),
        }
    }

    fn loc_of(&self, gid: usize) -> Option<Loc> {
        let frame = self.goroutines[gid].frames.last()?;
        Some(Loc {
            func: frame.func,
            block: frame.block,
            idx: frame.idx as u32,
        })
    }

    fn eval_binop(&mut self, op: golite::BinOp, l: Value, r: Value) -> Value {
        use golite::BinOp as B;
        match (op, &l, &r) {
            (B::Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
            (B::Add, Value::Str(a), Value::Str(b)) => {
                Value::Str(Rc::from(format!("{a}{b}").as_str()))
            }
            (B::Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
            (B::Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
            (B::Div, Value::Int(a), Value::Int(b)) => Value::Int(if *b == 0 { 0 } else { a / b }),
            (B::Rem, Value::Int(a), Value::Int(b)) => Value::Int(if *b == 0 { 0 } else { a % b }),
            (B::Eq, _, _) => Value::Bool(l.eq_value(&r)),
            (B::Ne, _, _) => Value::Bool(!l.eq_value(&r)),
            (B::Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
            (B::Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
            (B::Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
            (B::Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
            (B::Lt, Value::Str(a), Value::Str(b)) => Value::Bool(a < b),
            (B::And, Value::Bool(a), Value::Bool(b)) => Value::Bool(*a && *b),
            (B::Or, Value::Bool(a), Value::Bool(b)) => Value::Bool(*a || *b),
            _ => Value::Nil,
        }
    }

    fn resolve_target(&mut self, gid: usize, func: &FuncRef) -> Option<(FuncId, Vec<Value>)> {
        match func {
            FuncRef::Static(f) => Some((*f, vec![])),
            FuncRef::External(_) => None,
            FuncRef::Dynamic(op) => match self.eval(gid, op) {
                Value::Closure { func, bound } => Some((func, bound.as_ref().clone())),
                _ => None,
            },
        }
    }

    fn push_frame(
        &mut self,
        gid: usize,
        func: FuncId,
        args: Vec<Value>,
        ret_dsts: Vec<Var>,
        is_defer: bool,
    ) {
        let f = self.module.func(func);
        let mut regs = vec![Value::Nil; f.var_names.len()];
        for (i, a) in args.into_iter().enumerate() {
            if let Some(&p) = f.params.get(i) {
                regs[p.0 as usize] = a;
            }
        }
        self.goroutines[gid].frames.push(Frame {
            func,
            regs,
            block: BlockId(0),
            idx: 0,
            defers: Vec::new(),
            ret_dsts,
            ret_vals: None,
            is_defer,
        });
    }

    // --------------------------------------------------- channel operations

    /// Finds a blocked goroutine able to complete the counterpart of a
    /// `send` (if `want_recv`) or `recv` (if `!want_recv`) on channel `ch`.
    fn find_counterpart(&self, ch: usize, want_recv: bool) -> Option<usize> {
        for g in &self.goroutines {
            match &g.state {
                GoState::Blocked(BlockReason::Recv(c)) if want_recv && *c == ch => {
                    return Some(g.id)
                }
                GoState::Blocked(BlockReason::Send(c)) if !want_recv && *c == ch => {
                    return Some(g.id)
                }
                GoState::Blocked(BlockReason::Select(cases)) => {
                    for (is_send, c) in cases {
                        if *c == ch && *is_send != want_recv {
                            return Some(g.id);
                        }
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Attempts an immediate send by goroutine `gid` (currently at a Send
    /// instruction). Returns false if it must block.
    fn try_send_now(&mut self, gid: usize, ch: usize, value: &Operand) -> bool {
        if self.chans[ch].closed {
            self.panic_program("send on closed channel");
            return true;
        }
        let v = self.eval(gid, value);
        if self.chans[ch].buf.len() < self.chans[ch].cap {
            self.chans[ch].buf.push_back(v);
            self.advance(gid);
            return true;
        }
        if let Some(peer) = self.find_counterpart(ch, true) {
            self.deliver_to_receiver(peer, ch, v, true);
            self.advance(gid);
            return true;
        }
        false
    }

    /// Re-attempts a blocked send (the value operand is re-evaluated from
    /// the still-live frame).
    fn try_send_blocked(&mut self, gid: usize, ch: usize) -> bool {
        let value = match self.current_instr(gid) {
            Some(Instr::Send { value, .. }) => value.clone(),
            _ => return false,
        };
        if self.try_send_now(gid, ch, &value) {
            if self.panic_msg.is_none() {
                self.goroutines[gid].state = GoState::Runnable;
            }
            true
        } else {
            false
        }
    }

    /// Attempts an immediate receive by `gid` (currently at a Recv
    /// instruction). Returns false if it must block.
    fn try_recv_now(&mut self, gid: usize, ch: usize) -> bool {
        let (dst, ok_dst) = match self.current_instr(gid) {
            Some(Instr::Recv { dst, ok, .. }) => (*dst, *ok),
            _ => return false,
        };
        if let Some(v) = self.chans[ch].buf.pop_front() {
            if let Some(d) = dst {
                self.set_reg(gid, d, v);
            }
            if let Some(o) = ok_dst {
                self.set_reg(gid, o, Value::Bool(true));
            }
            self.advance(gid);
            return true;
        }
        if self.chans[ch].closed {
            if let Some(d) = dst {
                self.set_reg(gid, d, Value::Nil);
            }
            if let Some(o) = ok_dst {
                self.set_reg(gid, o, Value::Bool(false));
            }
            self.advance(gid);
            return true;
        }
        if let Some(peer) = self.find_counterpart(ch, false) {
            // Take the value from the blocked sender and unblock it.
            if let Some(v) = self.take_from_sender(peer, ch) {
                if let Some(d) = dst {
                    self.set_reg(gid, d, v);
                }
                if let Some(o) = ok_dst {
                    self.set_reg(gid, o, Value::Bool(true));
                }
                self.advance(gid);
                return true;
            }
        }
        false
    }

    fn try_recv_blocked(&mut self, gid: usize, ch: usize) -> bool {
        if self.try_recv_now(gid, ch) {
            self.goroutines[gid].state = GoState::Runnable;
            true
        } else {
            false
        }
    }

    /// Delivers `v` directly to a goroutine blocked receiving on `ch`
    /// (plain recv or select recv case). `unblock` marks it runnable.
    fn deliver_to_receiver(&mut self, peer: usize, ch: usize, v: Value, unblock: bool) {
        let state = self.goroutines[peer].state.clone();
        match state {
            GoState::Blocked(BlockReason::Recv(_)) => {
                if let Some(Instr::Recv { dst, ok, .. }) = self.current_instr(peer).cloned() {
                    if let Some(d) = dst {
                        self.set_reg(peer, d, v);
                    }
                    if let Some(o) = ok {
                        self.set_reg(peer, o, Value::Bool(true));
                    }
                    self.advance(peer);
                    if unblock {
                        self.goroutines[peer].state = GoState::Runnable;
                    }
                }
            }
            GoState::Blocked(BlockReason::Select(_)) => {
                // Commit the select to the matching recv case.
                let frame = self.goroutines[peer].frames.last().expect("live frame");
                let f = self.module.func(frame.func);
                let term = f.blocks[frame.block.0 as usize].term.clone();
                if let Terminator::Select { cases, .. } = term {
                    for case in cases {
                        if let SelectOp::Recv { dst, ok, chan } = &case.op {
                            let cv = self.eval(peer, chan);
                            if matches!(cv, Value::Chan(c) if c == ch) {
                                if let Some(d) = dst {
                                    self.set_reg(peer, *d, v);
                                }
                                if let Some(o) = ok {
                                    self.set_reg(peer, *o, Value::Bool(true));
                                }
                                self.jump_to(peer, case.target);
                                if unblock {
                                    self.goroutines[peer].state = GoState::Runnable;
                                }
                                return;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Extracts the pending value from a goroutine blocked sending on `ch`
    /// (plain send or select send case) and unblocks it.
    fn take_from_sender(&mut self, peer: usize, ch: usize) -> Option<Value> {
        let state = self.goroutines[peer].state.clone();
        match state {
            GoState::Blocked(BlockReason::Send(_)) => {
                if let Some(Instr::Send { value, .. }) = self.current_instr(peer).cloned() {
                    let v = self.eval(peer, &value);
                    self.advance(peer);
                    self.goroutines[peer].state = GoState::Runnable;
                    return Some(v);
                }
                None
            }
            GoState::Blocked(BlockReason::Select(_)) => {
                let frame = self.goroutines[peer].frames.last()?;
                let f = self.module.func(frame.func);
                let term = f.blocks[frame.block.0 as usize].term.clone();
                if let Terminator::Select { cases, .. } = term {
                    for case in cases {
                        if let SelectOp::Send { chan, value } = &case.op {
                            let cv = self.eval(peer, chan);
                            if matches!(cv, Value::Chan(c) if c == ch) {
                                let v = self.eval(peer, value);
                                self.jump_to(peer, case.target);
                                self.goroutines[peer].state = GoState::Runnable;
                                return Some(v);
                            }
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// Re-attempts a blocked `select` by re-executing its terminator. The
    /// goroutine is temporarily marked runnable so it cannot match itself.
    fn try_select_blocked(&mut self, gid: usize) -> bool {
        let Some(frame) = self.goroutines[gid].frames.last() else {
            return false;
        };
        let f = self.module.func(frame.func);
        let term = f.blocks[frame.block.0 as usize].term.clone();
        if !matches!(term, Terminator::Select { .. }) {
            return false;
        }
        self.goroutines[gid].state = GoState::Runnable;
        self.exec_term(gid, &term);
        !matches!(self.goroutines[gid].state, GoState::Blocked(_))
    }

    fn jump_to(&mut self, gid: usize, target: BlockId) {
        let frame = self.goroutines[gid].frames.last_mut().expect("live frame");
        frame.block = target;
        frame.idx = 0;
    }

    fn can_lock(&self, mu: usize, read: bool) -> bool {
        let st = &self.mutexes[mu];
        if read {
            !st.locked
        } else {
            !st.locked && st.readers == 0
        }
    }

    fn do_lock(&mut self, mu: usize, read: bool) {
        let st = &mut self.mutexes[mu];
        if read {
            st.readers += 1;
        } else {
            st.locked = true;
        }
    }

    // ---------------------------------------------------------- terminators

    fn exec_term(&mut self, gid: usize, term: &Terminator) {
        match term {
            Terminator::Jump(b) => self.jump_to(gid, *b),
            Terminator::Branch { cond, then, els } => {
                let c = self.eval(gid, cond);
                self.jump_to(gid, if c.truthy() { *then } else { *els });
            }
            Terminator::Return(vals) => {
                let values: Vec<Value> = vals.iter().map(|v| self.eval(gid, v)).collect();
                let frame = self.goroutines[gid].frames.last_mut().expect("live frame");
                frame.ret_vals = Some(values);
                self.continue_unwind(gid);
            }
            Terminator::Select { cases, default } => {
                // Collect ready cases.
                let mut ready: Vec<usize> = Vec::new();
                for (i, case) in cases.iter().enumerate() {
                    let chan_val = self.eval(gid, case.op.chan());
                    let Value::Chan(ch) = chan_val else { continue }; // nil chan: never ready
                    let ok = match &case.op {
                        SelectOp::Send { .. } => {
                            self.chans[ch].closed
                                || self.chans[ch].buf.len() < self.chans[ch].cap
                                || self.find_counterpart(ch, true).is_some()
                        }
                        SelectOp::Recv { .. } => {
                            !self.chans[ch].buf.is_empty()
                                || self.chans[ch].closed
                                || self.find_counterpart(ch, false).is_some()
                        }
                    };
                    if ok {
                        ready.push(i);
                    }
                }
                if ready.is_empty() {
                    match default {
                        Some(d) => self.jump_to(gid, *d),
                        None => {
                            let chans: Vec<(bool, usize)> = cases
                                .iter()
                                .filter_map(|c| {
                                    let v = self.eval(gid, c.op.chan());
                                    match v {
                                        Value::Chan(ch) => {
                                            Some((matches!(c.op, SelectOp::Send { .. }), ch))
                                        }
                                        _ => None,
                                    }
                                })
                                .collect();
                            self.block_on(gid, BlockReason::Select(chans));
                        }
                    }
                    return;
                }
                let pick = ready[self.rng.gen_range(0..ready.len())];
                self.commit_select_case(gid, &cases[pick]);
            }
            Terminator::Unreachable => {
                // Treat as goroutine end (used after panic statements).
                let frame = self.goroutines[gid].frames.last_mut().expect("live frame");
                frame.ret_vals = Some(vec![]);
                self.continue_unwind(gid);
            }
        }
    }

    fn commit_select_case(&mut self, gid: usize, case: &SelectCase) {
        let chan_val = self.eval(gid, case.op.chan());
        let Value::Chan(ch) = chan_val else { return };
        match &case.op {
            SelectOp::Send { value, .. } => {
                if self.chans[ch].closed {
                    self.panic_program("send on closed channel");
                    return;
                }
                let v = self.eval(gid, value);
                if self.chans[ch].buf.len() < self.chans[ch].cap {
                    self.chans[ch].buf.push_back(v);
                } else if let Some(peer) = self.find_counterpart(ch, true) {
                    self.deliver_to_receiver(peer, ch, v, true);
                } else {
                    return; // became unready; re-execute select next step
                }
                self.jump_to(gid, case.target);
            }
            SelectOp::Recv { dst, ok, .. } => {
                if let Some(v) = self.chans[ch].buf.pop_front() {
                    if let Some(d) = dst {
                        self.set_reg(gid, *d, v);
                    }
                    if let Some(o) = ok {
                        self.set_reg(gid, *o, Value::Bool(true));
                    }
                } else if self.chans[ch].closed {
                    if let Some(d) = dst {
                        self.set_reg(gid, *d, Value::Nil);
                    }
                    if let Some(o) = ok {
                        self.set_reg(gid, *o, Value::Bool(false));
                    }
                } else if let Some(peer) = self.find_counterpart(ch, false) {
                    if let Some(v) = self.take_from_sender(peer, ch) {
                        if let Some(d) = dst {
                            self.set_reg(gid, *d, v);
                        }
                        if let Some(o) = ok {
                            self.set_reg(gid, *o, Value::Bool(true));
                        }
                    } else {
                        return;
                    }
                } else {
                    return;
                }
                self.jump_to(gid, case.target);
            }
        }
    }

    /// Drains defers of the top frame, then pops it, delivering return
    /// values. With `goexit` set, unwinding continues through all frames.
    fn continue_unwind(&mut self, gid: usize) {
        let frame = self.goroutines[gid].frames.last_mut().expect("live frame");
        if let Some(d) = frame.defers.pop() {
            match d.target {
                CallTarget::Func(fid, bound) => {
                    let mut args = bound;
                    args.extend(d.args);
                    self.push_frame(gid, fid, args, vec![], true);
                }
                CallTarget::External => {}
            }
            return;
        }
        // No more defers: pop the frame.
        let frame = self.goroutines[gid].frames.pop().expect("live frame");
        let ret_vals = frame.ret_vals.unwrap_or_default();
        let goexit = self.goroutines[gid].goexit;
        match self.goroutines[gid].frames.last_mut() {
            Some(caller) => {
                if goexit {
                    // Keep unwinding: force the caller into return mode too.
                    if caller.ret_vals.is_none() {
                        caller.ret_vals = Some(vec![]);
                    }
                } else if !frame.is_defer {
                    for (i, d) in frame.ret_dsts.iter().enumerate() {
                        let v = ret_vals.get(i).cloned().unwrap_or(Value::Nil);
                        caller.regs[d.0 as usize] = v;
                    }
                }
            }
            None => self.goroutines[gid].state = GoState::Done,
        }
    }
}
