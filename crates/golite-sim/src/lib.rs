//! # golite-sim — a deterministic-seeded goroutine scheduler for GoLite
//!
//! The GCatch/GFix paper validates patches and measures their overhead by
//! running each buggy application's unit tests on real hardware, injecting
//! random-length sleeps around the channel operations involved in each bug
//! (§5.3). This crate is the testbed substitute: an interpreter for the
//! [`golite_ir`] IR with full Go channel semantics and a seeded random
//! scheduler, able to
//!
//! * realize blocking bugs dynamically (goroutine leaks and global
//!   deadlocks are first-class [`Outcome`]s),
//! * validate GFix patches differentially (buggy program blocks under some
//!   seed, patched program never blocks, outputs agree on clean runs), and
//! * measure patch overhead as executed-instruction counts.
//!
//! # Examples
//!
//! The Figure 1 Docker bug leaks its child goroutine when the context is
//! cancelled first; the simulator finds a seed that realizes the leak:
//!
//! ```
//! let module = golite_ir::lower_source(r#"
//! func main() {
//!     ctx, cancel := context.WithCancel(context.Background())
//!     outDone := make(chan error)
//!     go func() {
//!         outDone <- nil
//!     }()
//!     cancel()
//!     select {
//!     case <-outDone:
//!     case <-ctx.Done():
//!     }
//! }
//! "#).unwrap();
//! let sim = golite_sim::Simulator::new(&module);
//! let reports = sim.explore(&golite_sim::Config::default(), 0..40);
//! assert!(reports.iter().any(|r| r.is_blocking()), "some schedule leaks the child");
//! assert!(reports.iter().any(|r| !r.is_blocking()), "some schedule completes");
//! ```

#![warn(missing_docs)]

mod machine;

pub use machine::{BlockReason, BlockedGoroutine, Config, Outcome, RunReport, Simulator, Value};

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str, seed: u64) -> RunReport {
        let module = golite_ir::lower_source(src).expect("lowering");
        let sim = Simulator::new(&module);
        sim.run(&Config {
            seed,
            ..Config::default()
        })
    }

    fn explore_src(src: &str, n: u64) -> Vec<RunReport> {
        let module = golite_ir::lower_source(src).expect("lowering");
        let sim = Simulator::new(&module);
        sim.explore(&Config::default(), 0..n)
    }

    #[test]
    fn buffered_send_recv_completes() {
        let r = run_src(
            "func main() {\n ch := make(chan int, 1)\n ch <- 42\n x := <-ch\n _ = x\n}",
            0,
        );
        assert_eq!(r.outcome, Outcome::Clean);
    }

    #[test]
    fn unbuffered_rendezvous_completes() {
        for seed in 0..10 {
            let r = run_src(
                "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 7\n }()\n x := <-ch\n _ = x\n}",
                seed,
            );
            assert_eq!(r.outcome, Outcome::Clean, "seed {seed}");
        }
    }

    #[test]
    fn self_deadlock_detected() {
        let r = run_src("func main() {\n ch := make(chan int)\n ch <- 1\n}", 0);
        assert_eq!(r.outcome, Outcome::GlobalDeadlock);
        assert_eq!(r.blocked.len(), 1);
        assert!(matches!(r.blocked[0].reason, BlockReason::Send(_)));
    }

    #[test]
    fn child_leak_detected() {
        // The child sends on an unbuffered channel nobody receives from
        // after main takes the other select case.
        let reports = explore_src(
            "func main() {\n done := make(chan int)\n stop := make(chan int, 1)\n stop <- 1\n go func() {\n  done <- 1\n }()\n select {\n case <-done:\n case <-stop:\n }\n}",
            50,
        );
        assert!(reports.iter().any(|r| r.outcome == Outcome::Leak));
        assert!(reports.iter().any(|r| r.outcome == Outcome::Clean));
    }

    #[test]
    fn closed_channel_receives_zero_values() {
        let r = run_src(
            "func main() {\n ch := make(chan int, 1)\n ch <- 5\n close(ch)\n a, ok1 := <-ch\n b, ok2 := <-ch\n fmt.Println(a, ok1, b, ok2)\n}",
            0,
        );
        assert_eq!(r.outcome, Outcome::Clean);
        assert_eq!(r.output, vec!["5 true <nil> false"]);
    }

    #[test]
    fn send_on_closed_channel_panics() {
        let r = run_src(
            "func main() {\n ch := make(chan int, 1)\n close(ch)\n ch <- 1\n}",
            0,
        );
        assert!(matches!(r.outcome, Outcome::Panic(_)));
    }

    #[test]
    fn close_of_closed_channel_panics() {
        let r = run_src(
            "func main() {\n ch := make(chan int)\n close(ch)\n close(ch)\n}",
            0,
        );
        assert!(matches!(r.outcome, Outcome::Panic(_)));
    }

    #[test]
    fn nil_channel_blocks_forever() {
        let r = run_src("func main() {\n var ch chan int\n <-ch\n}", 0);
        assert_eq!(r.outcome, Outcome::GlobalDeadlock);
        assert!(matches!(r.blocked[0].reason, BlockReason::NilChannelOp));
    }

    #[test]
    fn select_prefers_ready_case() {
        let r = run_src(
            "func main() {\n a := make(chan int, 1)\n b := make(chan int)\n a <- 1\n select {\n case v := <-a:\n  fmt.Println(v)\n case <-b:\n  fmt.Println(99)\n }\n}",
            3,
        );
        assert_eq!(r.outcome, Outcome::Clean);
        assert_eq!(r.output, vec!["1"]);
    }

    #[test]
    fn select_default_when_nothing_ready() {
        let r = run_src(
            "func main() {\n ch := make(chan int)\n select {\n case <-ch:\n  fmt.Println(1)\n default:\n  fmt.Println(2)\n }\n}",
            0,
        );
        assert_eq!(r.output, vec!["2"]);
    }

    #[test]
    fn select_blocks_without_default_then_unblocks() {
        for seed in 0..10 {
            let r = run_src(
                "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 5\n }()\n select {\n case v := <-ch:\n  fmt.Println(v)\n }\n}",
                seed,
            );
            assert_eq!(r.outcome, Outcome::Clean, "seed {seed}");
            assert_eq!(r.output, vec!["5"]);
        }
    }

    #[test]
    fn mutex_mutual_exclusion() {
        // Two goroutines increment a shared struct field under a lock; the
        // final value must be deterministic despite scheduling.
        let src = r#"
type Counter struct {
    mu sync.Mutex
    n int
}

func bump(c *Counter, done chan struct{}, iters int) {
    for i := 0; i < iters; i++ {
        c.mu.Lock()
        c.n = c.n + 1
        c.mu.Unlock()
    }
    done <- struct{}{}
}

func main() {
    c := Counter{n: 0}
    done := make(chan struct{}, 2)
    go bump(&c, done, 10)
    go bump(&c, done, 10)
    <-done
    <-done
    fmt.Println(c.n)
}
"#;
        for seed in 0..10 {
            let r = run_src(src, seed);
            assert_eq!(r.outcome, Outcome::Clean, "seed {seed}");
            assert_eq!(r.output, vec!["20"], "seed {seed}");
        }
    }

    #[test]
    fn double_lock_self_deadlocks() {
        let r = run_src(
            "func main() {\n var mu sync.Mutex\n mu.Lock()\n mu.Lock()\n}",
            0,
        );
        assert_eq!(r.outcome, Outcome::GlobalDeadlock);
        assert!(matches!(r.blocked[0].reason, BlockReason::Lock(_)));
    }

    #[test]
    fn waitgroup_waits_for_children() {
        let src = r#"
func main() {
    var wg sync.WaitGroup
    total := make(chan int, 3)
    wg.Add(3)
    for i := 0; i < 3; i++ {
        go func() {
            total <- 1
            wg.Done()
        }()
    }
    wg.Wait()
    s := 0
    for i := 0; i < 3; i++ {
        s = s + <-total
    }
    fmt.Println(s)
}
"#;
        for seed in 0..10 {
            let r = run_src(src, seed);
            assert_eq!(r.outcome, Outcome::Clean, "seed {seed}");
            assert_eq!(r.output, vec!["3"]);
        }
    }

    #[test]
    fn defer_runs_on_return() {
        let r = run_src(
            "func main() {\n ch := make(chan int, 1)\n defer func() {\n  fmt.Println(\"deferred\")\n }()\n ch <- 1\n fmt.Println(\"body\")\n}",
            0,
        );
        assert_eq!(r.output, vec!["body", "deferred"]);
    }

    #[test]
    fn defer_close_unblocks_ranger() {
        let src = r#"
func produce(ch chan int) {
    defer close(ch)
    for i := 0; i < 3; i++ {
        ch <- i
    }
}

func main() {
    ch := make(chan int)
    go produce(ch)
    s := 0
    for v := range ch {
        s = s + v
    }
    fmt.Println(s)
}
"#;
        for seed in 0..10 {
            let r = run_src(src, seed);
            assert_eq!(r.outcome, Outcome::Clean, "seed {seed}");
            assert_eq!(r.output, vec!["3"]);
        }
    }

    #[test]
    fn fatal_stops_goroutine_running_defers() {
        // Figure 3 shape: Fatal skips the final send, leaking the child —
        // unless a defer provides it.
        let src_buggy = r#"
func Start(stop chan struct{}) {
    <-stop
}

func TestX(t *testing.T) {
    stop := make(chan struct{})
    go Start(stop)
    t.Fatalf("boom")
    stop <- struct{}{}
}
"#;
        let module = golite_ir::lower_source(src_buggy).unwrap();
        let sim = Simulator::new(&module);
        let r = sim.run(&Config {
            entry: "TestX".into(),
            ..Config::default()
        });
        assert_eq!(r.outcome, Outcome::Leak, "child leaks when Fatal fires");

        let src_fixed = r#"
func Start(stop chan struct{}) {
    <-stop
}

func TestX(t *testing.T) {
    stop := make(chan struct{})
    defer func() {
        stop <- struct{}{}
    }()
    go Start(stop)
    t.Fatalf("boom")
}
"#;
        let module = golite_ir::lower_source(src_fixed).unwrap();
        let sim = Simulator::new(&module);
        for seed in 0..10 {
            let r = sim.run(&Config {
                entry: "TestX".into(),
                seed,
                ..Config::default()
            });
            assert_eq!(r.outcome, Outcome::Clean, "seed {seed}");
        }
    }

    #[test]
    fn figure1_docker_bug_leaks_under_some_schedule() {
        let src = r#"
func StdCopy() error {
    return nil
}

func main() {
    ctx, cancel := context.WithCancel(context.Background())
    outDone := make(chan error)
    go func() {
        err := StdCopy()
        outDone <- err
    }()
    cancel()
    select {
    case err := <-outDone:
        _ = err
    case <-ctx.Done():
    }
}
"#;
        let reports = explore_src(src, 60);
        assert!(
            reports.iter().any(|r| r.outcome == Outcome::Leak),
            "the ctx.Done() race must leak under some schedule"
        );
        // And the Figure 1 patch (buffer size 1) never blocks.
        let fixed = src.replace("make(chan error)", "make(chan error, 1)");
        let reports = explore_src(&fixed, 60);
        assert!(
            reports.iter().all(|r| !r.is_blocking()),
            "patched program never blocks"
        );
    }

    #[test]
    fn timer_select_timeout_path() {
        let r = run_src(
            "func main() {\n ch := make(chan int)\n select {\n case <-ch:\n  fmt.Println(\"data\")\n case <-time.After(5):\n  fmt.Println(\"timeout\")\n }\n}",
            1,
        );
        assert_eq!(r.outcome, Outcome::Clean);
        assert_eq!(r.output, vec!["timeout"]);
    }

    #[test]
    fn sleep_injection_still_terminates() {
        let module = golite_ir::lower_source(
            "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}",
        )
        .unwrap();
        let sim = Simulator::new(&module);
        for seed in 0..10 {
            let r = sim.run(&Config {
                seed,
                sleep_injection: true,
                ..Config::default()
            });
            assert_eq!(r.outcome, Outcome::Clean, "seed {seed}");
        }
    }

    #[test]
    fn instruction_count_is_deterministic_per_seed() {
        let src = "func main() {\n ch := make(chan int, 4)\n for i := 0; i < 4; i++ {\n  ch <- i\n }\n s := 0\n for i := 0; i < 4; i++ {\n  s = s + <-ch\n }\n fmt.Println(s)\n}";
        let a = run_src(src, 7);
        let b = run_src(src, 7);
        assert_eq!(a.instrs_executed, b.instrs_executed);
        assert_eq!(a.output, b.output);
        assert_eq!(a.output, vec!["6"]);
    }

    #[test]
    fn step_limit_reports_cleanly() {
        let module =
            golite_ir::lower_source("func main() {\n for {\n  x := 1\n  _ = x\n }\n}").unwrap();
        let sim = Simulator::new(&module);
        let r = sim.run(&Config {
            max_steps: 100,
            ..Config::default()
        });
        assert_eq!(r.outcome, Outcome::StepLimit);
    }

    #[test]
    fn global_initializers_run_before_main() {
        let r = run_src("var n int = 41\nfunc main() {\n fmt.Println(n + 1)\n}", 0);
        assert_eq!(r.output, vec!["42"]);
    }

    #[test]
    fn cond_signal_wakes_waiter() {
        let src = r#"
func main() {
    var c sync.Cond
    done := make(chan int, 1)
    go func() {
        c.Wait()
        done <- 1
    }()
    time.Sleep(3)
    c.Signal()
    <-done
}
"#;
        for seed in 0..5 {
            let r = run_src(src, seed);
            assert_eq!(r.outcome, Outcome::Clean, "seed {seed}");
        }
    }
}
