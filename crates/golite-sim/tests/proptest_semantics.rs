//! Property tests for the simulator's channel semantics: FIFO delivery,
//! conservation (everything sent is received exactly once), and
//! schedule-independence of deterministic results. Parameters are drawn from
//! a seeded generator (no external property-testing crate).

use golite_sim::{Config, Outcome, Simulator};
use prng::Prng;

const CASES: u64 = 48;

/// A producer/consumer program parameterized by buffer size and counts.
fn pipeline_program(cap: usize, n: usize) -> String {
    format!(
        r#"
package main

func main() {{
    ch := make(chan int, {cap})
    done := make(chan int, 1)
    go func() {{
        s := 0
        for i := 0; i < {n}; i++ {{
            v := <-ch
            s = s + v
        }}
        done <- s
    }}()
    for i := 0; i < {n}; i++ {{
        ch <- i
    }}
    fmt.Println(<-done)
}}
"#
    )
}

/// A program where two goroutines each send a distinct tagged sequence into
/// one channel; per-sender order must be preserved (Go guarantees FIFO per
/// channel, hence also per sender).
fn fifo_program(n: usize) -> String {
    format!(
        r#"
package main

func main() {{
    ch := make(chan int)
    go func() {{
        for i := 0; i < {n}; i++ {{
            ch <- i
        }}
    }}()
    prev := 0 - 1
    for i := 0; i < {n}; i++ {{
        v := <-ch
        if v <= prev {{
            panic("out of order")
        }}
        prev = v
    }}
}}
"#
    )
}

/// The sum of everything sent always arrives, for any buffer size,
/// element count, and schedule.
#[test]
fn conservation_of_messages() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(case);
        let cap = rng.gen_range(0usize..4);
        let n = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..64);
        let src = pipeline_program(cap, n);
        let module = golite_ir::lower_source(&src).expect("program lowers");
        let sim = Simulator::new(&module);
        let report = sim.run(&Config {
            seed,
            ..Config::default()
        });
        assert_eq!(
            report.outcome,
            Outcome::Clean,
            "case {case} (cap={cap}, n={n}, seed={seed}): outcome {:?}",
            report.outcome
        );
        let expected: i64 = (0..n as i64).sum();
        assert_eq!(&report.output, &vec![expected.to_string()], "case {case}");
    }
}

/// Single-sender FIFO order holds under every schedule and buffering.
#[test]
fn fifo_order_is_preserved() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(case ^ 0x1F1F0);
        let n = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..64);
        let src = fifo_program(n);
        let module = golite_ir::lower_source(&src).expect("program lowers");
        let sim = Simulator::new(&module);
        let report = sim.run(&Config {
            seed,
            ..Config::default()
        });
        assert_eq!(
            report.outcome,
            Outcome::Clean,
            "case {case} (n={n}, seed={seed}): outcome {:?}",
            report.outcome
        );
    }
}

/// Runs are reproducible: identical seeds give identical step counts,
/// instruction counts, and outputs.
#[test]
fn seeded_runs_are_deterministic() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(case ^ 0x00DE_7E21);
        let cap = rng.gen_range(0usize..3);
        let n = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0u64..32);
        let src = pipeline_program(cap, n);
        let module = golite_ir::lower_source(&src).expect("program lowers");
        let sim = Simulator::new(&module);
        let a = sim.run(&Config {
            seed,
            ..Config::default()
        });
        let b = sim.run(&Config {
            seed,
            ..Config::default()
        });
        assert_eq!(a.steps, b.steps, "case {case}");
        assert_eq!(a.instrs_executed, b.instrs_executed, "case {case}");
        assert_eq!(a.output, b.output, "case {case}");
    }
}

/// Sleep injection perturbs schedules but never semantics.
#[test]
fn sleep_injection_preserves_results() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(case ^ 0x0005_1EE9);
        let n = rng.gen_range(1usize..6);
        let seed = rng.gen_range(0u64..32);
        let src = pipeline_program(1, n);
        let module = golite_ir::lower_source(&src).expect("program lowers");
        let sim = Simulator::new(&module);
        let plain = sim.run(&Config {
            seed,
            ..Config::default()
        });
        let slept = sim.run(&Config {
            seed,
            sleep_injection: true,
            ..Config::default()
        });
        assert_eq!(
            plain.output, slept.output,
            "case {case} (n={n}, seed={seed})"
        );
        assert_eq!(slept.outcome, Outcome::Clean, "case {case}");
    }
}
