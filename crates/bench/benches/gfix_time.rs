//! E12 — bench: GFix phase split — preprocessing (IR, call graph,
//! alias analysis, detection) versus patch synthesis.
//!
//! Paper shape (§5.3): ~98% of GFix's time is preprocessing; the actual
//! transformation averages 1.9 s versus 90 s end-to-end.

use bench::timing::bench;
use gcatch::GCatch;
use gfix::Pipeline;
use go_corpus::apps::{generate_all, GenConfig};

fn main() {
    let apps = generate_all(&GenConfig {
        seed: 7,
        filler_per_kloc: 0.02,
    });
    let app = apps.iter().find(|a| a.name == "gRPC").expect("app exists");
    let pipeline = Pipeline::from_source(&app.source).expect("replica lowers");
    let config = gcatch::DetectorConfig::default();

    bench("gfix_phases/preprocess_and_detect", 10, || {
        let gcatch = GCatch::new(pipeline.module());
        gcatch.detect_bmoc(&config).len()
    });

    // Pre-built analyses: measure the pure transformation step.
    let gcatch = GCatch::new(pipeline.module());
    let bugs = gcatch.detect_bmoc(&config);
    let detector = gcatch.detector();
    let gfix_sys = gfix::GFix::new(
        pipeline.program(),
        pipeline.module(),
        &detector.analysis,
        &detector.prims,
    );
    bench("gfix_phases/transform_only", 10, || {
        bugs.iter().filter(|bug| gfix_sys.fix(bug).is_ok()).count()
    });
}
