//! E6 — bench: the §5.2 disentangling ablation.
//!
//! Paper shape: disabling disentangling (analyzing every channel from
//! `main` with *all* primitives in its Pset) slows detection by over 115×
//! on the package containing `main`. The replica interconnects many
//! channels from one `main` so whole-program mode pays the full
//! path-combination and constraint-size cost.

use bench::timing::bench;
use gcatch::{Detector, DetectorConfig};
use golite_ir::Module;

/// A program with `n` producer/consumer channel pairs all rooted in main —
/// disentangled analysis sees tiny scopes; whole-program analysis sees one
/// giant combination space.
fn interconnected(n: usize) -> Module {
    let mut src = String::from("package main\n");
    for i in 0..n {
        src.push_str(&format!(
            r#"
func stage{i}() {{
    ch{i} := make(chan int)
    fin{i} := make(chan int, 1)
    fin{i} <- 1
    go func() {{
        ch{i} <- {i}
    }}()
    select {{
    case v := <-ch{i}:
        _ = v
    case <-fin{i}:
        return
    }}
}}
"#
        ));
    }
    src.push_str("\nfunc main() {\n");
    for i in 0..n {
        src.push_str(&format!("    stage{i}()\n"));
    }
    src.push_str("}\n");
    golite_ir::lower_source(&src).expect("ablation program lowers")
}

fn main() {
    let module = interconnected(6);

    bench("disentangling_ablation/disentangled", 10, || {
        let detector = Detector::new(&module);
        let config = DetectorConfig {
            disentangle: true,
            ..DetectorConfig::default()
        };
        detector.detect_bmoc(&config).len()
    });
    bench("disentangling_ablation/whole_program", 10, || {
        let detector = Detector::new(&module);
        let config = DetectorConfig {
            disentangle: false,
            ..DetectorConfig::default()
        };
        detector.detect_bmoc(&config).len()
    });
}
