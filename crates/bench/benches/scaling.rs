//! E5 — bench: BMOC detection time versus application size.
//!
//! Paper shape (§5.2): analysis time grows with application size — the
//! largest application dominates, small applications are near-instant.

use bench::timing::bench;
use gcatch::{Detector, DetectorConfig};
use go_corpus::apps::{generate_all, GenConfig};

fn main() {
    let apps = generate_all(&GenConfig {
        seed: 7,
        filler_per_kloc: 0.02,
    });
    for name in ["mkcert", "bbolt", "gRPC", "etcd", "Docker", "Kubernetes"] {
        let app = apps.iter().find(|a| a.name == name).expect("app exists");
        let module = golite_ir::lower_source(&app.source).expect("replica lowers");
        let size = module.instr_count();
        bench(
            &format!("detect_by_app_size/gcatch/{name}-{size}instrs"),
            10,
            || {
                let detector = Detector::new(&module);
                detector.detect_bmoc(&DetectorConfig::default()).len()
            },
        );
    }
}
