//! E5 — Criterion bench: BMOC detection time versus application size.
//!
//! Paper shape (§5.2): analysis time grows with application size — the
//! largest application dominates, small applications are near-instant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcatch::{Detector, DetectorConfig};
use go_corpus::apps::{generate_all, GenConfig};

fn bench_scaling(c: &mut Criterion) {
    let apps = generate_all(&GenConfig { seed: 7, filler_per_kloc: 0.02 });
    let mut group = c.benchmark_group("detect_by_app_size");
    group.sample_size(10);
    for name in ["mkcert", "bbolt", "gRPC", "etcd", "Docker", "Kubernetes"] {
        let app = apps.iter().find(|a| a.name == name).expect("app exists");
        let module = golite_ir::lower_source(&app.source).expect("replica lowers");
        let size = module.instr_count();
        group.bench_with_input(
            BenchmarkId::new("gcatch", format!("{name}-{size}instrs")),
            &module,
            |b, module| {
                b.iter(|| {
                    let detector = Detector::new(module);
                    detector.detect_bmoc(&DetectorConfig::default()).len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
