//! E10 — bench: simulated runtime of original versus patched
//! programs (the §5.3 overhead measurement).
//!
//! Paper shape: patches are nearly free (average 0.26% overhead) — the two
//! curves must be indistinguishable.

use bench::timing::bench;
use gfix::Pipeline;
use go_corpus::patterns::{emit, PatternKind};
use golite_sim::{Config, Simulator};

fn main() {
    let plant = emit(PatternKind::SingleSend, 777);
    let source = format!("package main\n{}\nfunc main() {{\n}}\n", plant.source);
    let pipeline = Pipeline::from_source(&source).expect("pattern parses");
    let results = pipeline.run(&gcatch::DetectorConfig::default());
    let patch = results
        .patches
        .first()
        .expect("single-send is fixable")
        .clone();
    let entry = plant.entry.expect("single-send is drivable");

    let original = golite_ir::lower_source(&patch.before).expect("original lowers");
    let patched = golite_ir::lower_source(&patch.after).expect("patched lowers");

    {
        let sim = Simulator::new(&original);
        let entry = entry.clone();
        bench("patch_overhead/original", 20, move || {
            sim.run(&Config {
                entry: entry.clone(),
                seed: 3,
                ..Config::default()
            })
            .instrs_executed
        });
    }
    {
        let sim = Simulator::new(&patched);
        bench("patch_overhead/patched", 20, move || {
            sim.run(&Config {
                entry: entry.clone(),
                seed: 3,
                ..Config::default()
            })
            .instrs_executed
        });
    }
}
