//! E10 — Criterion bench: simulated runtime of original versus patched
//! programs (the §5.3 overhead measurement).
//!
//! Paper shape: patches are nearly free (average 0.26% overhead) — the two
//! curves must be indistinguishable.

use criterion::{criterion_group, criterion_main, Criterion};
use gfix::Pipeline;
use go_corpus::patterns::{emit, PatternKind};
use golite_sim::{Config, Simulator};

fn bench_patch_overhead(c: &mut Criterion) {
    let plant = emit(PatternKind::SingleSend, 777);
    let source = format!("package main\n{}\nfunc main() {{\n}}\n", plant.source);
    let pipeline = Pipeline::from_source(&source).expect("pattern parses");
    let results = pipeline.run(&gcatch::DetectorConfig::default());
    let patch = results.patches.first().expect("single-send is fixable").clone();
    let entry = plant.entry.expect("single-send is drivable");

    let original = golite_ir::lower_source(&patch.before).expect("original lowers");
    let patched = golite_ir::lower_source(&patch.after).expect("patched lowers");

    let mut group = c.benchmark_group("patch_overhead");
    group.sample_size(20);
    group.bench_function("original", |b| {
        let sim = Simulator::new(&original);
        b.iter(|| {
            sim.run(&Config { entry: entry.clone(), seed: 3, ..Config::default() })
                .instrs_executed
        })
    });
    group.bench_function("patched", |b| {
        let sim = Simulator::new(&patched);
        b.iter(|| {
            sim.run(&Config { entry: entry.clone(), seed: 3, ..Config::default() })
                .instrs_executed
        })
    });
    group.finish();
}

criterion_group!(benches, bench_patch_overhead);
criterion_main!(benches);
