//! Supporting bench: throughput of the minismt constraint solver on
//! GCatch-shaped instances (order chains + match variables + buffer sums).
//! This is the component the paper offloads to Z3; its cost dominates the
//! per-group query time of the BMOC detector.

use bench::timing::bench;
use minismt::{Atom, Cmp, Solver, Term};

/// Builds a GCatch-like instance: two goroutines with `n` ops each on one
/// unbuffered channel, full match-variable matrix, exactly-one matching.
fn build_instance(n: usize) -> Solver {
    let mut s = Solver::new();
    let sends: Vec<_> = (0..n).map(|_| s.fresh_int()).collect();
    let recvs: Vec<_> = (0..n).map(|_| s.fresh_int()).collect();
    for w in sends.windows(2) {
        s.assert(Term::lt(w[0], w[1]));
    }
    for w in recvs.windows(2) {
        s.assert(Term::lt(w[0], w[1]));
    }
    let mut p = vec![vec![None; n]; n];
    for (i, &si) in sends.iter().enumerate() {
        for (j, &rj) in recvs.iter().enumerate() {
            let v = s.fresh_bool();
            p[i][j] = Some(v);
            s.assert(Term::implies(Term::var(v), Term::eq_int(si, rj)));
        }
    }
    for (i, p_row) in p.iter().enumerate() {
        let row: Vec<Atom> = p_row
            .iter()
            .map(|v| Atom::Bool(v.expect("built")))
            .collect();
        s.assert(Term::exactly_one(row));
        let col: Vec<Atom> = (0..n)
            .map(|j| Atom::Bool(p[j][i].expect("built")))
            .collect();
        s.assert(Term::Linear {
            terms: col.into_iter().map(|a| (1, a)).collect(),
            cmp: Cmp::Le,
            k: 1,
        });
    }
    s
}

fn main() {
    for n in [2usize, 4, 6] {
        bench(
            &format!("solver_gcatch_instances/match_matrix-{n}"),
            20,
            move || {
                let mut s = build_instance(n);
                s.solve().is_sat()
            },
        );
    }
}
