//! A minimal wall-clock benchmark harness.
//!
//! The workspace carries no external benchmarking dependency, so the bench
//! binaries (declared with `harness = false`) time their workloads directly:
//! a short warm-up, then `samples` timed runs, reported as min/median/mean.
//! A `black_box` sink keeps the optimizer from deleting the measured work.

use gcatch::{HistSnapshot, Histogram};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark measurement: per-sample durations plus summary statistics.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label (group/function form, e.g. `solver/match_matrix-4`).
    pub name: String,
    /// Individual sample durations, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Measurement {
    pub fn min(&self) -> Duration {
        self.samples.first().copied().unwrap_or_default()
    }

    pub fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::default();
        }
        self.samples[self.samples.len() / 2]
    }

    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::default();
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    /// Folds the samples into a log-bucketed [`Histogram`] snapshot, the
    /// same representation the detector's `--stats` percentiles use.
    pub fn histogram(&self) -> HistSnapshot {
        let hist = Histogram::default();
        for d in &self.samples {
            hist.record(d.as_nanos() as u64);
        }
        hist.snapshot()
    }

    /// `p50 / p90 / p99` summary line from the histogram snapshot.
    pub fn percentile_summary(&self) -> String {
        let h = self.histogram();
        format!(
            "p50 {:?}  p90 {:?}  p99 {:?}",
            Duration::from_nanos(h.percentile(50)),
            Duration::from_nanos(h.percentile(90)),
            Duration::from_nanos(h.percentile(99)),
        )
    }
}

/// Times `f` for `samples` iterations (plus one untimed warm-up), prints a
/// one-line summary, and returns the measurement.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    black_box(f());
    let mut durations = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        durations.push(start.elapsed());
    }
    durations.sort();
    let m = Measurement {
        name: name.to_string(),
        samples: durations,
    };
    println!(
        "{:<44} min {:>12?}  median {:>12?}  mean {:>12?}  {}  ({} samples)",
        m.name,
        m.min(),
        m.median(),
        m.mean(),
        m.percentile_summary(),
        m.samples.len()
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_all_samples() {
        let mut n = 0u64;
        let m = bench("test/noop", 5, || {
            n += 1;
            n
        });
        assert_eq!(m.samples.len(), 5);
        // warm-up + 5 timed runs
        assert_eq!(n, 6);
        assert!(m.min() <= m.median() && m.median() <= *m.samples.last().unwrap());
    }

    #[test]
    fn histogram_summary_covers_all_samples() {
        let m = bench("test/noop", 7, || 0u8);
        let h = m.histogram();
        assert_eq!(h.count, 7);
        // Percentiles are bucket upper bounds clamped to the observed max.
        assert!(h.percentile(99) <= h.max);
        assert!(h.percentile(50) <= h.percentile(99));
        assert!(m.percentile_summary().contains("p50"));
    }
}
