//! Shared helpers for the benchmark harness: replica generation at a
//! configurable scale and plain-text table rendering.

use gcatch::DetectorConfig;
use go_corpus::apps::{generate_all, GenConfig, GeneratedApp};

pub mod amplifier;
pub mod timing;

/// Reads the filler scale from `GCATCH_FILLER` (filler functions per kLoC of
/// the original application). The default keeps full-corpus runs under a
/// minute while preserving Table 1's size ordering.
pub fn filler_per_kloc() -> f64 {
    std::env::var("GCATCH_FILLER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// Generates all 21 replicas at the configured scale.
pub fn corpus() -> Vec<GeneratedApp> {
    generate_all(&GenConfig {
        seed: 2026,
        filler_per_kloc: filler_per_kloc(),
    })
}

/// The detector configuration used by every harness.
pub fn detector_config() -> DetectorConfig {
    DetectorConfig::default()
}

/// Renders rows as a fixed-width table with a header and separator.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(4)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a Table 1 cell as `real/fp` (matching the paper's `x_y`).
pub fn cell(real: usize, fp: usize) -> String {
    if real == 0 && fp == 0 {
        "-".to_string()
    } else {
        format!("{real}/{fp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["App", "Bugs"],
            &[
                vec!["Docker".into(), "56".into()],
                vec!["bbolt".into(), "6".into()],
            ],
        );
        assert!(t.contains("Docker"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(cell(0, 0), "-");
        assert_eq!(cell(21, 2), "21/2");
    }
}
