//! Corpus amplifier: parameterized synthetic suites that scale the channel
//! population into the thousands while keeping ground truth exact.
//!
//! Three levers mirror the three optimizations of the corpus-scale
//! refactor:
//!
//! * **shape classes** — channel units are stamped from a small set of
//!   structural templates; instances of one class differ only in
//!   identifiers, so the cross-channel verdict cache shares their solver
//!   work (the canonical encoding key abstracts names away);
//! * **leak ratio** — every `leak_every`-th unit uses the blocking
//!   (Fig. 1) template and yields a report, so report byte-identity can be
//!   asserted across configurations at any scale;
//! * **ballast** — struct-manipulating helper clusters with points-to
//!   constraints but no sync operations and no dynamic calls. Eager alias
//!   analysis solves them; demand mode proves they are never queried and
//!   skips them, exactly the "bulk of a realistic corpus" case.

/// Suite parameters.
#[derive(Debug, Clone, Copy)]
pub struct AmpConfig {
    /// Total channel units (one channel each).
    pub channels: usize,
    /// Every k-th unit is the blocking (report-producing) shape; the rest
    /// cycle through the safe shapes. 0 disables planted leaks.
    pub leak_every: usize,
    /// Ballast clusters (a struct type plus two helper functions each).
    pub ballast: usize,
}

impl Default for AmpConfig {
    fn default() -> AmpConfig {
        AmpConfig {
            channels: 1000,
            leak_every: 50,
            ballast: 500,
        }
    }
}

/// The number of distinct structural shapes [`generate`] cycles through
/// for safe units. The verdict cache converges after one solve per shape.
pub const SAFE_SHAPES: usize = 3;

/// Generates one GoLite module at the configured scale. Deterministic:
/// the same config always yields the same source text.
pub fn generate(config: &AmpConfig) -> String {
    let mut src = String::with_capacity(config.channels * 256 + config.ballast * 200);
    for i in 0..config.channels {
        let leaky = config.leak_every != 0 && i % config.leak_every == config.leak_every - 1;
        if leaky {
            leak_unit(&mut src, i);
        } else {
            match i % SAFE_SHAPES {
                0 => safe_select_unit(&mut src, i),
                1 => safe_relay_unit(&mut src, i),
                _ => safe_worker_unit(&mut src, i),
            }
        }
    }
    for j in 0..config.ballast {
        ballast_cluster(&mut src, j);
    }
    src
}

/// How many reports a suite generated from `config` must produce.
pub fn expected_leaks(config: &AmpConfig) -> usize {
    config.channels.checked_div(config.leak_every).unwrap_or(0)
}

/// [`generate`] with path-heavy units: every channel sits between two
/// branch ladders whose arms all perform the same communication, so the
/// enumerator multiplies paths (and the solver checks many combinations
/// per channel) without the branching changing any verdict. This makes
/// per-channel detection dominate whole-module analysis — the regime the
/// serve warm-session bench measures, where replaying a verdict skips
/// the dominant cost.
pub fn generate_deep(config: &AmpConfig) -> String {
    let mut src = String::with_capacity(config.channels * 640 + config.ballast * 200);
    for i in 0..config.channels {
        let leaky = config.leak_every != 0 && i % config.leak_every == config.leak_every - 1;
        deep_unit(&mut src, i, leaky);
    }
    for j in 0..config.ballast {
        ballast_cluster(&mut src, j);
    }
    src
}

/// Rendezvous unit with four `if`/`else` pairs around the sends and
/// four around the receives: 16 x 16 enumerated path combinations per
/// channel. Safe shape: both arms of every pair communicate, so all 4
/// sends always pair with all 4 receives. Leaky shape: the last receive
/// happens on only one arm, so the child's fourth send blocks on the
/// other — one report per leaky unit, on every path combination that
/// takes that arm.
fn deep_unit(src: &mut String, i: usize, leaky: bool) {
    let last = if leaky {
        format!("if deepf{i} > 0 {{\n        <-deepch{i}\n    }}")
    } else {
        format!(
            "if deepf{i} > 0 {{\n        <-deepch{i}\n    }} else {{\n        <-deepch{i}\n    }}"
        )
    };
    src.push_str(&format!(
        r#"
func DeepRun{i}(deepa{i} int, deepb{i} int, deepc{i} int, deepd{i} int, deepe{i} int, deepf{i} int, deepg{i} int, deeph{i} int) {{
    deepch{i} := make(chan int)
    go func() {{
        if deepa{i} > 0 {{
            deepch{i} <- 1
        }} else {{
            deepch{i} <- 2
        }}
        if deepb{i} > 0 {{
            deepch{i} <- 3
        }} else {{
            deepch{i} <- 4
        }}
        if deepc{i} > 0 {{
            deepch{i} <- 5
        }} else {{
            deepch{i} <- 6
        }}
        if deepg{i} > 0 {{
            deepch{i} <- 7
        }} else {{
            deepch{i} <- 8
        }}
    }}()
    if deepd{i} > 0 {{
        <-deepch{i}
    }} else {{
        <-deepch{i}
    }}
    if deepe{i} > 0 {{
        <-deepch{i}
    }} else {{
        <-deepch{i}
    }}
    if deeph{i} > 0 {{
        <-deepch{i}
    }} else {{
        <-deepch{i}
    }}
    {last}
}}
"#
    ));
}

/// Fig. 1 shape: the child's single send is orphaned when the select
/// takes the pre-filled quit arm. Blocking — produces one report.
fn leak_unit(src: &mut String, i: usize) {
    src.push_str(&format!(
        r#"
func leakJob{i}() error {{
    return nil
}}

func LeakRun{i}() {{
    leakdone{i} := make(chan error)
    leakquit{i} := make(chan struct{{}}, 1)
    leakquit{i} <- struct{{}}{{}}
    go func() {{
        leakdone{i} <- leakJob{i}()
    }}()
    select {{
    case err := <-leakdone{i}:
        _ = err
    case <-leakquit{i}:
        return
    }}
}}
"#
    ));
}

/// Same select shape with a buffered result channel: the child's send
/// always completes, so the solver proves every group safe.
fn safe_select_unit(src: &mut String, i: usize) {
    src.push_str(&format!(
        r#"
func safeJob{i}() error {{
    return nil
}}

func SafeRun{i}() {{
    safedone{i} := make(chan error, 1)
    safequit{i} := make(chan struct{{}}, 1)
    safequit{i} <- struct{{}}{{}}
    go func() {{
        safedone{i} <- safeJob{i}()
    }}()
    select {{
    case err := <-safedone{i}:
        _ = err
    case <-safequit{i}:
        return
    }}
}}
"#
    ));
}

/// Unbuffered rendezvous where the parent always receives: safe, but the
/// group still reaches the solver.
fn safe_relay_unit(src: &mut String, i: usize) {
    src.push_str(&format!(
        r#"
func RelayRun{i}() {{
    relaymsg{i} := make(chan int)
    go func() {{
        relaymsg{i} <- 1
    }}()
    <-relaymsg{i}
}}
"#
    ));
}

/// Buffered worker handoff: send then receive in program order, safe.
fn safe_worker_unit(src: &mut String, i: usize) {
    src.push_str(&format!(
        r#"
func WorkerRun{i}() {{
    workch{i} := make(chan int, 1)
    go func() {{
        workch{i} <- 2
    }}()
    <-workch{i}
}}
"#
    ));
}

/// A struct type plus statically-called helpers that thread allocations
/// through parameters and returns: real points-to constraints (allocation
/// sites, copy edges, return flows) but no sync operations, no dynamic
/// calls, and no field accesses — nothing any checker queries — so
/// demand-mode alias never solves the component while eager mode pays for
/// the whole cluster. (Field reads are deliberately absent: the lockset
/// race checker queries points-to for every `FieldLoad`/`FieldStore`,
/// which would demand the component.)
fn ballast_cluster(src: &mut String, j: usize) {
    src.push_str(&format!(
        r#"
type Ballast{j} struct {{
    lo int
    hi int
}}

func ballastMake{j}(n int) Ballast{j} {{
    return Ballast{j}{{lo: n, hi: n + 1}}
}}

func ballastWrap{j}(b Ballast{j}) Ballast{j} {{
    return b
}}

func ballastFold{j}() Ballast{j} {{
    a := ballastMake{j}(3)
    b := ballastWrap{j}(a)
    c := ballastWrap{j}(ballastMake{j}(7))
    d := ballastWrap{j}(c)
    _ = b
    return d
}}
"#
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_lowers_and_counts_hold() {
        let config = AmpConfig {
            channels: 12,
            leak_every: 4,
            ballast: 3,
        };
        let src = generate(&config);
        let module = golite_ir::lower_source(&src).expect("amplified suite lowers");
        let gcatch = gcatch::GCatch::new(&module);
        let bugs = gcatch.detect_all(&gcatch::DetectorConfig::default());
        assert_eq!(bugs.len(), expected_leaks(&config), "one report per leak");
    }

    #[test]
    fn generation_is_deterministic() {
        let config = AmpConfig::default();
        assert_eq!(generate(&config), generate(&config));
    }
}
