//! E1 — regenerates **Table 1**: per-application bug counts for every
//! detector (real/FP) plus the GFix per-strategy fix counts.
//!
//! Paper shape to reproduce: 149 BMOC bugs (147 C + 2 M) with 51 FPs (≈3:1
//! true-to-false ratio), 119 traditional bugs with 67 FPs, and 124 GFix
//! patches split 99 / 4 / 21 across the strategies.

use bench::{cell, corpus, detector_config, render_table};
use gcatch::{BatchConfig, BugKind, Counter, HistSnapshot, Metric};
use gfix::Strategy;
use go_corpus::census::run_apps_supervised;

fn main() {
    let apps = corpus();
    let config = detector_config();
    let mut rows = Vec::new();
    let mut totals = [(0usize, 0usize); 7];
    let mut gfix_totals = [0usize; 3];
    let mut pipeline_totals = [0u64; 4];
    let mut hist_totals: Vec<(Metric, HistSnapshot)> = Metric::all()
        .into_iter()
        .map(|m| (m, HistSnapshot::default()))
        .collect();
    let kinds = [
        BugKind::BmocChannel,
        BugKind::BmocChannelMutex,
        BugKind::MissingUnlock,
        BugKind::DoubleLock,
        BugKind::ConflictingLockOrder,
        BugKind::StructFieldRace,
        BugKind::FatalInChildGoroutine,
    ];

    // Replica scheduling goes through the supervised batch engine: a
    // replica that panics is retried and, if hopeless, quarantined as an
    // incident below instead of killing the whole table.
    let (results, incidents) = run_apps_supervised(
        &apps,
        &config,
        BatchConfig {
            workers: 2,
            ..BatchConfig::default()
        },
    );
    for incident in &incidents {
        eprint!("warning: {}", incident.render());
    }
    for result in &results {
        if !result.missed.is_empty() {
            eprintln!(
                "warning: {} missed plants: {:?}",
                result.name, result.missed
            );
        }
        for (i, c) in [
            Counter::ChannelsAnalyzed,
            Counter::PathsEnumerated,
            Counter::GroupsChecked,
            Counter::SolverQueries,
        ]
        .into_iter()
        .enumerate()
        {
            pipeline_totals[i] += result.stats.counter(c);
        }
        for (m, total) in &mut hist_totals {
            total.merge(result.stats.hist(*m));
        }
        let mut row = vec![result.name.to_string()];
        for (i, kind) in kinds.iter().enumerate() {
            let c = result.cells.get(kind).copied().unwrap_or_default();
            totals[i].0 += c.real;
            totals[i].1 += c.fp;
            row.push(cell(c.real, c.fp));
        }
        row.push(cell(result.total_real(), result.total_fp()));
        let s1 = result
            .gfix
            .get(&Strategy::IncreaseBuffer)
            .copied()
            .unwrap_or(0);
        let s2 = result
            .gfix
            .get(&Strategy::DeferOperation)
            .copied()
            .unwrap_or(0);
        let s3 = result
            .gfix
            .get(&Strategy::AddStopChannel)
            .copied()
            .unwrap_or(0);
        gfix_totals[0] += s1;
        gfix_totals[1] += s2;
        gfix_totals[2] += s3;
        for v in [s1, s2, s3] {
            row.push(if v == 0 { "-".into() } else { v.to_string() });
        }
        row.push((s1 + s2 + s3).to_string());
        rows.push(row);
    }
    let mut total_row = vec!["Total".to_string()];
    let mut sum_real = 0;
    let mut sum_fp = 0;
    for (real, fp) in totals {
        sum_real += real;
        sum_fp += fp;
        total_row.push(cell(real, fp));
    }
    total_row.push(cell(sum_real, sum_fp));
    for v in gfix_totals {
        total_row.push(v.to_string());
    }
    total_row.push(gfix_totals.iter().sum::<usize>().to_string());
    rows.push(total_row);

    println!("Table 1 — bugs detected per application (real/FP) and GFix fixes\n");
    println!(
        "{}",
        render_table(
            &[
                "App", "BMOC-C", "BMOC-M", "Unlock", "Double", "Conflict", "Struct", "Fatal",
                "Total", "S-I", "S-II", "S-III", "Fixed",
            ],
            &rows
        )
    );
    println!("paper: BMOC 149 real + 51 FP; traditional 119 real + 67 FP; GFix 99/4/21 = 124");
    println!(
        "pipeline: {} channels analyzed, {} paths enumerated, {} groups checked, {} solver queries",
        pipeline_totals[0], pipeline_totals[1], pipeline_totals[2], pipeline_totals[3]
    );
    println!("corpus-wide percentiles (p50/p90/p99/max):");
    for (m, h) in &hist_totals {
        if m.is_time() {
            let ms = |ns: u64| format!("{}.{:03} ms", ns / 1_000_000, (ns / 1_000) % 1_000);
            println!(
                "  {:<20} {} / {} / {} / {}  (n={})",
                m.name(),
                ms(h.percentile(50)),
                ms(h.percentile(90)),
                ms(h.percentile(99)),
                ms(h.max),
                h.count
            );
        } else {
            println!(
                "  {:<20} {} / {} / {} / {}  (n={})",
                m.name(),
                h.percentile(50),
                h.percentile(90),
                h.percentile(99),
                h.max,
                h.count
            );
        }
    }
}
