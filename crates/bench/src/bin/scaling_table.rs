//! E5 — §5.2 scaling: per-application analysis time versus program size.
//!
//! Paper shape: the largest application (Kubernetes, >3 MLoC) takes the
//! longest (25.6 h on the authors' machine); ten small applications finish
//! in under a minute. Absolute numbers differ (replicas are smaller), but
//! the size → time ordering must hold.

use bench::{corpus, detector_config, render_table};
use go_corpus::census::run_app;

fn main() {
    let apps = corpus();
    let config = detector_config();
    let mut rows_data: Vec<(String, usize, f64, usize)> = Vec::new();
    for app in &apps {
        let result = run_app(app, &config);
        rows_data.push((
            result.name.to_string(),
            result.instr_count,
            result.detect_time.as_secs_f64() * 1e3,
            result.total_real(),
        ));
    }
    rows_data.sort_by_key(|r| std::cmp::Reverse(r.1));
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|(name, instrs, ms, bugs)| {
            vec![
                name.clone(),
                instrs.to_string(),
                format!("{ms:.1}"),
                bugs.to_string(),
            ]
        })
        .collect();
    println!("Analysis scaling (§5.2) — sorted by program size\n");
    println!(
        "{}",
        render_table(
            &["App", "IR instructions", "detect (ms)", "real bugs"],
            &rows
        )
    );
    let largest = &rows_data[0];
    println!(
        "largest replica: {} ({} instrs, {:.1} ms)  [paper: Kubernetes, 25.6 h]",
        largest.0, largest.1, largest.2
    );
}
