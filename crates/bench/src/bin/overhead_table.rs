//! E10 — §5.3 patch runtime overhead, measured as executed instructions in
//! clean simulator runs of the original versus patched programs.
//!
//! Paper shape: average overhead 0.26%, maximum 3.77%, only 14 of 116
//! measured bugs above 1%.

use bench::render_table;
use gfix::{Pipeline, Strategy};
use go_corpus::patterns::{emit, PatternKind};

fn main() {
    let config = bench::detector_config();
    // Measure the single-sending population (99 of the paper's 124 patches
    // are Strategy-I). Strategy II/III bugs in this corpus *always* trigger,
    // so their originals have no clean baseline runs to compare against —
    // the paper avoids this by running unit tests that rarely trigger the
    // bug.
    let mut cases: Vec<(PatternKind, u32)> = Vec::new();
    for id in 0..24u32 {
        cases.push((PatternKind::SingleSend, 500 + id));
    }

    let mut rows = Vec::new();
    let mut overheads: Vec<f64> = Vec::new();
    for (kind, id) in cases {
        let plant = emit(kind, id);
        let source = format!("package main\n{}\nfunc main() {{\n}}\n", plant.source);
        let pipeline = Pipeline::from_source(&source).expect("pattern parses");
        let results = pipeline.run(&config);
        let Some(patch) = results
            .patches
            .iter()
            .find(|p| p.primitive_name.contains(&plant.marker))
        else {
            continue;
        };
        let entry = plant.entry.clone().expect("fixable patterns are drivable");
        let v = gfix::validate(&patch.before, &patch.after, &entry, 30);
        let overhead = v.overhead() * 100.0;
        overheads.push(overhead);
        rows.push(vec![
            format!("{kind:?}#{id}"),
            patch.strategy.to_string(),
            format!("{:.0}", v.baseline_instrs),
            format!("{:.0}", v.patched_instrs),
            format!("{overhead:+.2}%"),
            if v.is_correct() {
                "ok".into()
            } else {
                "FAIL".into()
            },
        ]);
        let _ = Strategy::IncreaseBuffer;
    }
    println!("Patch runtime overhead (§5.3) — executed instructions, clean runs\n");
    println!(
        "{}",
        render_table(
            &[
                "bug",
                "strategy",
                "instrs before",
                "instrs after",
                "overhead",
                "valid"
            ],
            &rows
        )
    );
    let avg = overheads.iter().sum::<f64>() / overheads.len().max(1) as f64;
    let max = overheads.iter().cloned().fold(f64::MIN, f64::max);
    let above_1 = overheads.iter().filter(|o| **o > 1.0).count();
    println!(
        "average {avg:.2}%, max {max:.2}%, {above_1}/{} above 1%  [paper: avg 0.26%, max 3.77%, 14/116 above 1%]",
        overheads.len()
    );
}
