//! E9 — §5.3 patch correctness: validate every patch generated over the
//! full corpus with the simulator (random schedules plus sleep injection —
//! the paper's manual methodology, automated).
//!
//! Paper shape: all 124 generated patches are correct.

use bench::{corpus, detector_config};
use gfix::Pipeline;

fn main() {
    let apps = corpus();
    let config = detector_config();
    let mut total = 0usize;
    let mut correct = 0usize;
    let mut realized = 0usize;
    for app in &apps {
        let pipeline = Pipeline::from_source(&app.source).expect("replica lowers");
        let results = pipeline.run(&config);
        for (patch, plant) in results.patches.iter().filter_map(|p| {
            app.plants
                .iter()
                .find(|pl| go_corpus::patterns::marker_hit(&p.primitive_name, &pl.marker))
                .map(|pl| (p, pl))
        }) {
            // The paper validates its 124 patches of *real* bugs; patches
            // GFix happens to synthesize for false-positive reports are not
            // part of that population.
            if plant.fp {
                continue;
            }
            let Some(entry) = plant.entry.clone() else {
                continue;
            };
            total += 1;
            let v = gfix::validate(&patch.before, &patch.after, &entry, 25);
            if v.bug_realized {
                realized += 1;
            }
            if v.is_correct() {
                correct += 1;
            } else {
                eprintln!(
                    "INVALID patch for {} in {} (blocks_never={}, semantics={})",
                    plant.marker, app.name, v.patch_blocks_never, v.semantics_preserved
                );
            }
        }
    }
    println!("Patch validation (§5.3)\n");
    println!("patches validated: {total}");
    println!("bugs dynamically realized before patching: {realized}/{total}");
    println!("patches correct (never block + semantics preserved): {correct}/{total}");
    println!("[paper: 124/124 patches correct]");
    if correct != total {
        std::process::exit(1);
    }
}
