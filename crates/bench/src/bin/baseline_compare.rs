//! E13 — §7 comparison against the `go vet`/`staticcheck`-style baseline.
//!
//! Paper shape: the suites detect 0 of the 149 BMOC bugs and 20 of the 119
//! traditional bugs, all of them `testing.Fatal` calls in child goroutines.

use bench::corpus;
use go_corpus::baseline::run_baseline;

fn main() {
    let apps = corpus();
    let mut bmoc_hits = 0usize;
    let mut fatal_hits = 0usize;
    let mut other_hits = 0usize;
    let mut planted_bmoc = 0usize;
    let mut planted_fatal = 0usize;
    let mut planted_traditional = 0usize;

    for app in &apps {
        let prog = golite::parse(&app.source).expect("replica parses");
        let findings = run_baseline(&prog);
        for plant in &app.plants {
            if plant.fp {
                continue;
            }
            let is_bmoc = plant.kind.is_bmoc();
            if is_bmoc {
                planted_bmoc += 1;
            } else {
                planted_traditional += 1;
            }
            if plant.kind == gcatch::BugKind::FatalInChildGoroutine {
                planted_fatal += 1;
            }
            // A rule "detects" a bug only when it targets that bug class;
            // stylistic rules (SA2001, lostcancel) flag code smells, not
            // concurrency bugs.
            let hit = findings.iter().any(|f| {
                f.rule == "testinggoroutine"
                    && plant.kind == gcatch::BugKind::FatalInChildGoroutine
                    && (go_corpus::patterns::marker_hit(&f.func, &plant.marker)
                        || go_corpus::patterns::marker_hit(&f.message, &plant.marker))
            });
            if hit {
                if is_bmoc {
                    bmoc_hits += 1;
                } else if plant.kind == gcatch::BugKind::FatalInChildGoroutine {
                    fatal_hits += 1;
                } else {
                    other_hits += 1;
                }
            }
        }
    }
    println!("Baseline (vet/staticcheck-style) comparison (§7)\n");
    println!("BMOC bugs detected:        {bmoc_hits}/{planted_bmoc}   [paper: 0/149]");
    println!(
        "traditional bugs detected: {}/{planted_traditional}  (Fatal rule: {fatal_hits}/{planted_fatal}; others: {other_hits})   [paper: 20/119, all Fatal]",
        fatal_hits + other_hits
    );
    if bmoc_hits > 0 {
        eprintln!("UNEXPECTED: syntactic baseline matched a BMOC bug");
        std::process::exit(1);
    }
}
