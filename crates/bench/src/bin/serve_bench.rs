//! Cold-vs-warm re-check latency over a serve-style edit script.
//!
//! Models the `gcatch serve` incremental loop at the library level: a warm
//! [`WarmSessions`] store is populated with an amplified module, the module
//! is edited, and the edited source is re-checked through [`warm_check`].
//! Three edits exercise the dirty-set rule end to end:
//!
//! - `single_function` — a helper no channel scope can reach changes; the
//!   dirty set is empty and every verdict replays from the warm session.
//! - `pset_touching`  — a function holding a channel's own operations
//!   changes; exactly that channel re-analyzes, the rest replay.
//! - `whitespace`     — a trailing no-op edit; the IR is unchanged and the
//!   whole module replays.
//!
//! Each warm response is byte-compared against a cold run of the same edited
//! source; any divergence is a hard error (exit 1), as is a warm speedup
//! below 5x on the `single_function` edit — the CI `serve-perf-smoke` step
//! keys on both. Results land in `BENCH_serve.json`.

use bench::amplifier::{generate_deep, AmpConfig};
use gcatch::{render_json_with, warm_check, DetectorConfig, GCatch, Selection, WarmSessions};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Minimum warm-vs-cold speedup the empty-dirty-set edit must clear.
const MIN_SPEEDUP: f64 = 5.0;
/// Timed repetitions per edit; the fastest run is reported, which is the
/// stable statistic on a shared CI box.
const RUNS: usize = 3;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("bench crate lives at crates/bench inside the repo")
}

/// Exactly what the daemon computes on a cold `check`: lower, analyze,
/// render the single-shot `gcatch check --json` bytes.
fn cold_check(source: &str, config: &DetectorConfig) -> String {
    let module = golite_ir::lower_source(source).expect("amplified module lowers");
    let gcatch = GCatch::new(&module);
    let diagnostics = gcatch.diagnostics(config, &Selection::default());
    let incidents = gcatch.incidents();
    render_json_with(&diagnostics, None, &incidents)
}

struct EditResult {
    name: &'static str,
    cold_ns: u64,
    warm_ns: u64,
    replayed: u64,
    reanalyzed: u64,
}

impl EditResult {
    fn speedup(&self) -> f64 {
        self.cold_ns as f64 / self.warm_ns.max(1) as f64
    }
}

/// Runs one edit scenario: populate a fresh warm store with `base`, apply
/// the edit, measure the warm re-check against a cold check of the same
/// edited bytes. Returns the best-of-`RUNS` timings.
fn run_edit(
    name: &'static str,
    base: &str,
    edited: &str,
    config: &DetectorConfig,
) -> Result<EditResult, String> {
    let mut best_cold = u64::MAX;
    let mut best_warm = u64::MAX;
    let mut replayed = 0;
    let mut reanalyzed = 0;
    for _ in 0..RUNS {
        let t = Instant::now();
        let cold_json = cold_check(edited, config);
        best_cold = best_cold.min(t.elapsed().as_nanos() as u64);

        // A fresh store per run so every measurement times the same
        // base -> edited transition, not an identical resubmission.
        let store = WarmSessions::new(8);
        let seed = warm_check(&store, "bench.go", base, config, Default::default())?;
        if seed.reused {
            return Err("seeding run unexpectedly reused a session".into());
        }
        let t = Instant::now();
        let warm = warm_check(&store, "bench.go", edited, config, Default::default())?;
        best_warm = best_warm.min(t.elapsed().as_nanos() as u64);
        if !warm.reused {
            return Err(format!("{name}: warm run did not reuse the session"));
        }
        if warm.json != cold_json {
            return Err(format!("{name}: warm and cold reports diverge"));
        }
        replayed = warm.replayed;
        reanalyzed = warm.reanalyzed;
    }
    Ok(EditResult {
        name,
        cold_ns: best_cold,
        warm_ns: best_warm,
        replayed,
        reanalyzed,
    })
}

fn main() {
    let amp = AmpConfig {
        channels: 96,
        leak_every: 16,
        ballast: 48,
    };
    // A tail helper no channel scope reaches, so editing it leaves the
    // dirty set empty; the edit is length-preserving so no spans shift.
    let base = format!(
        "{}\nfunc tailKnob() int {{\n    return 101\n}}\n",
        generate_deep(&amp)
    );
    let edits: [(&'static str, String); 3] = [
        ("single_function", base.replace("return 101", "return 202")),
        (
            "pset_touching",
            base.replace("deepch1 <- 1", "deepch1 <- 9"),
        ),
        ("whitespace", format!("{base}\n")),
    ];
    for (name, edited) in &edits {
        assert_ne!(edited, &base, "{name}: edit did not apply");
    }

    let config = DetectorConfig::default();
    // Warm-up so neither measured side pays first-touch costs.
    let _ = cold_check(&base, &config);

    let mut results = Vec::new();
    for (name, edited) in &edits {
        match run_edit(name, &base, edited, &config) {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("serve_bench: {e}");
                std::process::exit(1);
            }
        }
    }

    let single = results
        .iter()
        .find(|r| r.name == "single_function")
        .expect("single_function scenario ran");
    if single.speedup() < MIN_SPEEDUP {
        eprintln!(
            "serve_bench: single_function warm speedup {:.2}x is below the {MIN_SPEEDUP}x floor",
            single.speedup()
        );
        std::process::exit(1);
    }

    let mut json = format!(
        "{{\n  \"module\": {{\"channels\": {}, \"leak_every\": {}, \"ballast\": {}, \"bytes\": {}}},\n  \"edits\": [\n",
        amp.channels,
        amp.leak_every,
        amp.ballast,
        base.len()
    );
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"edit\": \"{}\", \"cold_ns\": {}, \"warm_ns\": {}, ",
                "\"speedup\": {:.3}, \"channels_replayed\": {}, \"channels_reanalyzed\": {}}}{}\n"
            ),
            r.name,
            r.cold_ns,
            r.warm_ns,
            r.speedup(),
            r.replayed,
            r.reanalyzed,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"min_required_speedup\": {MIN_SPEEDUP:.1},\n  \"reports_identical\": true\n}}\n"
    ));

    let out = repo_root().join("BENCH_serve.json");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    print!("{json}");
    for r in &results {
        println!(
            "serve_bench: {} cold {} ns -> warm {} ns ({:.2}x), {} replayed / {} reanalyzed",
            r.name,
            r.cold_ns,
            r.warm_ns,
            r.speedup(),
            r.replayed,
            r.reanalyzed
        );
    }
    println!("serve_bench: wrote {}", out.display());
}
