//! E11 — §5.3 patch readability: changed lines of code per strategy.
//!
//! Paper shape: 124 patches averaging 2.67 changed lines; Strategy-I = 1
//! line each, Strategy-II = 4 lines, Strategy-III ≈ 10.3 (max 16).
//!
//! Note on counting: the paper counts a replaced line once; our diff counts
//! removal + addition separately, so a Strategy-I patch (one replaced line)
//! shows as 2 diff lines. Both columns are printed.

use bench::{corpus, detector_config, render_table};
use gfix::Strategy;
use go_corpus::census::run_app;
use std::collections::BTreeMap;

fn main() {
    let apps = corpus();
    let config = detector_config();
    let mut by_strategy: BTreeMap<Strategy, Vec<usize>> = BTreeMap::new();
    for app in &apps {
        let result = run_app(app, &config);
        for (strategy, lines) in result.patch_lines {
            by_strategy.entry(strategy).or_default().push(lines);
        }
    }
    let mut rows = Vec::new();
    let mut all: Vec<usize> = Vec::new();
    for (strategy, lines) in &by_strategy {
        all.extend(lines);
        let diff_avg = lines.iter().sum::<usize>() as f64 / lines.len() as f64;
        // Paper-style counting: a replacement counts once.
        let paper_avg: f64 = lines
            .iter()
            .map(|&l| {
                if *strategy == Strategy::IncreaseBuffer {
                    (l / 2) as f64
                } else {
                    l as f64
                }
            })
            .sum::<f64>()
            / lines.len() as f64;
        rows.push(vec![
            strategy.to_string(),
            lines.len().to_string(),
            format!("{diff_avg:.1}"),
            format!("{paper_avg:.1}"),
            lines.iter().max().copied().unwrap_or(0).to_string(),
        ]);
    }
    println!("Patch readability (§5.3)\n");
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "patches",
                "avg diff lines",
                "avg paper-style",
                "max"
            ],
            &rows
        )
    );
    let grand = all.iter().sum::<usize>() as f64 / all.len().max(1) as f64;
    println!(
        "overall: {} patches, {:.2} avg diff lines  [paper: 124 patches, 2.67 avg changed lines]",
        all.len(),
        grand
    );
}
