//! Fresh-vs-incremental solver sweep over `examples/` + `examples/batch/`.
//!
//! Runs the full checker registry (BMOC defaults plus the §6 send-on-closed
//! extension) over every example module twice — once with a fresh solver per
//! query (`SolverStrategy::Fresh`) and once with the per-channel incremental
//! solver (`SolverStrategy::Incremental`) — and writes `BENCH_solver.json`
//! with the query counts, total `Stage::Constraints` time, p50/p99 per-query
//! latency, and the fresh/incremental speedup ratio. The rendered diagnostics
//! must be byte-identical between the two modes; a mismatch is a hard error
//! (exit 1), which is what the CI `perf-smoke` step keys on.

use gcatch::{
    render_json, Counter, DetectorConfig, GCatch, Metric, Selection, SolverStrategy, Stage,
    Telemetry,
};
use std::path::{Path, PathBuf};

/// Per-mode aggregate over the whole sweep.
struct ModeStats {
    queries: u64,
    total_solve_ns: u64,
    p50_query_ns: u64,
    p99_query_ns: u64,
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("bench crate lives at crates/bench inside the repo")
}

/// All `*.go` files directly inside `dir`, sorted by name.
fn go_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "go"))
        .collect();
    files.sort();
    files
}

/// Runs every example under `strategy`, returning the aggregate solver
/// stats and the concatenated JSON reports (for byte-comparison).
fn run_mode(strategy: SolverStrategy, sources: &[(String, String)]) -> (ModeStats, String) {
    let config = DetectorConfig {
        solver_strategy: strategy,
        ..DetectorConfig::default()
    };
    let extended = Selection {
        only: vec!["send-on-closed".to_string()],
        skip: Vec::new(),
    };
    let total = Telemetry::new();
    let mut reports = String::new();
    for (name, source) in sources {
        let module = golite_ir::lower_source(source)
            .unwrap_or_else(|e| panic!("{name} does not lower: {e}"));
        let gcatch = GCatch::new(&module);
        for selection in [&Selection::default(), &extended] {
            let diagnostics = gcatch.diagnostics(&config, selection);
            reports.push_str(name);
            reports.push('\n');
            reports.push_str(&render_json(&diagnostics, None));
            reports.push('\n');
        }
        total.absorb(&gcatch.stats());
    }
    let stats = total.snapshot();
    let hist = stats.hist(Metric::SolverQueryNs);
    let mode = ModeStats {
        queries: stats.counter(Counter::SolverQueries),
        total_solve_ns: stats.stage(Stage::Constraints).as_nanos() as u64,
        p50_query_ns: hist.percentile(50),
        p99_query_ns: hist.percentile(99),
    };
    (mode, reports)
}

fn mode_json(label: &str, m: &ModeStats) -> String {
    format!(
        concat!(
            "  \"{}\": {{\"queries\": {}, \"total_solve_ns\": {}, ",
            "\"p50_query_ns\": {}, \"p99_query_ns\": {}}}"
        ),
        label, m.queries, m.total_solve_ns, m.p50_query_ns, m.p99_query_ns
    )
}

fn main() {
    let root = repo_root();
    let mut files = go_files(&root.join("examples"));
    files.extend(go_files(&root.join("examples/batch")));
    assert!(!files.is_empty(), "no example programs found");
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|p| {
            let name = p
                .strip_prefix(&root)
                .unwrap_or(p)
                .to_string_lossy()
                .into_owned();
            let source = std::fs::read_to_string(p)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()));
            (name, source)
        })
        .collect();

    // Warm-up pass so neither measured mode pays first-touch costs.
    let _ = run_mode(SolverStrategy::Fresh, &sources);

    let (fresh, fresh_reports) = run_mode(SolverStrategy::Fresh, &sources);
    let (incremental, incremental_reports) = run_mode(SolverStrategy::Incremental, &sources);

    if fresh_reports != incremental_reports {
        eprintln!("solver_bench: FRESH and INCREMENTAL reports diverge");
        std::process::exit(1);
    }
    if incremental.queries < fresh.queries {
        eprintln!(
            "solver_bench: incremental solved fewer queries than fresh ({} < {})",
            incremental.queries, fresh.queries
        );
        std::process::exit(1);
    }

    let speedup = fresh.total_solve_ns as f64 / incremental.total_solve_ns.max(1) as f64;
    let json = format!(
        "{{\n  \"modules\": {},\n{},\n{},\n  \"speedup\": {:.3},\n  \"reports_identical\": true\n}}\n",
        sources.len(),
        mode_json("fresh", &fresh),
        mode_json("incremental", &incremental),
        speedup,
    );
    let out = root.join("BENCH_solver.json");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    print!("{json}");
    println!(
        "solver_bench: {} modules, {:.3}x speedup (fresh {} ns -> incremental {} ns), wrote {}",
        sources.len(),
        speedup,
        fresh.total_solve_ns,
        incremental.total_solve_ns,
        out.display()
    );
}
