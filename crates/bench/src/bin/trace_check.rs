//! CI smoke check for `gcatch check --trace FILE`: verifies the emitted
//! Chrome trace-event file is non-empty, well-formed JSON (via the
//! dependency-free validator in `gcatch::trace`), and actually carries
//! trace events — a thread-name record plus at least four distinct span
//! names, the shape viewers like `chrome://tracing`/Perfetto expect.
//!
//! Usage: `trace_check <trace.json>`; exits 1 with a message on any failure.

use std::process::ExitCode;

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if text.trim().is_empty() {
        return Err(format!("{path} is empty"));
    }
    gcatch::trace::validate_json(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    if !text.contains("\"traceEvents\"") {
        return Err(format!("{path}: missing the traceEvents array"));
    }
    if !text.contains("\"thread_name\"") {
        return Err(format!(
            "{path}: no thread_name metadata (no lanes recorded)"
        ));
    }
    // Count distinct recorded span names the cheap way: every event name is
    // rendered as `"name":"<name>"`.
    let mut names: Vec<&str> = text
        .match_indices("\"name\":\"")
        .filter_map(|(i, pat)| {
            let rest = &text[i + pat.len()..];
            rest.split('"').next()
        })
        .filter(|n| !n.is_empty() && *n != "thread_name")
        .collect();
    names.sort_unstable();
    names.dedup();
    if names.len() < 4 {
        return Err(format!(
            "{path}: only {} distinct span name(s) recorded ({:?}); expected at least 4",
            names.len(),
            names
        ));
    }
    println!(
        "{path}: OK — valid trace with {} distinct span names",
        names.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.json>");
        return ExitCode::from(2);
    };
    match check(&path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_check: {e}");
            ExitCode::FAILURE
        }
    }
}
