//! E7 — the §5.2 coverage study: replay the detector over the 49-bug set
//! from the released Go concurrency-bug collection.
//!
//! Paper shape: 33/49 detected (67%), misses split across four causes.

use bench::render_table;
use go_corpus::study::{is_detected, study_set, MissCause};
use std::collections::BTreeMap;

fn main() {
    let config = bench::detector_config();
    let set = study_set();
    let mut detected = 0;
    let mut misses: BTreeMap<MissCause, usize> = BTreeMap::new();
    let mut mismatches = Vec::new();
    for bug in &set {
        let hit = is_detected(bug, &config);
        if hit != bug.detectable {
            mismatches.push(bug.id);
        }
        if hit {
            detected += 1;
        } else if let Some(cause) = bug.miss_cause {
            *misses.entry(cause).or_default() += 1;
        }
    }
    println!("Coverage study over the 49-bug set (§5.2)\n");
    println!(
        "detected: {detected}/49 ({:.0}%)  [paper: 33/49 = 67%]\n",
        100.0 * detected as f64 / 49.0
    );
    let rows: Vec<Vec<String>> = misses
        .iter()
        .map(|(cause, n)| {
            let label = match cause {
                MissCause::LcaCriticalSection => "critical section outside LCA scope",
                MissCause::DynamicValue => "needs dynamic values",
                MissCause::UnmodeledPrimitive => "unmodeled primitive (WaitGroup/Cond)",
                MissCause::NilChannel => "nil channel (no data-flow analysis)",
            };
            vec![label.to_string(), n.to_string()]
        })
        .collect();
    println!("{}", render_table(&["miss cause", "bugs"], &rows));
    if mismatches.is_empty() {
        println!("every verdict matches the ground truth");
    } else {
        println!("VERDICT MISMATCHES on bugs {mismatches:?}");
        std::process::exit(1);
    }
}
