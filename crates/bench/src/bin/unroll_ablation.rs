//! Design-choice ablation: the loop-unrolling bound (§3.3 fixes it at 2).
//!
//! The paper notes that 2-bounded unrolling causes both false positives and
//! false negatives. This harness sweeps the bound over representative
//! programs and shows why 2 is the sweet spot: bound 1 loses real
//! multiple-operations bugs (the producer's looped send never reappears
//! after truncation), while larger bounds multiply paths and combinations
//! without changing verdicts.

use bench::render_table;
use gcatch::paths::Limits;
use gcatch::{Detector, DetectorConfig};
use go_corpus::patterns::{emit, PatternKind};
use std::time::Instant;

fn main() {
    let programs: Vec<(&str, String, &str)> = vec![
        (
            "MultipleOps (real, Fig. 4)",
            wrap(emit(PatternKind::MultipleOps, 42).source),
            "sched42",
        ),
        (
            "FpLoopUnroll (false positive)",
            wrap(emit(PatternKind::FpLoopUnroll, 43).source),
            "fpLoop43",
        ),
        (
            "SingleSend (real, Fig. 1)",
            wrap(emit(PatternKind::SingleSend, 44).source),
            "done44",
        ),
    ];
    let mut rows = Vec::new();
    for bound in [1u32, 2, 3, 4] {
        for (name, src, marker) in &programs {
            let module = golite_ir::lower_source(src).expect("program lowers");
            let detector = Detector::new(&module);
            let config = DetectorConfig {
                limits: Limits {
                    max_block_visits: bound,
                    ..Limits::default()
                },
                ..DetectorConfig::default()
            };
            let t0 = Instant::now();
            let bugs = detector.detect_bmoc(&config);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let hit = bugs.iter().any(|b| b.primitive_name.contains(marker));
            rows.push(vec![
                bound.to_string(),
                name.to_string(),
                if hit {
                    "reported".into()
                } else {
                    "silent".into()
                },
                format!("{ms:.1}"),
            ]);
        }
    }
    println!("Loop-unrolling bound ablation (§3.3 fixes the bound at 2)\n");
    println!(
        "{}",
        render_table(&["bound", "program", "verdict", "ms"], &rows)
    );
    println!(
        "paper behavior at bound 2: real bugs reported, the loop-unroll FP reported\n\
         (that FP is the price of bounding; see the §5.2 census)"
    );
}

fn wrap(body: String) -> String {
    format!("package main\n{body}\nfunc main() {{\n}}\n")
}
