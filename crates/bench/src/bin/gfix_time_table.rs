//! E12 — §5.3 GFix execution time, split into preprocessing (SSA
//! construction, call graph, alias analysis — the paper's 98%) and the
//! actual patch synthesis (1.9 s average in the paper).
//!
//! Timings come from the shared session telemetry: the `analysis`,
//! `disentangle`, `paths`, and `constraints` stages are the preprocessing
//! GFix consumes, and the `fix` stage is the transformation itself.

use bench::{corpus, render_table};
use gcatch::{Selection, Stage};
use gfix::Pipeline;

fn main() {
    let apps = corpus();
    let config = bench::detector_config();
    let bmoc_only = Selection {
        only: vec!["bmoc".to_string()],
        skip: Vec::new(),
    };
    let mut rows = Vec::new();
    let mut total_pre = 0.0f64;
    let mut total_fix = 0.0f64;
    let mut total_patches = 0usize;
    for app in &apps {
        let pipeline = Pipeline::from_source(&app.source).expect("replica lowers");
        let (results, stats) = pipeline.run_with_stats(&config, &bmoc_only);
        let pre = stats.detect_time().as_secs_f64() * 1e3;
        let fix = stats.stage(Stage::Fix).as_secs_f64() * 1e3;
        let patches = results.patches.len();

        if patches > 0 {
            let per_patch = (pre + fix) / patches as f64;
            rows.push(vec![
                app.name.to_string(),
                patches.to_string(),
                format!("{pre:.1}"),
                format!("{fix:.1}"),
                format!("{:.1}%", 100.0 * pre / (pre + fix)),
                format!("{per_patch:.1}"),
            ]);
        }
        total_pre += pre;
        total_fix += fix;
        total_patches += patches;
    }
    println!("GFix execution time (§5.3)\n");
    println!(
        "{}",
        render_table(
            &[
                "App",
                "patches",
                "preprocess (ms)",
                "transform (ms)",
                "preprocess %",
                "ms/patch"
            ],
            &rows
        )
    );
    println!(
        "overall: {} patches; preprocessing is {:.1}% of total  [paper: ~98%, 90 s per patch]",
        total_patches,
        100.0 * total_pre / (total_pre + total_fix)
    );
}
