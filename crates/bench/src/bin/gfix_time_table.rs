//! E12 — §5.3 GFix execution time, split into preprocessing (SSA
//! construction, call graph, alias analysis — the paper's 98%) and the
//! actual patch synthesis (1.9 s average in the paper).

use bench::{corpus, render_table};
use gcatch::GCatch;
use gfix::Pipeline;
use std::time::Instant;

fn main() {
    let apps = corpus();
    let config = bench::detector_config();
    let mut rows = Vec::new();
    let mut total_pre = 0.0f64;
    let mut total_fix = 0.0f64;
    let mut total_patches = 0usize;
    for app in &apps {
        let pipeline = Pipeline::from_source(&app.source).expect("replica lowers");

        // Preprocessing phase: IR → call graph → alias analysis (+ the
        // detection GFix consumes).
        let t0 = Instant::now();
        let gcatch = GCatch::new(pipeline.module());
        let bugs = gcatch.detect_bmoc(&config);
        let pre = t0.elapsed().as_secs_f64() * 1e3;

        // Transformation phase: dispatcher + code transformation only.
        let detector = gcatch.detector();
        let gfix_sys = gfix::GFix::new(
            pipeline.program(),
            pipeline.module(),
            &detector.analysis,
            &detector.prims,
        );
        let t1 = Instant::now();
        let patches = bugs.iter().filter(|b| gfix_sys.fix(b).is_ok()).count();
        let fix = t1.elapsed().as_secs_f64() * 1e3;

        if patches > 0 {
            let per_patch = (pre + fix) / patches as f64;
            rows.push(vec![
                app.name.to_string(),
                patches.to_string(),
                format!("{pre:.1}"),
                format!("{fix:.1}"),
                format!("{:.1}%", 100.0 * pre / (pre + fix)),
                format!("{per_patch:.1}"),
            ]);
        }
        total_pre += pre;
        total_fix += fix;
        total_patches += patches;
    }
    println!("GFix execution time (§5.3)\n");
    println!(
        "{}",
        render_table(
            &["App", "patches", "preprocess (ms)", "transform (ms)", "preprocess %", "ms/patch"],
            &rows
        )
    );
    println!(
        "overall: {} patches; preprocessing is {:.1}% of total  [paper: ~98%, 90 s per patch]",
        total_patches,
        100.0 * total_pre / (total_pre + total_fix)
    );
}
