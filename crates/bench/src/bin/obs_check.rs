//! CI smoke check for the observability artifacts: validates a
//! `--metrics-out` Prometheus exposition with the in-repo parser
//! (`gcatch::metrics::validate_exposition`) and an `--events-out` JSONL
//! stream line by line — every line must be one well-formed JSON object
//! carrying the required correlation keys, the stream must be bracketed
//! by exactly one `run_start` and one `run_end`, and every
//! `job_quarantined` event must name its job so the flight-recorder
//! postmortem in the report can be cross-referenced.
//!
//! Usage: `obs_check <metrics.prom> <events.jsonl>`; exits 1 with a
//! message on any failure.

use std::process::ExitCode;

fn check_metrics(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if text.trim().is_empty() {
        return Err(format!("{path} is empty"));
    }
    let summary = gcatch::validate_exposition(&text).map_err(|e| format!("{path}: {e}"))?;
    for family in [
        "gcatch_channels_analyzed_total",
        "gcatch_jobs_total",
        "gcatch_stage_seconds",
        "gcatch_job_wall_seconds",
    ] {
        if !text.contains(family) {
            return Err(format!("{path}: missing family `{family}`"));
        }
    }
    println!(
        "{path}: OK — {} families, {} samples",
        summary.families, summary.samples
    );
    Ok(())
}

fn check_events(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err(format!("{path} is empty"));
    }
    let mut run_starts = 0usize;
    let mut run_ends = 0usize;
    let mut quarantined = 0usize;
    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        gcatch::trace::validate_json(line)
            .map_err(|e| format!("{path}:{n}: malformed JSON: {e}"))?;
        for key in ["\"ts_ns\":", "\"seq\":", "\"event\":\"", "\"run\":\""] {
            if !line.contains(key) {
                return Err(format!("{path}:{n}: missing required key {key}"));
            }
        }
        if line.contains("\"event\":\"run_start\"") {
            run_starts += 1;
            if idx != 0 {
                return Err(format!("{path}:{n}: run_start is not the first event"));
            }
        }
        if line.contains("\"event\":\"run_end\"") {
            run_ends += 1;
            if idx != lines.len() - 1 {
                return Err(format!("{path}:{n}: run_end is not the last event"));
            }
        }
        if line.contains("\"event\":\"job_quarantined\"") {
            quarantined += 1;
            if !line.contains("\"job\":\"") || !line.contains("\"attempt\":") {
                return Err(format!(
                    "{path}:{n}: quarantine event lacks correlation ids"
                ));
            }
        }
        // Job-scoped events must carry the canonical ordering index.
        if line.contains("\"job\":\"") && !line.contains("\"job_index\":") {
            return Err(format!("{path}:{n}: job event without job_index"));
        }
    }
    if run_starts != 1 || run_ends != 1 {
        return Err(format!(
            "{path}: expected exactly one run_start and run_end, got {run_starts}/{run_ends}"
        ));
    }
    println!(
        "{path}: OK — {} events, {} quarantine(s)",
        lines.len(),
        quarantined
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [metrics, events] = args.as_slice() else {
        eprintln!("usage: obs_check <metrics.prom> <events.jsonl>");
        return ExitCode::from(2);
    };
    match check_metrics(metrics).and_then(|()| check_events(events)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("obs_check: {e}");
            ExitCode::FAILURE
        }
    }
}
