//! E8 — the §5.2 false-positive census for the BMOC detector.
//!
//! Paper shape: 51 BMOC false positives — 20 infeasible paths (9 branch
//! conditions + 11 loop unrolling), 17 alias analysis (15 channel-through-
//! channel + 2 slice/array), 14 call-graph.

use bench::{corpus, detector_config, render_table};
use gcatch::{Counter, HistSnapshot, Metric};
use go_corpus::census::run_app;
use go_corpus::patterns::FpCause;
use std::collections::BTreeMap;

fn main() {
    let apps = corpus();
    let config = detector_config();
    let mut causes: BTreeMap<FpCause, usize> = BTreeMap::new();
    let mut pruned = 0u64;
    let mut enumerated = 0u64;
    let mut paths_dist = HistSnapshot::default();
    for app in &apps {
        let result = run_app(app, &config);
        for (cause, n) in result.fp_causes {
            *causes.entry(cause).or_default() += n;
        }
        pruned += result.stats.counter(Counter::BranchesPruned);
        enumerated += result.stats.counter(Counter::PathsEnumerated);
        paths_dist.merge(result.stats.hist(Metric::PathsPerChannel));
    }
    let mut buckets: BTreeMap<&'static str, usize> = BTreeMap::new();
    let rows: Vec<Vec<String>> = causes
        .iter()
        .map(|(cause, n)| {
            *buckets.entry(cause.bucket()).or_default() += n;
            let label = match cause {
                FpCause::InfeasiblePathCondition => "non-read-only branch conditions",
                FpCause::InfeasiblePathLoop => "loop-unrolling miscounts",
                FpCause::AliasChannelThroughChannel => "channel passed through channel",
                FpCause::AliasSliceElement => "channel stored in slice",
                FpCause::CallGraph => "unresolvable call sites",
            };
            vec![label.to_string(), cause.bucket().to_string(), n.to_string()]
        })
        .collect();
    println!("BMOC false-positive census (§5.2)\n");
    println!("{}", render_table(&["cause", "bucket", "FPs"], &rows));
    let bucket_rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|(b, n)| vec![b.to_string(), n.to_string()])
        .collect();
    println!("{}", render_table(&["bucket", "total"], &bucket_rows));
    let total: usize = buckets.values().sum();
    println!("total BMOC FPs: {total}  [paper: 51 = 20 infeasible + 17 alias + 14 call-graph]");
    println!(
        "path enumeration: {enumerated} paths kept, {pruned} infeasible branches pruned \
         (the pruning that keeps the infeasible-path FP bucket this small)"
    );
    println!(
        "paths per channel: p50 {} / p90 {} / p99 {} / max {}  (n={} channels)",
        paths_dist.percentile(50),
        paths_dist.percentile(90),
        paths_dist.percentile(99),
        paths_dist.max,
        paths_dist.count
    );
}
