//! `scale_bench` — the corpus-scale before/after benchmark.
//!
//! Generates an amplified suite (thousands of channels plus alias-analysis
//! ballast), analyzes it under the pre-refactor configuration (`fresh`
//! solvers, eager alias analysis, no encoding sharing) and the optimized
//! one (incremental solvers, demand-driven alias analysis, cross-channel
//! verdict sharing), asserts the reports are byte-identical across every
//! configuration axis, and writes `BENCH_scale.json`.
//!
//! ```console
//! $ cargo run --release --bin scale_bench                  # full preset
//! $ cargo run --release --bin scale_bench -- --preset smoke
//! $ cargo run --release --bin scale_bench -- --channels 5000 --ballast 2500
//! ```

use bench::amplifier::{expected_leaks, generate, AmpConfig};
use gcatch::{
    render_json, AliasMode, Counter, DetectorConfig, EventBus, GCatch, ObsScope, Selection,
    SolverStrategy, Stats, TraceLevel,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct RunResult {
    wall: Duration,
    report: String,
    bugs: usize,
    stats: Stats,
}

/// One full analysis of the module: session construction (where alias
/// analysis runs) through diagnostics. Lowering is excluded — it is
/// identical in every configuration.
fn run(module: &golite_ir::Module, alias: AliasMode, config: &DetectorConfig) -> RunResult {
    let start = Instant::now();
    let gcatch = GCatch::with_options(module, TraceLevel::Off, alias);
    let diagnostics = gcatch.diagnostics(config, &Selection::default());
    let wall = start.elapsed();
    RunResult {
        wall,
        report: render_json(&diagnostics, None),
        bugs: diagnostics.len(),
        stats: gcatch.stats(),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = AmpConfig {
        channels: 2400,
        leak_every: 60,
        ballast: 1600,
    };
    let mut out = "BENCH_scale.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("--{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|e| panic!("bad --{name}: {e}"))
        };
        match arg.as_str() {
            "--channels" => config.channels = value("channels"),
            "--leak-every" => config.leak_every = value("leak-every"),
            "--ballast" => config.ballast = value("ballast"),
            "--preset" => match it.next().map(String::as_str) {
                Some("smoke") => {
                    config = AmpConfig {
                        channels: 240,
                        leak_every: 60,
                        ballast: 160,
                    }
                }
                Some("full") => {}
                other => panic!("bad --preset: {other:?} (expected smoke or full)"),
            },
            "--out" => out = it.next().expect("--out needs a value").clone(),
            other => panic!("unknown argument `{other}`"),
        }
    }

    eprintln!(
        "scale_bench: generating {} channels ({} planted leaks) + {} ballast clusters",
        config.channels,
        expected_leaks(&config),
        config.ballast
    );
    let src = generate(&config);
    let module = golite_ir::lower_source(&src).expect("amplified suite lowers");

    // "Before": the pre-refactor cost model — one fresh solver per query,
    // whole-module alias analysis, no cross-channel sharing.
    let before_config = DetectorConfig {
        solver_strategy: SolverStrategy::Fresh,
        share_encodings: false,
        ..DetectorConfig::default()
    };
    // "After": the optimized defaults.
    let after_config = DetectorConfig::default();

    let before = run(&module, AliasMode::Eager, &before_config);
    eprintln!(
        "scale_bench: before (fresh/eager/no-share): {:.1} ms",
        ms(before.wall)
    );
    let after = run(&module, AliasMode::Demand, &after_config);
    eprintln!(
        "scale_bench: after (incremental/demand/share): {:.1} ms",
        ms(after.wall)
    );

    // Differential sweep: every axis must reproduce the same report bytes.
    let divergences = {
        let mut bad: Vec<&'static str> = Vec::new();
        let eager_shared = run(&module, AliasMode::Eager, &after_config);
        if eager_shared.report != after.report {
            bad.push("alias-mode (eager vs demand)");
        }
        let unshared = run(
            &module,
            AliasMode::Demand,
            &DetectorConfig {
                share_encodings: false,
                ..DetectorConfig::default()
            },
        );
        if unshared.report != after.report {
            bad.push("encoding sharing (on vs off)");
        }
        let sharded = run(
            &module,
            AliasMode::Demand,
            &DetectorConfig {
                jobs: 4,
                ..DetectorConfig::default()
            },
        );
        if sharded.report != after.report {
            bad.push("--jobs (1 vs 4)");
        }
        if before.report != after.report {
            bad.push("before vs after");
        }
        bad
    };
    // Observability overhead: the same optimized run with a live event
    // bus attached (every channel_analyzed emitted) against a plain run,
    // both warm; best of two on each side to damp scheduler noise. The
    // bus must never change the report.
    let obs_base = {
        let (a, b) = (
            run(&module, AliasMode::Demand, &after_config),
            run(&module, AliasMode::Demand, &after_config),
        );
        if a.wall <= b.wall {
            a
        } else {
            b
        }
    };
    let run_with_bus = || {
        let bus = Arc::new(EventBus::new("scale-bench".to_string(), false));
        let obs_config = DetectorConfig {
            obs: ObsScope {
                bus: Some(bus.clone()),
                ..ObsScope::default()
            },
            ..DetectorConfig::default()
        };
        let result = run(&module, AliasMode::Demand, &obs_config);
        (result, bus.len())
    };
    let (obs_events, emitted) = {
        let (a, b) = (run_with_bus(), run_with_bus());
        if a.0.wall <= b.0.wall {
            a
        } else {
            b
        }
    };
    let obs_overhead_pct =
        (ms(obs_events.wall) - ms(obs_base.wall)) / ms(obs_base.wall).max(1e-9) * 100.0;
    eprintln!(
        "scale_bench: observability: {:.1} ms plain vs {:.1} ms with events ({} emitted, {:+.2}% overhead)",
        ms(obs_base.wall),
        ms(obs_events.wall),
        emitted,
        obs_overhead_pct
    );
    let mut divergences = divergences;
    if obs_events.report != obs_base.report {
        divergences.push("event bus (on vs off)");
    }
    let reports_identical = divergences.is_empty();

    let expected = expected_leaks(&config);
    if after.bugs != expected {
        eprintln!(
            "scale_bench: WARNING: {} report(s), expected {expected}",
            after.bugs
        );
    }

    let per_1k = |r: &RunResult| ms(r.wall) * 1000.0 / config.channels.max(1) as f64;
    let speedup = ms(before.wall) / ms(after.wall).max(1e-9);
    let shared = after.stats.counter(Counter::ChannelEncodingsShared);
    let alias_skipped = after.stats.counter(Counter::AliasFunctionsSkipped);
    let alias_solved = after.stats.counter(Counter::AliasQueriesSolved);

    let json = format!(
        concat!(
            "{{\"version\":1,\"suite\":{{\"channels\":{},\"leaks\":{},\"ballast_clusters\":{}}},",
            "\"before\":{{\"solver_mode\":\"fresh\",\"alias_mode\":\"eager\",\"share_encodings\":false,",
            "\"wall_ms\":{:.2},\"ms_per_1k_channels\":{:.2}}},",
            "\"after\":{{\"solver_mode\":\"incremental\",\"alias_mode\":\"demand\",\"share_encodings\":true,",
            "\"wall_ms\":{:.2},\"ms_per_1k_channels\":{:.2},",
            "\"channel_encodings_shared\":{},\"alias_queries_solved\":{},\"alias_functions_skipped\":{}}},",
            "\"observability\":{{\"base_wall_ms\":{:.2},\"events_wall_ms\":{:.2},",
            "\"overhead_pct\":{:.2},\"events\":{}}},",
            "\"speedup\":{:.2},\"reports_identical\":{},\"bugs\":{}}}"
        ),
        config.channels,
        expected,
        config.ballast,
        ms(before.wall),
        per_1k(&before),
        ms(after.wall),
        per_1k(&after),
        shared,
        alias_solved,
        alias_skipped,
        ms(obs_base.wall),
        ms(obs_events.wall),
        obs_overhead_pct,
        emitted,
        speedup,
        reports_identical,
        after.bugs,
    );
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_scale.json");
    println!("{json}");
    eprintln!(
        "scale_bench: speedup {speedup:.2}x, {shared} encodings shared, {alias_skipped} alias functions skipped -> {out}"
    );

    if !reports_identical {
        eprintln!(
            "scale_bench: FAIL: report divergence on: {}",
            divergences.join(", ")
        );
        std::process::exit(1);
    }
}
