//! Golden Prometheus exposition for the Figure 1 program, plus the
//! self-validation contract: every rendering must pass the same minimal
//! parser CI runs over `--metrics-out` artifacts.

use gcatch::{render_prometheus, validate_exposition, DetectorConfig, GCatch, Selection};

/// The Figure 1 Docker#24991 program (same source as the trace golden).
const FIGURE1: &str = r#"
func Exec(ctx context.Context) error {
    outDone := make(chan error)
    go func() {
        outDone <- nil
    }()
    select {
    case err := <-outDone:
        return err
    case <-ctx.Done():
        return ctx.Err()
    }
}

func main() {
    ctx, cancel := context.WithCancel(context.Background())
    defer cancel()
    Exec(ctx)
}
"#;

fn figure1_stats() -> gcatch::Stats {
    let module = golite_ir::lower_source(FIGURE1).expect("figure 1 lowers");
    let gcatch = GCatch::new(&module);
    let config = DetectorConfig {
        jobs: 1,
        ..DetectorConfig::default()
    };
    let diagnostics = gcatch.diagnostics(&config, &Selection::default());
    assert!(!diagnostics.is_empty(), "figure 1 should report a bug");
    gcatch.stats()
}

/// Golden test: the exact zero-time exposition for Figure 1 under
/// `--jobs 1`. Counter values and sample counts are pinned (they are pure
/// functions of the module); every time-derived value renders as 0, so
/// the document is byte-stable across machines. Bless with
/// `GCATCH_BLESS=1`.
#[test]
fn figure1_zeroed_exposition_matches_golden() {
    let text = render_prometheus(&figure1_stats(), true);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/figure1_metrics.golden.prom"
    );
    if std::env::var_os("GCATCH_BLESS").is_some() {
        std::fs::write(path, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file (GCATCH_BLESS=1 to create)");
    assert_eq!(text.trim_end(), golden.trim_end());
}

/// A live (non-zeroed) rendering must satisfy the CI exposition parser
/// and declare every counter family by its stable name.
#[test]
fn live_rendering_validates_and_names_are_stable() {
    let text = render_prometheus(&figure1_stats(), false);
    let summary = validate_exposition(&text).expect("exposition validates");
    assert!(summary.families > 0 && summary.samples > 0);
    for family in [
        "gcatch_channels_analyzed_total",
        "gcatch_solver_queries_total",
        "gcatch_stage_seconds",
        "gcatch_channel_detect_seconds",
        "gcatch_paths_per_channel",
    ] {
        assert!(text.contains(family), "missing family `{family}`");
    }
    // Nanosecond histograms export seconds; no raw `_ns` family leaks out.
    assert!(!text.contains("_ns "), "raw nanosecond family leaked");
}
