//! Registry invariants, checker selection, parallel determinism, and the
//! golden JSON rendering of the Figure 1 Docker bug.

use gcatch::{
    render_json, AnalysisSession, BugKind, DetectorConfig, Diagnostic, GCatch, Registry, Selection,
};
use std::collections::HashMap;

/// The Figure 1 Docker#24991 program (select with an unbuffered channel;
/// the child's send blocks forever when `ctx.Done()` wins).
const FIGURE1: &str = r#"
func Exec(ctx context.Context) error {
    outDone := make(chan error)
    go func() {
        outDone <- nil
    }()
    select {
    case err := <-outDone:
        return err
    case <-ctx.Done():
        return ctx.Err()
    }
}

func main() {
    ctx, cancel := context.WithCancel(context.Background())
    defer cancel()
    Exec(ctx)
}
"#;

/// Every `BugKind` must be owned by exactly one registered checker —
/// otherwise cross-checker deduplication could merge reports of different
/// checkers and per-checker counts would depend on registry order.
#[test]
fn every_bug_kind_is_owned_by_exactly_one_checker() {
    let registry = Registry::standard();
    let mut owners: HashMap<BugKind, Vec<&'static str>> = HashMap::new();
    for checker in registry.checkers() {
        for &kind in checker.kinds() {
            owners.entry(kind).or_default().push(checker.name());
        }
    }
    let all_kinds = [
        BugKind::BmocChannel,
        BugKind::BmocChannelMutex,
        BugKind::MissingUnlock,
        BugKind::DoubleLock,
        BugKind::ConflictingLockOrder,
        BugKind::StructFieldRace,
        BugKind::FatalInChildGoroutine,
        BugKind::SendOnClosedChannel,
    ];
    for kind in all_kinds {
        let who = owners.get(&kind).cloned().unwrap_or_default();
        assert_eq!(
            who.len(),
            1,
            "{kind:?} owned by {who:?}, expected exactly one checker"
        );
    }
}

#[test]
fn checker_names_are_unique_and_findable() {
    let registry = Registry::standard();
    let names = registry.names();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        names.len(),
        "duplicate checker names in {names:?}"
    );
    for name in &names {
        assert_eq!(registry.find(name).map(|c| c.name()), Some(*name));
    }
    assert!(registry.find("no-such-checker").is_none());
}

/// `--only X` runs exactly X; `--skip X` runs the defaults minus X; the
/// send-on-closed extension is opt-in.
#[test]
fn selection_only_and_skip_round_trip() {
    let registry = Registry::standard();
    let defaults: Vec<&str> = registry
        .checkers()
        .filter(|c| Selection::default().enables(*c))
        .map(|c| c.name())
        .collect();
    assert!(defaults.contains(&"bmoc"));
    assert!(
        !defaults.contains(&"send-on-closed"),
        "§6 extension must be opt-in"
    );

    for name in registry.names() {
        let only = Selection {
            only: vec![name.to_string()],
            skip: Vec::new(),
        };
        let enabled: Vec<&str> = registry
            .checkers()
            .filter(|c| only.enables(*c))
            .map(|c| c.name())
            .collect();
        assert_eq!(enabled, vec![name], "--only {name}");

        let skip = Selection {
            only: Vec::new(),
            skip: vec![name.to_string()],
        };
        let enabled: Vec<&str> = registry
            .checkers()
            .filter(|c| skip.enables(*c))
            .map(|c| c.name())
            .collect();
        let expected: Vec<&str> = defaults.iter().copied().filter(|n| *n != name).collect();
        assert_eq!(enabled, expected, "--skip {name}");

        // Skip beats only when both name the same checker.
        let both = Selection {
            only: vec![name.to_string()],
            skip: vec![name.to_string()],
        };
        assert!(registry.checkers().filter(|c| both.enables(*c)).count() == 0);
    }

    let bogus = Selection {
        only: vec!["nope".to_string()],
        skip: Vec::new(),
    };
    assert!(bogus.validate(&registry).is_err());
    assert!(Selection::default().validate(&registry).is_ok());
}

/// Sharding the BMOC detector must not change the reports: every `--jobs`
/// value yields the bit-identical diagnostic list.
#[test]
fn parallel_detection_is_deterministic() {
    let module = golite_ir::lower_source(FIGURE1).expect("figure 1 lowers");
    let render = |jobs: usize| {
        let gcatch = GCatch::new(&module);
        let config = DetectorConfig {
            jobs,
            ..DetectorConfig::default()
        };
        let diagnostics = gcatch.diagnostics(&config, &Selection::default());
        render_json(&diagnostics, None)
    };
    let sequential = render(1);
    for jobs in [0, 2, 8] {
        assert_eq!(
            sequential,
            render(jobs),
            "--jobs {jobs} diverged from --jobs 1"
        );
    }
}

/// Golden test: the exact JSON document for Figure 1. Deliberately strict —
/// diagnostic IDs, field order, and the witness schedule are all part of
/// the stable output contract (`gcatch check --json`).
#[test]
fn figure1_golden_json() {
    let module = golite_ir::lower_source(FIGURE1).expect("figure 1 lowers");
    let gcatch = GCatch::new(&module);
    let diagnostics = gcatch.diagnostics(&DetectorConfig::default(), &Selection::default());
    let json = render_json(&diagnostics, None);
    let golden = concat!(
        r#"{"version":1,"diagnostics":[{"id":"GC-27df4fd4","checker":"bmoc","#,
        r#""kind":"BMOC-C","severity":"error","#,
        r#""primitive":{"name":"outDone","span":"3:5"},"#,
        r#""ops":[{"what":"send on outDone","func":"Exec$closure0","span":"5:9"}],"#,
        r#""witness":["g0:go(f2)","g0:select.case1@7:5","g1:send(outDone)@5:9"],"#,
        r#""notes":"scope root: Exec","#,
        r#""provenance":{"channel":"outDone","pset_size":1,"paths_enumerated":3,"#,
        r#""branches_pruned":0,"combos_tried":2,"groups_checked":2,"#,
        r#""solver_verdict":"blocking","solver_steps":46,"solver_decisions":2,"#,
        r#""solver_conflicts":0}}]}"#,
    );
    assert_eq!(json, golden);
}

/// Diagnostic IDs must not move when the same module is re-analyzed or when
/// checkers run under a narrower selection.
#[test]
fn diagnostic_ids_are_stable_across_sessions_and_selections() {
    let module = golite_ir::lower_source(FIGURE1).expect("figure 1 lowers");
    let ids = |selection: &Selection| -> Vec<String> {
        let gcatch = GCatch::new(&module);
        let mut ids: Vec<String> = gcatch
            .diagnostics(&DetectorConfig::default(), selection)
            .into_iter()
            .map(|d| d.id)
            .collect();
        ids.sort();
        ids
    };
    let full = ids(&Selection::default());
    assert!(!full.is_empty());
    assert_eq!(full, ids(&Selection::default()), "re-analysis moved IDs");
    let only_bmoc = Selection {
        only: vec!["bmoc".to_string()],
        skip: Vec::new(),
    };
    assert_eq!(full, ids(&only_bmoc), "selection moved IDs");
}

/// The compatibility alias still works: `Detector` is the session.
#[test]
fn detector_alias_is_the_session() {
    let module = golite_ir::lower_source(FIGURE1).expect("figure 1 lowers");
    let session = AnalysisSession::new(&module);
    let bugs = session.detect_bmoc(&DetectorConfig::default());
    assert_eq!(bugs.len(), 1);
    let diag = Diagnostic::new("bmoc", bugs[0].clone());
    assert_eq!(diag.id, "GC-27df4fd4");
}
