//! End-to-end BMOC detection tests on the paper's figures and on correct
//! programs that must stay clean.

use gcatch::{BugKind, Detector, DetectorConfig};

fn detect(src: &str) -> Vec<gcatch::BugReport> {
    let module = golite_ir::lower_source(src).expect("lowering");
    let detector = Detector::new(&module);
    detector.detect_bmoc(&DetectorConfig::default())
}

const FIGURE1: &str = r#"
func StdCopy() error {
    return nil
}

func Exec(ctx context.Context) error {
    outDone := make(chan error)
    go func() {
        err := StdCopy()
        outDone <- err
    }()
    select {
    case err := <-outDone:
        if err != nil {
            return err
        }
    case <-ctx.Done():
        return ctx.Err()
    }
    return nil
}

func main() {
    ctx, cancel := context.WithCancel(context.Background())
    defer cancel()
    Exec(ctx)
}
"#;

#[test]
fn detects_figure1_docker_bug() {
    let bugs = detect(FIGURE1);
    let bmoc: Vec<_> = bugs
        .iter()
        .filter(|b| b.kind == BugKind::BmocChannel)
        .collect();
    assert!(
        bmoc.iter().any(|b| b.primitive_name == "outDone"
            && b.ops.iter().any(|o| o.what.contains("send on outDone"))),
        "must report the child's send on outDone as blocking; got: {bugs:?}"
    );
}

#[test]
fn figure1_patch_is_clean() {
    let fixed = FIGURE1.replace("make(chan error)", "make(chan error, 1)");
    let bugs = detect(&fixed);
    assert!(
        bugs.iter().all(|b| b.primitive_name != "outDone"),
        "buffered outDone can always take the send; got: {bugs:?}"
    );
}

#[test]
fn detects_figure3_etcd_bug() {
    // Missing-interaction: t.Fatalf skips the final send.
    let src = r#"
func Start(stop chan struct{}) {
    <-stop
}

func Dial() (int, error) {
    return 0, Failure()
}

func Failure() error {
    return nil
}

func TestRWDialer(t *testing.T) {
    stop := make(chan struct{})
    go Start(stop)
    conn, err := Dial()
    _ = conn
    if err != nil {
        t.Fatalf("dial failed")
    }
    stop <- struct{}{}
}
"#;
    let bugs = detect(src);
    assert!(
        bugs.iter().any(|b| b.kind == BugKind::BmocChannel
            && b.primitive_name == "stop"
            && b.ops.iter().any(|o| o.what.contains("recv from stop"))),
        "must report the child's receive on stop as blocking; got: {bugs:?}"
    );
}

#[test]
fn figure3_defer_patch_is_clean() {
    let src = r#"
func Start(stop chan struct{}) {
    <-stop
}

func Dial() (int, error) {
    return 0, Failure()
}

func Failure() error {
    return nil
}

func TestRWDialer(t *testing.T) {
    stop := make(chan struct{})
    defer func() {
        stop <- struct{}{}
    }()
    go Start(stop)
    conn, err := Dial()
    _ = conn
    if err != nil {
        t.Fatalf("dial failed")
    }
}
"#;
    let bugs = detect(src);
    assert!(
        bugs.iter().all(|b| b.primitive_name != "stop"),
        "deferred send covers every exit; got: {bugs:?}"
    );
}

#[test]
fn detects_figure4_geth_bug() {
    // Multiple-operations: the producer loops sending while the consumer can
    // return via abort.
    let src = r#"
func Input() (string, error) {
    return "line", nil
}

func Interactive(abort chan struct{}) {
    scheduler := make(chan string)
    go func() {
        for {
            line, err := Input()
            if err != nil {
                close(scheduler)
                return
            }
            scheduler <- line
        }
    }()
    for {
        select {
        case <-abort:
            return
        case _, ok := <-scheduler:
            if !ok {
                return
            }
        }
    }
}

func main() {
    abort := make(chan struct{}, 1)
    abort <- struct{}{}
    Interactive(abort)
}
"#;
    let bugs = detect(src);
    assert!(
        bugs.iter().any(|b| b.primitive_name == "scheduler"
            && b.ops.iter().any(|o| o.what.contains("send on scheduler"))),
        "must report the producer's send on scheduler; got: {bugs:?}"
    );
}

#[test]
fn correct_rendezvous_is_clean() {
    let bugs =
        detect("func main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}");
    assert!(
        bugs.is_empty(),
        "rendezvous always completes; got: {bugs:?}"
    );
}

#[test]
fn correct_buffered_producer_consumer_is_clean() {
    let bugs = detect(
        "func main() {\n ch := make(chan int, 2)\n go func() {\n  ch <- 1\n  ch <- 2\n }()\n <-ch\n <-ch\n}",
    );
    assert!(
        bugs.is_empty(),
        "buffered pipeline completes; got: {bugs:?}"
    );
}

#[test]
fn correct_close_broadcast_is_clean() {
    let bugs = detect(
        r#"
func worker(done chan struct{}, results chan int) {
    <-done
    results <- 1
}

func main() {
    done := make(chan struct{})
    results := make(chan int, 2)
    go worker(done, results)
    go worker(done, results)
    close(done)
    <-results
    <-results
}
"#,
    );
    assert!(bugs.is_empty(), "close wakes every receiver; got: {bugs:?}");
}

#[test]
fn detects_unmatched_send_no_receiver() {
    // The simplest BMOC: a child sends and nobody ever receives.
    let src = r#"
func main() {
    ch := make(chan int)
    go func() {
        ch <- 1
    }()
}
"#;
    let bugs = detect(src);
    assert!(
        bugs.iter().any(|b| b.primitive_name == "ch"),
        "orphan send must be reported; got: {bugs:?}"
    );
}

#[test]
fn detects_double_receive_single_send() {
    let src = r#"
func main() {
    ch := make(chan int)
    go func() {
        ch <- 1
    }()
    <-ch
    <-ch
}
"#;
    let bugs = detect(src);
    assert!(
        bugs.iter()
            .any(|b| b.primitive_name == "ch" && b.ops.iter().any(|o| o.what.contains("recv"))),
        "second receive blocks forever; got: {bugs:?}"
    );
}

#[test]
fn detects_bmoc_with_mutex_interaction() {
    // Channel-and-mutex entanglement: the child needs the lock the parent
    // holds while the parent waits for the child's message.
    let src = r#"
func main() {
    var mu sync.Mutex
    ch := make(chan int)
    go func() {
        mu.Lock()
        ch <- 1
        mu.Unlock()
    }()
    mu.Lock()
    <-ch
    mu.Unlock()
}
"#;
    let bugs = detect(src);
    assert!(
        bugs.iter().any(|b| b.kind == BugKind::BmocChannelMutex),
        "mutex-involved blocking must be categorized BMOC-M; got: {bugs:?}"
    );
}

#[test]
fn select_with_default_is_clean() {
    let bugs =
        detect("func main() {\n ch := make(chan int)\n select {\n case <-ch:\n default:\n }\n}");
    assert!(
        bugs.is_empty(),
        "default makes the select non-blocking; got: {bugs:?}"
    );
}

#[test]
fn waitgroup_misuse_is_missed_by_design() {
    // §5.2: GCatch does not model WaitGroup, so this real blocking bug is
    // (deliberately) missed — it belongs to the coverage-study misses.
    let src = r#"
func main() {
    var wg sync.WaitGroup
    wg.Add(2)
    go func() {
        wg.Done()
    }()
    wg.Wait()
}
"#;
    let bugs = detect(src);
    assert!(
        bugs.is_empty(),
        "WaitGroup bugs are out of model; got: {bugs:?}"
    );
}

#[test]
fn nil_channel_bug_is_missed_by_design() {
    // §5.2: no data-flow analysis — sending on a nil channel is missed
    // because a nil channel has no creation site.
    let src = "func main() {\n var ch chan int\n ch <- 1\n}";
    let bugs = detect(src);
    assert!(
        bugs.is_empty(),
        "nil-channel bugs are out of model; got: {bugs:?}"
    );
}

#[test]
fn send_on_closed_channel_extension() {
    // §6: a closer racing a sender — panics when the close wins.
    let src = r#"
func main() {
    ch := make(chan int, 1)
    go func() {
        ch <- 1
    }()
    close(ch)
    x, ok := <-ch
    _ = x
    _ = ok
}
"#;
    let module = golite_ir::lower_source(src).unwrap();
    let detector = Detector::new(&module);
    let bugs = detector.detect_send_on_closed(&DetectorConfig::default());
    assert!(
        bugs.iter().any(|b| b.kind == BugKind::SendOnClosedChannel),
        "the close/send race must be reported; got {bugs:?}"
    );
}

#[test]
fn send_before_close_in_same_goroutine_is_safe() {
    let src = r#"
func main() {
    ch := make(chan int, 2)
    ch <- 1
    ch <- 2
    close(ch)
}
"#;
    let module = golite_ir::lower_source(src).unwrap();
    let detector = Detector::new(&module);
    let bugs = detector.detect_send_on_closed(&DetectorConfig::default());
    assert!(
        bugs.is_empty(),
        "sends strictly precede the close; got {bugs:?}"
    );
}

#[test]
fn producer_closing_its_own_channel_is_safe() {
    // The idiomatic pattern: only the producer closes, after its last send.
    let src = r#"
func main() {
    ch := make(chan int)
    go func() {
        ch <- 1
        close(ch)
    }()
    for v := range ch {
        _ = v
    }
}
"#;
    let module = golite_ir::lower_source(src).unwrap();
    let detector = Detector::new(&module);
    let bugs = detector.detect_send_on_closed(&DetectorConfig::default());
    assert!(
        bugs.is_empty(),
        "producer-side close cannot precede its own send; got {bugs:?}"
    );
}
