//! Golden Chrome-trace output for the Figure 1 program, span-name and
//! worker-lane structure checks, and the `--jobs` determinism contract for
//! bug provenance.

use gcatch::{DetectorConfig, GCatch, Provenance, Selection, TraceLevel};

/// The Figure 1 Docker#24991 program (same source as the registry golden).
const FIGURE1: &str = r#"
func Exec(ctx context.Context) error {
    outDone := make(chan error)
    go func() {
        outDone <- nil
    }()
    select {
    case err := <-outDone:
        return err
    case <-ctx.Done():
        return ctx.Err()
    }
}

func main() {
    ctx, cancel := context.WithCancel(context.Background())
    defer cancel()
    Exec(ctx)
}
"#;

fn run_traced(jobs: usize) -> (GCatchRun, gcatch::TraceSnapshot) {
    let module = golite_ir::lower_source(FIGURE1).expect("figure 1 lowers");
    let gcatch = GCatch::with_trace(&module, TraceLevel::Full);
    let config = DetectorConfig {
        jobs,
        ..DetectorConfig::default()
    };
    let diagnostics = gcatch.diagnostics(&config, &Selection::default());
    let provenance = diagnostics
        .iter()
        .map(|d| d.report.provenance.clone())
        .collect();
    let snapshot = gcatch.trace_snapshot();
    (GCatchRun { provenance }, snapshot)
}

struct GCatchRun {
    provenance: Vec<Option<Provenance>>,
}

/// Golden test: the exact zeroed Chrome trace-event document for Figure 1
/// under `--jobs 1`. Timestamps are projected to zero so the document is
/// fully deterministic; structure (event order, span names, lanes, args)
/// is part of the `--trace` output contract.
#[test]
fn figure1_zeroed_trace_matches_golden() {
    let (_, snapshot) = run_traced(1);
    let json = snapshot.zeroed().render_chrome();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/figure1_trace.golden.json"
    );
    if std::env::var_os("GCATCH_BLESS").is_some() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file (GCATCH_BLESS=1 to create)");
    assert_eq!(json.trim_end(), golden.trim_end());
}

/// The recorded trace must expose the hierarchy the issue promises: at
/// least four distinct span names and a dedicated lane per BMOC worker.
#[test]
fn trace_has_required_spans_and_worker_lanes() {
    let (_, snapshot) = run_traced(2);
    let names = snapshot.span_names();
    for required in [
        "session",
        "analysis",
        "disentangle",
        "bmoc_channel",
        "enumerate_paths",
        "build_combos",
        "solve",
        "dpll",
    ] {
        assert!(names.contains(&required), "missing span `{required}`");
    }
    assert!(
        snapshot.threads.iter().any(|(_, n)| n == "main"),
        "missing main lane"
    );
    assert!(
        snapshot
            .threads
            .iter()
            .any(|(_, n)| n.starts_with("bmoc-worker-")),
        "missing worker lanes: {:?}",
        snapshot.threads
    );
}

/// Provenance is assembled from deterministic per-channel counts, so it
/// must be bit-identical no matter how detection is sharded.
#[test]
fn provenance_is_identical_across_jobs() {
    let (sequential, _) = run_traced(1);
    assert!(
        sequential.provenance.iter().any(Option::is_some),
        "figure 1 should carry provenance"
    );
    for jobs in [0, 4] {
        let (sharded, _) = run_traced(jobs);
        assert_eq!(
            sequential.provenance, sharded.provenance,
            "--jobs {jobs} changed provenance"
        );
    }
}

/// The Chrome rendering must stay dependency-free *and* well-formed; the
/// validator is the same one the CI trace smoke check uses.
#[test]
fn rendered_trace_is_wellformed_json() {
    let (_, snapshot) = run_traced(1);
    let json = snapshot.render_chrome();
    gcatch::trace::validate_json(&json).expect("trace JSON is well-formed");
}
