//! The checker registry.
//!
//! Every detector in the suite — the BMOC detector, the five traditional
//! checkers (§3.5), and the §6 send-on-closed extension — implements
//! [`Checker`]: a stable name, the set of [`BugKind`]s it owns, and a `run`
//! method over a shared [`AnalysisSession`]. The [`Registry`] lists them in
//! a fixed order, applies a user [`Selection`] (`--only` / `--skip`), and
//! deduplicates reports across checkers by [`BugReport::dedup_key`].
//!
//! Invariant (tested in `tests/registry.rs`): every `BugKind` is owned by
//! exactly one registered checker, so cross-checker deduplication can never
//! merge reports from different checkers and per-checker counts are stable.

use crate::detector::DetectorConfig;
use crate::report::{BugKind, BugReport};
use crate::resilience::{catch_isolated, Incident, IncidentKind};
use crate::session::AnalysisSession;
use crate::telemetry::{Counter, Stage};
use std::collections::HashSet;

/// One registered detector.
pub trait Checker: Sync {
    /// Stable kebab-case name, used by `--only` / `--skip` and in
    /// diagnostics.
    fn name(&self) -> &'static str;

    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;

    /// The bug kinds this checker (and only this checker) can report.
    fn kinds(&self) -> &'static [BugKind];

    /// Whether the checker runs when no explicit `--only` selection is
    /// given. The send-on-closed extension is opt-in (`gcatch extended` /
    /// `--only send-on-closed`); everything else is on by default.
    fn default_enabled(&self) -> bool {
        true
    }

    /// Runs the checker over a shared session.
    fn run(&self, session: &AnalysisSession<'_>, config: &DetectorConfig) -> Vec<BugReport>;
}

// ---------------------------------------------------------------- checkers

struct Bmoc;

impl Checker for Bmoc {
    fn name(&self) -> &'static str {
        "bmoc"
    }
    fn description(&self) -> &'static str {
        "blocking misuse-of-channel detection via path enumeration + constraint solving"
    }
    fn kinds(&self) -> &'static [BugKind] {
        &[BugKind::BmocChannel, BugKind::BmocChannelMutex]
    }
    fn run(&self, session: &AnalysisSession<'_>, config: &DetectorConfig) -> Vec<BugReport> {
        session.detect_bmoc(config)
    }
}

struct DoubleLock;

impl Checker for DoubleLock {
    fn name(&self) -> &'static str {
        "double-lock"
    }
    fn description(&self) -> &'static str {
        "acquiring a mutex already held on the same path"
    }
    fn kinds(&self) -> &'static [BugKind] {
        &[BugKind::DoubleLock]
    }
    fn run(&self, session: &AnalysisSession<'_>, _config: &DetectorConfig) -> Vec<BugReport> {
        session.lock_summary().double_locks.clone()
    }
}

struct MissingUnlock;

impl Checker for MissingUnlock {
    fn name(&self) -> &'static str {
        "missing-unlock"
    }
    fn description(&self) -> &'static str {
        "a return reachable with a mutex still held"
    }
    fn kinds(&self) -> &'static [BugKind] {
        &[BugKind::MissingUnlock]
    }
    fn run(&self, session: &AnalysisSession<'_>, _config: &DetectorConfig) -> Vec<BugReport> {
        session.lock_summary().missing_unlocks.clone()
    }
}

struct LockOrder;

impl Checker for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }
    fn description(&self) -> &'static str {
        "two mutexes acquired in conflicting orders on different paths"
    }
    fn kinds(&self) -> &'static [BugKind] {
        &[BugKind::ConflictingLockOrder]
    }
    fn run(&self, session: &AnalysisSession<'_>, _config: &DetectorConfig) -> Vec<BugReport> {
        session.lock_summary().order_conflicts.clone()
    }
}

struct StructFieldRace;

impl Checker for StructFieldRace {
    fn name(&self) -> &'static str {
        "struct-field-race"
    }
    fn description(&self) -> &'static str {
        "a struct field usually guarded by a mutex, accessed without it"
    }
    fn kinds(&self) -> &'static [BugKind] {
        &[BugKind::StructFieldRace]
    }
    fn run(&self, session: &AnalysisSession<'_>, _config: &DetectorConfig) -> Vec<BugReport> {
        session.telemetry().time(Stage::Traditional, || {
            crate::traditional::lockset_race_reports(
                session.module(),
                &session.analysis,
                &session.prims,
            )
        })
    }
}

struct FatalInChild;

impl Checker for FatalInChild {
    fn name(&self) -> &'static str {
        "fatal-in-child"
    }
    fn description(&self) -> &'static str {
        "t.Fatal/FailNow called from a goroutine other than the test's"
    }
    fn kinds(&self) -> &'static [BugKind] {
        &[BugKind::FatalInChildGoroutine]
    }
    fn run(&self, session: &AnalysisSession<'_>, _config: &DetectorConfig) -> Vec<BugReport> {
        session.telemetry().time(Stage::Traditional, || {
            crate::traditional::fatal_in_child_reports(session.module(), &session.analysis)
        })
    }
}

struct SendOnClosed;

impl Checker for SendOnClosed {
    fn name(&self) -> &'static str {
        "send-on-closed"
    }
    fn description(&self) -> &'static str {
        "a schedule that executes a send after a close of the same channel (§6 extension)"
    }
    fn kinds(&self) -> &'static [BugKind] {
        &[BugKind::SendOnClosedChannel]
    }
    fn default_enabled(&self) -> bool {
        false
    }
    fn run(&self, session: &AnalysisSession<'_>, config: &DetectorConfig) -> Vec<BugReport> {
        session.detect_send_on_closed(config)
    }
}

/// Test hook: a checker that always panics, registered only when the
/// `GCATCH_DEBUG_PANIC_CHECKER` environment variable is set. It owns no
/// bug kinds, so the registry invariant is untouched; it exists to
/// exercise checker-level fault isolation end to end (one deterministic
/// incident, exit code unchanged unless `--strict`).
struct PanicTest;

impl Checker for PanicTest {
    fn name(&self) -> &'static str {
        "panic-test"
    }
    fn description(&self) -> &'static str {
        "deliberately panics to exercise fault isolation (debug hook)"
    }
    fn kinds(&self) -> &'static [BugKind] {
        &[]
    }
    fn run(&self, _session: &AnalysisSession<'_>, _config: &DetectorConfig) -> Vec<BugReport> {
        panic!("deliberate panic from the panic-test checker");
    }
}

static BMOC: Bmoc = Bmoc;
static DOUBLE_LOCK: DoubleLock = DoubleLock;
static MISSING_UNLOCK: MissingUnlock = MissingUnlock;
static LOCK_ORDER: LockOrder = LockOrder;
static STRUCT_FIELD_RACE: StructFieldRace = StructFieldRace;
static FATAL_IN_CHILD: FatalInChild = FatalInChild;
static SEND_ON_CLOSED: SendOnClosed = SendOnClosed;
static PANIC_TEST: PanicTest = PanicTest;

// ---------------------------------------------------------------- registry

/// Which checkers to run: an allow-list (`--only`, empty = defaults) and a
/// deny-list (`--skip`).
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// When non-empty, run exactly these checkers (by name).
    pub only: Vec<String>,
    /// Checkers to exclude (by name); applies after `only`.
    pub skip: Vec<String>,
}

impl Selection {
    /// Whether `checker` should run under this selection.
    pub fn enables(&self, checker: &dyn Checker) -> bool {
        let name = checker.name();
        let picked = if self.only.is_empty() {
            checker.default_enabled()
        } else {
            self.only.iter().any(|o| o == name)
        };
        picked && !self.skip.iter().any(|s| s == name)
    }

    /// Rejects names that match no registered checker (typo protection for
    /// the CLI, which turns the error into exit code 2).
    pub fn validate(&self, registry: &Registry) -> Result<(), String> {
        for name in self.only.iter().chain(self.skip.iter()) {
            if registry.find(name).is_none() {
                return Err(format!(
                    "unknown checker `{name}` (known: {})",
                    registry.names().join(", ")
                ));
            }
        }
        Ok(())
    }
}

/// The ordered list of registered checkers.
pub struct Registry {
    checkers: Vec<&'static dyn Checker>,
}

impl Registry {
    /// The standard registry: every checker in the suite, in report order
    /// (BMOC first, then the traditional checkers, then the opt-in
    /// send-on-closed extension).
    pub fn standard() -> Registry {
        let mut checkers: Vec<&'static dyn Checker> = vec![
            &BMOC,
            &DOUBLE_LOCK,
            &MISSING_UNLOCK,
            &LOCK_ORDER,
            &STRUCT_FIELD_RACE,
            &FATAL_IN_CHILD,
            &SEND_ON_CLOSED,
        ];
        if std::env::var_os("GCATCH_DEBUG_PANIC_CHECKER").is_some() {
            checkers.push(&PANIC_TEST);
        }
        Registry { checkers }
    }

    /// All registered checkers, in order.
    pub fn checkers(&self) -> impl Iterator<Item = &dyn Checker> {
        self.checkers.iter().copied()
    }

    /// Looks a checker up by its stable name.
    pub fn find(&self, name: &str) -> Option<&dyn Checker> {
        self.checkers.iter().copied().find(|c| c.name() == name)
    }

    /// The stable names of all registered checkers, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.checkers.iter().map(|c| c.name()).collect()
    }

    /// Runs the selected checkers over `session` in registry order and
    /// deduplicates across checkers by [`BugReport::dedup_key`]. With each
    /// checker's kinds disjoint (the registry invariant), the dedup only
    /// ever drops true duplicates within one checker's output.
    pub fn run(
        &self,
        session: &AnalysisSession<'_>,
        config: &DetectorConfig,
        selection: &Selection,
    ) -> Vec<RunOutput> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for checker in self.checkers() {
            if !selection.enables(checker) {
                continue;
            }
            // The per-checker span lives on the main lane; detectors that
            // shard work (BMOC) open their own per-worker lanes inside it.
            let mut lane = session.tracer().lane(0, "main");
            lane.begin(format!("checker:{}", checker.name()), Vec::new());
            // Fault isolation: one panicking checker becomes an incident
            // (in registry order, so output is deterministic) and the
            // remaining checkers still run.
            let mut reports = match catch_isolated(|| checker.run(session, config)) {
                Ok(reports) => reports,
                Err(message) => {
                    lane.rewind();
                    lane.instant(
                        "incident",
                        vec![
                            ("kind", crate::trace::ArgValue::from("checker")),
                            ("name", crate::trace::ArgValue::from(checker.name())),
                        ],
                    );
                    session.record_incident(Incident {
                        kind: IncidentKind::Checker,
                        name: checker.name().to_string(),
                        message,
                        rung: 0,
                        flight: Vec::new(),
                    });
                    out.push(RunOutput {
                        checker: checker.name(),
                        reports: Vec::new(),
                    });
                    continue;
                }
            };
            reports.retain(|r| {
                let fresh = seen.insert(r.dedup_key());
                if !fresh {
                    session.telemetry().add(Counter::DuplicatesDropped, 1);
                    lane.instant(
                        "dedup_dropped",
                        vec![("kind", crate::trace::ArgValue::from(r.kind.label()))],
                    );
                }
                fresh
            });
            lane.end();
            out.push(RunOutput {
                checker: checker.name(),
                reports,
            });
        }
        out
    }
}

/// One checker's deduplicated reports from a [`Registry::run`].
#[derive(Debug)]
pub struct RunOutput {
    /// The checker's stable name.
    pub checker: &'static str,
    /// Its reports, already deduplicated across the whole run.
    pub reports: Vec<BugReport>,
}

/// Flattens a run into a plain report list (registry order preserved).
pub fn flatten(outputs: Vec<RunOutput>) -> Vec<BugReport> {
    outputs.into_iter().flat_map(|o| o.reports).collect()
}
