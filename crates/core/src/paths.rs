//! Path enumeration (§3.3 of the paper).
//!
//! For every goroutine in a channel's analysis scope, GCatch enumerates
//! inter-procedural execution paths:
//!
//! * callees that perform no operation on any `Pset` primitive (directly or
//!   transitively) are skipped;
//! * loops whose bounds are not statically evident are unrolled at most
//!   twice (each block may appear at most twice per frame), which is the
//!   paper's documented source of both false positives and negatives;
//! * deferred operations are appended at returns (LIFO), including the
//!   `defer close(ch)` / `defer mu.Unlock()` helpers and deferred closures;
//! * `t.Fatal` ends the goroutine's path after draining defers;
//! * branch outcomes over *read-only* booleans are recorded as facts and
//!   contradictory paths are pruned — the paper's infeasible-path filter.

use crate::primitives::{OpKind, PrimId, Primitives};
use crate::resilience::Budget;
use golite::Span;
use golite_ir::alias::Analysis;
use golite_ir::ir::*;
use std::collections::{HashMap, HashSet};

/// A synchronization operation occurrence on a path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOp {
    /// The primitive operated on.
    pub prim: PrimId,
    /// Send/recv/close in the unified channel view.
    pub kind: OpKind,
    /// Static instruction location.
    pub loc: Loc,
    /// Source span.
    pub span: Span,
    /// Whether the op came from a mutex.
    pub from_mutex: bool,
}

/// One event along a goroutine's path.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A plain synchronization operation (on a Pset primitive).
    Op(PathOp),
    /// A `select`: either one case was chosen (`chosen = Some(i)`) or the
    /// `default` arm ran (`chosen = None`). `cases` lists the communication
    /// ops of all non-default cases that touch Pset primitives.
    Select {
        /// Location of the select terminator.
        loc: Loc,
        /// Source span.
        span: Span,
        /// Case operations on Pset primitives (case index preserved).
        cases: Vec<(usize, PathOp)>,
        /// Index into the select's cases, or `None` for `default`.
        chosen: Option<usize>,
        /// Whether the select has a default arm.
        has_default: bool,
        /// Total number of communication cases in the source select (may
        /// exceed `cases` when some wait on primitives outside the Pset).
        n_cases: usize,
    },
    /// A goroutine spawn whose target is statically known.
    Spawn {
        /// The `go` instruction.
        site: Loc,
        /// The spawned function.
        target: FuncId,
    },
    /// A branch decision over a read-only boolean (for infeasibility
    /// filtering).
    Fact {
        /// Function owning the variable.
        func: FuncId,
        /// The read-only variable.
        var: Var,
        /// The direction taken.
        value: bool,
    },
}

/// An enumerated execution path of one goroutine.
#[derive(Debug, Clone, Default)]
pub struct Path {
    /// Events in execution order.
    pub events: Vec<Event>,
}

impl Path {
    /// Indices of events that could block forever (candidates for the
    /// suspicious group): sends, receives, and selects without default.
    pub fn blocking_candidates(&self) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| match e {
                Event::Op(op) => op.kind.can_block(),
                Event::Select {
                    has_default,
                    cases,
                    n_cases,
                    ..
                } => {
                    // A select is only a credible blocking candidate when
                    // every one of its cases is modeled; a case on a
                    // primitive outside the Pset could fire and unblock it.
                    let distinct: HashSet<usize> = cases.iter().map(|(ci, _)| *ci).collect();
                    !has_default && !cases.is_empty() && distinct.len() == *n_cases
                }
                _ => false,
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Enumeration limits (paper defaults: unroll 2; ours add explicit caps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// Maximum visits of one block within one frame (loop unrolling).
    pub max_block_visits: u32,
    /// Maximum paths returned per function.
    pub max_paths_per_func: usize,
    /// Maximum events per path.
    pub max_events: usize,
    /// Maximum call-inlining depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_block_visits: 2,
            max_paths_per_func: 96,
            max_events: 160,
            max_depth: 6,
        }
    }
}

/// The path enumerator for one (channel, Pset, scope) instance.
pub struct Enumerator<'a> {
    module: &'a Module,
    analysis: &'a Analysis<'a>,
    prims: &'a Primitives,
    pset: HashSet<PrimId>,
    /// Functions that (transitively) touch a Pset primitive.
    touchers: HashSet<FuncId>,
    limits: Limits,
    /// Cache of enumerated paths per function.
    cache: HashMap<FuncId, Vec<Path>>,
    /// Read-only boolean vars per function.
    read_only: HashMap<FuncId, HashSet<Var>>,
    /// Paths enumerated (unique per function; cache hits don't recount).
    paths_enumerated: u64,
    /// Branches discarded by the infeasible-path filter.
    branches_pruned: u64,
    /// Cooperative wall-clock/step budget (inactive by default).
    budget: Budget,
    /// Set once the budget expires mid-enumeration; remaining walks are
    /// abandoned and the paths collected so far are returned truncated.
    exhausted: bool,
}

impl<'a> Enumerator<'a> {
    /// Creates an enumerator for the given Pset.
    pub fn new(
        module: &'a Module,
        analysis: &'a Analysis,
        prims: &'a Primitives,
        pset: &[PrimId],
        limits: Limits,
    ) -> Enumerator<'a> {
        let pset: HashSet<PrimId> = pset.iter().copied().collect();
        // A function "touches" the Pset if any function reachable from it
        // contains an op on a Pset primitive.
        let mut direct: HashSet<FuncId> = HashSet::new();
        for op in &prims.ops {
            if pset.contains(&op.prim) {
                direct.insert(op.func);
            }
        }
        // `f` touches the Pset ⟺ some direct function is reachable from
        // `f` ⟺ `f` can reach a direct function — so the union of the
        // (memoized) reverse-reachability slices gives the same set
        // without scanning every module function per channel.
        let mut touchers = HashSet::new();
        for &d in &direct {
            touchers.extend(analysis.reaching(d).iter().copied());
        }
        Enumerator {
            module,
            analysis,
            prims,
            pset,
            touchers,
            limits,
            cache: HashMap::new(),
            read_only: HashMap::new(),
            paths_enumerated: 0,
            branches_pruned: 0,
            budget: Budget::default(),
            exhausted: false,
        }
    }

    /// Attach a cooperative [`Budget`]: enumeration checks it between
    /// blocks and stops early (marking the enumerator
    /// [`exhausted`](Enumerator::exhausted)) once it expires.
    pub fn with_budget(mut self, budget: Budget) -> Enumerator<'a> {
        self.budget = budget;
        self
    }

    /// Whether the budget expired during enumeration (results are
    /// truncated and the caller should degrade or report an incident).
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Total paths enumerated so far (fresh enumerations only).
    pub fn paths_enumerated(&self) -> u64 {
        self.paths_enumerated
    }

    /// Total branch directions discarded as infeasible so far.
    pub fn branches_pruned(&self) -> u64 {
        self.branches_pruned
    }

    /// Enumerates the paths of `func` (goroutine root or inlined callee).
    pub fn paths_of(&mut self, func: FuncId) -> Vec<Path> {
        if let Some(cached) = self.cache.get(&func) {
            return cached.clone();
        }
        // Mark in-progress with an empty entry to cut call-graph cycles.
        self.cache.insert(func, vec![Path::default()]);
        let mut out = Vec::new();
        let f = self.module.func(func);
        let mut visits = HashMap::new();
        self.walk(
            f,
            BlockId(0),
            0,
            &mut visits,
            Path::default(),
            &mut Vec::new(),
            &mut HashMap::new(),
            &mut out,
            0,
        );
        if out.is_empty() {
            out.push(Path::default());
        }
        out.truncate(self.limits.max_paths_per_func);
        self.paths_enumerated += out.len() as u64;
        self.cache.insert(func, out.clone());
        out
    }

    /// Read-only boolean variables of `func`: assigned exactly once.
    fn read_only_vars(&mut self, func: FuncId) -> HashSet<Var> {
        if let Some(cached) = self.read_only.get(&func) {
            return cached.clone();
        }
        let f = self.module.func(func);
        let mut def_count: HashMap<Var, u32> = HashMap::new();
        for block in &f.blocks {
            for instr in &block.instrs {
                for d in instr_defs(instr) {
                    *def_count.entry(d).or_insert(0) += 1;
                }
            }
        }
        let mut out: HashSet<Var> = HashSet::new();
        for (v, count) in def_count {
            if count <= 1 {
                out.insert(v);
            }
        }
        // Parameters are read-only if never reassigned (count absent).
        for &p in &f.params {
            if !f
                .blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .flat_map(instr_defs)
                .any(|d| d == p)
            {
                out.insert(p);
            }
        }
        self.read_only.insert(func, out.clone());
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        f: &Function,
        block: BlockId,
        start_idx: usize,
        visits: &mut HashMap<BlockId, u32>,
        mut path: Path,
        defers: &mut Vec<Vec<Event>>,
        facts: &mut HashMap<(FuncId, Var), bool>,
        out: &mut Vec<Path>,
        depth: usize,
    ) {
        if out.len() >= self.limits.max_paths_per_func {
            return;
        }
        if self.exhausted {
            return;
        }
        if self.budget.is_active() && self.budget.expired() {
            // Emit the partial path so the ops observed so far still
            // participate in combinations, then abandon the walk.
            self.exhausted = true;
            out.push(path);
            return;
        }
        if path.events.len() > self.limits.max_events {
            out.push(path);
            return;
        }
        let blk = f.block(block);
        for idx in start_idx..blk.instrs.len() {
            let loc = Loc {
                func: f.id,
                block,
                idx: idx as u32,
            };
            let span = blk.spans[idx];
            let instr = &blk.instrs[idx];
            match instr {
                Instr::Send { chan, .. } => {
                    self.push_ops(&mut path, f.id, loc, span, OpKind::Send, chan);
                }
                Instr::Recv { chan, .. } => {
                    self.push_ops(&mut path, f.id, loc, span, OpKind::Recv, chan);
                }
                Instr::Close { chan } => {
                    self.push_ops(&mut path, f.id, loc, span, OpKind::Close, chan);
                }
                Instr::Lock { mutex, .. } => {
                    self.push_ops(&mut path, f.id, loc, span, OpKind::Send, mutex);
                }
                Instr::Unlock { mutex, .. } => {
                    self.push_ops(&mut path, f.id, loc, span, OpKind::Recv, mutex);
                }
                Instr::Go { .. } => {
                    if let Some(target) = self.single_target(loc) {
                        if self.touchers.contains(&target) {
                            path.events.push(Event::Spawn { site: loc, target });
                        }
                    }
                }
                Instr::Call { .. } => {
                    if let Some(target) = self.single_target(loc) {
                        if self.touchers.contains(&target) && depth < self.limits.max_depth {
                            // Inline: splice each callee path, then continue.
                            let callee_paths = self.paths_of(target);
                            for cp in callee_paths {
                                let mut branched = path.clone();
                                branched.events.extend(cp.events);
                                let mut defers2 = defers.clone();
                                let mut facts2 = facts.clone();
                                let mut visits2 = visits.clone();
                                self.walk(
                                    f,
                                    block,
                                    idx + 1,
                                    &mut visits2,
                                    branched,
                                    &mut defers2,
                                    &mut facts2,
                                    out,
                                    depth,
                                );
                            }
                            return;
                        }
                    }
                }
                Instr::DeferCall { func, args } => {
                    if let Some(events) = self.defer_events(f.id, loc, span, func, args, depth) {
                        defers.push(events);
                    }
                }
                Instr::Fatal => {
                    // Goroutine exit: drain defers and end the path.
                    self.drain_defers(&mut path, defers);
                    out.push(path);
                    return;
                }
                Instr::Panic { .. } => {
                    out.push(path);
                    return;
                }
                _ => {}
            }
        }

        // Terminator. Paths that cannot continue (every successor exhausted
        // its unroll budget) are emitted truncated: the operations observed
        // so far still participate in combinations, mirroring the paper's
        // bounded unrolling of non-terminating loops.
        let term_loc = Loc {
            func: f.id,
            block,
            idx: blk.instrs.len() as u32,
        };
        match &blk.term {
            Terminator::Jump(b) => {
                if self.enter(f, *b, visits) {
                    self.walk(f, *b, 0, visits, path, defers, facts, out, depth);
                    self.leave(*b, visits);
                } else {
                    out.push(path);
                }
            }
            Terminator::Branch { cond, then, els } => {
                let fact_var = match cond {
                    Operand::Var(v) if self.read_only_vars(f.id).contains(v) => Some(*v),
                    _ => None,
                };
                let mut advanced = false;
                for (target, value) in [(*then, true), (*els, false)] {
                    if let Some(v) = fact_var {
                        if let Some(&prev) = facts.get(&(f.id, v)) {
                            if prev != value {
                                advanced = true; // infeasible, not truncated
                                self.branches_pruned += 1;
                                continue;
                            }
                        }
                    }
                    if self.enter(f, target, visits) {
                        advanced = true;
                        let mut p2 = path.clone();
                        if let Some(v) = fact_var {
                            p2.events.push(Event::Fact {
                                func: f.id,
                                var: v,
                                value,
                            });
                        }
                        let mut facts2 = facts.clone();
                        if let Some(v) = fact_var {
                            facts2.insert((f.id, v), value);
                        }
                        let mut defers2 = defers.clone();
                        self.walk(
                            f,
                            target,
                            0,
                            visits,
                            p2,
                            &mut defers2,
                            &mut facts2,
                            out,
                            depth,
                        );
                        self.leave(target, visits);
                    }
                }
                if !advanced {
                    out.push(path);
                }
            }
            Terminator::Return(_) | Terminator::Unreachable => {
                let mut p2 = path;
                if matches!(blk.term, Terminator::Return(_)) {
                    self.drain_defers(&mut p2, defers);
                }
                out.push(p2);
            }
            Terminator::Select { cases, default } => {
                // Collect Pset ops for each case.
                let mut case_ops: Vec<(usize, PathOp)> = Vec::new();
                for (ci, case) in cases.iter().enumerate() {
                    let kind = match case.op {
                        SelectOp::Send { .. } => OpKind::Send,
                        SelectOp::Recv { .. } => OpKind::Recv,
                    };
                    for (prim, from_mutex) in self.resolve(f.id, case.op.chan()) {
                        case_ops.push((
                            ci,
                            PathOp {
                                prim,
                                kind,
                                loc: term_loc,
                                span: blk.term_span,
                                from_mutex,
                            },
                        ));
                    }
                }
                // One continuation per case (plus default).
                for (ci, case) in cases.iter().enumerate() {
                    if self.enter(f, case.target, visits) {
                        let mut p2 = path.clone();
                        p2.events.push(Event::Select {
                            loc: term_loc,
                            span: blk.term_span,
                            cases: case_ops.clone(),
                            chosen: Some(ci),
                            has_default: default.is_some(),
                            n_cases: cases.len(),
                        });
                        let mut defers2 = defers.clone();
                        let mut facts2 = facts.clone();
                        self.walk(
                            f,
                            case.target,
                            0,
                            visits,
                            p2,
                            &mut defers2,
                            &mut facts2,
                            out,
                            depth,
                        );
                        self.leave(case.target, visits);
                    }
                }
                if let Some(d) = default {
                    if self.enter(f, *d, visits) {
                        let mut p2 = path.clone();
                        p2.events.push(Event::Select {
                            loc: term_loc,
                            span: blk.term_span,
                            cases: case_ops,
                            chosen: None,
                            has_default: true,
                            n_cases: cases.len(),
                        });
                        let mut defers2 = defers.clone();
                        let mut facts2 = facts.clone();
                        self.walk(f, *d, 0, visits, p2, &mut defers2, &mut facts2, out, depth);
                        self.leave(*d, visits);
                    }
                }
            }
        }
    }

    fn enter(&self, _f: &Function, b: BlockId, visits: &mut HashMap<BlockId, u32>) -> bool {
        let count = visits.entry(b).or_insert(0);
        if *count >= self.limits.max_block_visits {
            return false;
        }
        *count += 1;
        true
    }

    fn leave(&self, b: BlockId, visits: &mut HashMap<BlockId, u32>) {
        if let Some(c) = visits.get_mut(&b) {
            *c -= 1;
        }
    }

    fn resolve(&self, func: FuncId, op: &Operand) -> Vec<(PrimId, bool)> {
        crate::alias_ext::chan_sites_of(self.analysis, func, op)
            .into_iter()
            .filter_map(|(site, is_mutex)| self.prims.by_site(site).map(|p| (p.id, is_mutex)))
            .filter(|(id, _)| self.pset.contains(id))
            .collect()
    }

    fn push_ops(
        &self,
        path: &mut Path,
        func: FuncId,
        loc: Loc,
        span: Span,
        kind: OpKind,
        operand: &Operand,
    ) {
        for (prim, from_mutex) in self.resolve(func, operand) {
            path.events.push(Event::Op(PathOp {
                prim,
                kind,
                loc,
                span,
                from_mutex,
            }));
        }
    }

    /// The unique unambiguous target of the call at `loc`, if any.
    fn single_target(&self, loc: Loc) -> Option<FuncId> {
        let cs = self.analysis.calls_in(loc.func).find(|cs| cs.loc == loc)?;
        if cs.ambiguous || cs.targets.len() != 1 {
            return None;
        }
        Some(cs.targets[0])
    }

    /// Events a `defer` contributes when its frame returns (one group per
    /// defer statement, `None` when it touches no Pset primitive).
    fn defer_events(
        &mut self,
        func: FuncId,
        loc: Loc,
        span: Span,
        target: &FuncRef,
        args: &[Operand],
        depth: usize,
    ) -> Option<Vec<Event>> {
        match target {
            FuncRef::Static(fid) => {
                let name = self.module.func(*fid).name;
                match name.as_str() {
                    // Helper defers: resolve the primitive from the argument
                    // *at the defer site* (context-sensitive).
                    "__close" | "__unlock" | "__runlock" => {
                        let kind = if name == "__close" {
                            OpKind::Close
                        } else {
                            OpKind::Recv
                        };
                        let ops: Vec<Event> = self
                            .resolve(func, &args[0])
                            .into_iter()
                            .map(|(prim, from_mutex)| {
                                Event::Op(PathOp {
                                    prim,
                                    kind,
                                    loc,
                                    span,
                                    from_mutex,
                                })
                            })
                            .collect();
                        if ops.is_empty() {
                            None
                        } else {
                            Some(ops)
                        }
                    }
                    _ => self.deferred_body_events(*fid, depth),
                }
            }
            FuncRef::Dynamic(op) => {
                // Deferred closure: resolve via points-to.
                let mut targets: Vec<FuncId> = Vec::new();
                for obj in self.analysis.operand_points_to(func, op) {
                    if let Some(fid) = obj.callee() {
                        targets.push(fid);
                    }
                }
                targets.sort_unstable();
                targets.dedup();
                if targets.len() == 1 {
                    self.deferred_body_events(targets[0], depth)
                } else {
                    None
                }
            }
            FuncRef::External(_) => None,
        }
    }

    /// Events of a deferred function body (first enumerated path only —
    /// deferred cleanup code is almost always straight-line; taking one
    /// alternative keeps defers from exploding the path count).
    fn deferred_body_events(&mut self, fid: FuncId, depth: usize) -> Option<Vec<Event>> {
        if !self.touchers.contains(&fid) || depth >= self.limits.max_depth {
            return None;
        }
        let paths = self.paths_of(fid);
        paths
            .into_iter()
            .next()
            .filter(|p| !p.events.is_empty())
            .map(|p| p.events)
    }

    /// Appends deferred event groups in LIFO order.
    fn drain_defers(&self, path: &mut Path, defers: &mut Vec<Vec<Event>>) {
        while let Some(events) = defers.pop() {
            path.events.extend(events);
        }
    }
}

/// Helper: registers written by an instruction.
fn instr_defs(instr: &Instr) -> Vec<Var> {
    match instr {
        Instr::Const { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::UnOp { dst, .. }
        | Instr::BinOp { dst, .. }
        | Instr::MakeChan { dst, .. }
        | Instr::MakeMutex { dst, .. }
        | Instr::MakeWaitGroup { dst }
        | Instr::MakeCond { dst }
        | Instr::MakeStruct { dst, .. }
        | Instr::MakeSlice { dst, .. }
        | Instr::MakeClosure { dst, .. }
        | Instr::Len { dst, .. }
        | Instr::IndexLoad { dst, .. }
        | Instr::FieldLoad { dst, .. }
        | Instr::LoadGlobal { dst, .. } => vec![*dst],
        Instr::Recv { dst, ok, .. } => {
            let mut out = Vec::new();
            if let Some(d) = dst {
                out.push(*d);
            }
            if let Some(o) = ok {
                out.push(*o);
            }
            out
        }
        Instr::Call { dsts, .. } => dsts.clone(),
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::collect;
    use golite_ir::{analyze, lower_source};

    struct Setup {
        module: &'static Module,
        analysis: Analysis<'static>,
        prims: Primitives,
    }

    fn setup(src: &str) -> Setup {
        // Leaked so the analysis (which borrows the module) can live in
        // the same struct; test-only.
        let module: &'static Module = Box::leak(Box::new(lower_source(src).expect("lowering")));
        let analysis = analyze(module);
        let prims = collect(module, &analysis);
        Setup {
            module,
            analysis,
            prims,
        }
    }

    fn all_prims(s: &Setup) -> Vec<PrimId> {
        s.prims.all.iter().map(|p| p.id).collect()
    }

    #[test]
    fn straight_line_has_one_path() {
        let s = setup("func main() {\n ch := make(chan int, 1)\n ch <- 1\n <-ch\n}");
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let main = s.module.func_by_name("main").unwrap().id;
        let paths = e.paths_of(main);
        assert_eq!(paths.len(), 1);
        let ops: Vec<&PathOp> = paths[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Op(op) => Some(op),
                _ => None,
            })
            .collect();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, OpKind::Send);
        assert_eq!(ops[1].kind, OpKind::Recv);
    }

    #[test]
    fn figure1_parent_has_three_paths() {
        // Paper: "Since there is a select statement with two cases at line 9
        // and an if statement at line 11, GCatch finds three possible paths
        // for the parent goroutine."
        let s = setup(
            r#"
func Exec(done chan struct{}) {
    outDone := make(chan error)
    go func() {
        outDone <- StdCopy()
    }()
    select {
    case err := <-outDone:
        if err != nil {
            return
        }
    case <-done:
        return
    }
}

func StdCopy() error {
    return nil
}
"#,
        );
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let exec = s.module.func_by_name("Exec").unwrap().id;
        let paths = e.paths_of(exec);
        assert_eq!(paths.len(), 3, "case1/err!=nil, case1/err==nil, case2");
        // Every path contains the spawn event.
        for p in &paths {
            assert!(p.events.iter().any(|e| matches!(e, Event::Spawn { .. })));
        }
    }

    #[test]
    fn callee_without_pset_ops_is_skipped() {
        let s = setup(
            "func busy() {\n x := 1\n _ = x\n}\nfunc main() {\n ch := make(chan int, 1)\n busy()\n ch <- 1\n}",
        );
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let main = s.module.func_by_name("main").unwrap().id;
        let paths = e.paths_of(main);
        assert_eq!(paths.len(), 1, "busy() contributes no path split");
    }

    #[test]
    fn callee_with_pset_ops_is_inlined() {
        let s = setup(
            "func helper(ch chan int) {\n ch <- 1\n}\nfunc main() {\n ch := make(chan int, 1)\n helper(ch)\n <-ch\n}",
        );
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let main = s.module.func_by_name("main").unwrap().id;
        let paths = e.paths_of(main);
        assert_eq!(paths.len(), 1);
        let ops: Vec<OpKind> = paths[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Op(op) => Some(op.kind),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![OpKind::Send, OpKind::Recv],
            "helper's send spliced in"
        );
    }

    #[test]
    fn loops_unrolled_at_most_twice() {
        let s = setup("func main() {\n ch := make(chan int, 8)\n for {\n  ch <- 1\n }\n}");
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let main = s.module.func_by_name("main").unwrap().id;
        let paths = e.paths_of(main);
        let max_sends = paths
            .iter()
            .map(|p| {
                p.events
                    .iter()
                    .filter(|e| matches!(e, Event::Op(op) if op.kind == OpKind::Send))
                    .count()
            })
            .max()
            .unwrap_or(0);
        assert!(
            max_sends <= 2,
            "at most two unrolled sends, got {max_sends}"
        );
    }

    #[test]
    fn defer_close_appends_at_return() {
        let s = setup("func main() {\n ch := make(chan int)\n defer close(ch)\n x := 1\n _ = x\n}");
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let main = s.module.func_by_name("main").unwrap().id;
        let paths = e.paths_of(main);
        assert_eq!(paths.len(), 1);
        let last = paths[0].events.last().expect("has events");
        assert!(
            matches!(last, Event::Op(op) if op.kind == OpKind::Close),
            "deferred close is the final event"
        );
    }

    #[test]
    fn fatal_ends_path_draining_defers() {
        let s = setup(
            r#"
func TestX(t *testing.T, fail bool) {
    stop := make(chan struct{})
    defer close(stop)
    if fail {
        t.Fatalf("boom")
    }
    stop <- struct{}{}
}
"#,
        );
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let f = s.module.func_by_name("TestX").unwrap().id;
        let paths = e.paths_of(f);
        assert_eq!(paths.len(), 2);
        // The Fatal path still ends with the deferred close.
        let fatal_path = paths
            .iter()
            .find(|p| {
                p.events
                    .iter()
                    .filter(|e| matches!(e, Event::Op(op) if op.kind == OpKind::Send))
                    .count()
                    == 0
            })
            .expect("a path without the send exists");
        assert!(matches!(
            fatal_path.events.last(),
            Some(Event::Op(op)) if op.kind == OpKind::Close
        ));
    }

    #[test]
    fn contradictory_readonly_branches_pruned() {
        // `cond` is read-only; a path taking cond==true then cond==false is
        // impossible and must not be enumerated.
        let s = setup(
            "func main(cond bool) {\n ch := make(chan int, 4)\n if cond {\n  ch <- 1\n }\n if cond {\n  ch <- 2\n }\n}",
        );
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let main = s.module.func_by_name("main").unwrap().id;
        let paths = e.paths_of(main);
        // Consistent worlds only: cond=true (2 sends) or cond=false (0 sends).
        assert_eq!(paths.len(), 2);
        let send_counts: Vec<usize> = paths
            .iter()
            .map(|p| {
                p.events
                    .iter()
                    .filter(|e| matches!(e, Event::Op(op) if op.kind == OpKind::Send))
                    .count()
            })
            .collect();
        assert!(send_counts.contains(&2));
        assert!(send_counts.contains(&0));
        assert!(!send_counts.contains(&1), "mixed world is infeasible");
    }

    #[test]
    fn select_paths_cover_all_cases() {
        let s = setup(
            "func main() {\n a := make(chan int)\n b := make(chan int)\n select {\n case <-a:\n case <-b:\n default:\n }\n}",
        );
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let main = s.module.func_by_name("main").unwrap().id;
        let paths = e.paths_of(main);
        assert_eq!(paths.len(), 3, "two cases plus default");
        let chosens: Vec<Option<usize>> = paths
            .iter()
            .filter_map(|p| {
                p.events.iter().find_map(|e| match e {
                    Event::Select { chosen, .. } => Some(*chosen),
                    _ => None,
                })
            })
            .collect();
        assert!(chosens.contains(&Some(0)));
        assert!(chosens.contains(&Some(1)));
        assert!(chosens.contains(&None));
    }

    #[test]
    fn blocking_candidates_identified() {
        let s = setup(
            "func main() {\n ch := make(chan int)\n select {\n case <-ch:\n default:\n }\n ch <- 1\n close(ch)\n}",
        );
        let pset = all_prims(&s);
        let mut e = Enumerator::new(s.module, &s.analysis, &s.prims, &pset, Limits::default());
        let main = s.module.func_by_name("main").unwrap().id;
        let paths = e.paths_of(main);
        for p in &paths {
            for &c in &p.blocking_candidates() {
                match &p.events[c] {
                    Event::Op(op) => assert!(op.kind.can_block()),
                    Event::Select { has_default, .. } => {
                        assert!(!has_default, "select with default cannot block")
                    }
                    other => panic!("bad candidate {other:?}"),
                }
            }
        }
    }
}
