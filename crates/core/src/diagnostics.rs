//! Structured diagnostics.
//!
//! A [`Diagnostic`] wraps a [`BugReport`] with the presentation-layer
//! fields tools consume: a stable ID (`GC-` + 8 hex digits of an FNV-1a
//! hash over the bug kind, the involved operation locations, and the
//! primitive site — invariant under checker ordering and parallelism), a
//! [`Severity`], and the owning checker's name. [`render_json`] serializes
//! a whole run — diagnostics plus optional [`Stats`] — as JSON without any
//! external dependency (`gcatch check --json`).

use crate::checkers::RunOutput;
use crate::report::{BugKind, BugReport};
use crate::resilience::Incident;
use crate::telemetry::Stats;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Guaranteed misbehavior when the witness schedule runs: a goroutine
    /// blocks forever or the program panics.
    Error,
    /// A latent hazard: racy access, leaked lock, inconsistent order.
    Warning,
}

impl Severity {
    /// Stable lowercase name (JSON, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }

    /// The severity of a bug kind.
    pub fn of(kind: BugKind) -> Severity {
        match kind {
            BugKind::BmocChannel
            | BugKind::BmocChannelMutex
            | BugKind::DoubleLock
            | BugKind::SendOnClosedChannel => Severity::Error,
            BugKind::MissingUnlock
            | BugKind::ConflictingLockOrder
            | BugKind::StructFieldRace
            | BugKind::FatalInChildGoroutine => Severity::Warning,
        }
    }
}

/// A bug report with stable identity and presentation metadata.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable ID, `GC-` plus eight hex digits; identical across runs,
    /// checker selections, and `--jobs` values.
    pub id: String,
    /// Name of the checker that produced the report.
    pub checker: &'static str,
    /// Severity derived from the bug kind.
    pub severity: Severity,
    /// The underlying report.
    pub report: BugReport,
}

impl Diagnostic {
    /// Wraps a report produced by `checker`.
    pub fn new(checker: &'static str, report: BugReport) -> Diagnostic {
        let id = stable_id(&report);
        let severity = Severity::of(report.kind);
        Diagnostic {
            id,
            checker,
            severity,
            report,
        }
    }

    /// Wraps every report of a registry run, preserving order.
    pub fn from_run(outputs: Vec<RunOutput>) -> Vec<Diagnostic> {
        outputs
            .into_iter()
            .flat_map(|o| {
                o.reports
                    .into_iter()
                    .map(move |r| Diagnostic::new(o.checker, r))
            })
            .collect()
    }
}

/// `GC-xxxxxxxx` from an FNV-1a hash over the report's stable identity:
/// the kind label, the sorted op locations, and the primitive site. Spans,
/// notes, and witness text are deliberately excluded so cosmetic wording
/// changes do not move IDs.
fn stable_id(report: &BugReport) -> String {
    let (kind, primitive, locs) = report.dedup_key();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(kind.label().as_bytes());
    if let Some(p) = primitive {
        eat(format!("@f{}b{}i{}", p.func.0, p.block.0, p.idx).as_bytes());
    }
    for loc in locs {
        eat(format!("|f{}b{}i{}", loc.func.0, loc.block.0, loc.idx).as_bytes());
    }
    // Fold to 32 bits for a compact, still collision-resistant-enough ID.
    let folded = (h >> 32) as u32 ^ (h as u32);
    format!("GC-{folded:08x}")
}

// ------------------------------------------------------------------- JSON

/// Escapes a string for a JSON string literal (quotes not included).
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_json(value, out);
    out.push('"');
}

/// Renders a run as a stable JSON document:
///
/// ```json
/// {
///   "version": 1,
///   "diagnostics": [
///     {"id": "GC-…", "checker": "bmoc", "kind": "BMOC-C",
///      "severity": "error", "primitive": {…}, "ops": […],
///      "witness": […], "notes": "…",
///      "provenance": {"channel": "…", "pset_size": N,
///                     "paths_enumerated": N, "branches_pruned": N,
///                     "combos_tried": N, "groups_checked": N,
///                     "solver_verdict": "blocking",
///                     "solver_steps": N, "solver_decisions": N,
///                     "solver_conflicts": N}},
///     …
///   ],
///   "stats": {"counters": {…}, "stage_ms": {…},
///             "hist": {"<metric>": {"count": N, "max": N,
///                      "p50": N, "p90": N, "p99": N}, …}}
/// }
/// ```
///
/// `stats` is present only when requested (`--stats`).
///
/// Schema evolution notes (for downstream consumers):
/// * `version` stays 1 — every addition below is optional/additive, and
///   pre-existing fields keep their exact shape, so old consumers that
///   ignore unknown keys must not break.
/// * `provenance` (added with the observability layer) appears only on
///   diagnostics from the BMOC-family detectors; traditional-checker
///   diagnostics omit the key entirely (it is never `null`). Its counts
///   are deterministic and identical across `--jobs` values.
/// * `stats.hist` (same addition) maps metric names to percentile
///   summaries of log-bucketed histograms; time-valued metrics
///   (`*_ns` suffix) are integer nanoseconds.
/// * `incidents` (added with the resilience layer, via
///   [`render_json_with`]) appears only when the run recorded contained
///   failures; each entry is `{"kind", "name", "message", "rung"}` plus
///   an optional `"flight"` array of flight-recorder lines (added with
///   the run-level observability layer; present only when non-empty, so
///   flight-free runs keep their exact prior bytes).
///   Likewise `provenance.degradation_rung` appears only on findings
///   produced below full limits, so budget-free runs are byte-identical
///   to earlier versions.
pub fn render_json(diagnostics: &[Diagnostic], stats: Option<&Stats>) -> String {
    render_json_with(diagnostics, stats, &[])
}

/// [`render_json`] plus the run's [`Incident`]s: when `incidents` is
/// non-empty, an `"incidents"` array is emitted after `"diagnostics"`.
pub fn render_json_with(
    diagnostics: &[Diagnostic],
    stats: Option<&Stats>,
    incidents: &[Incident],
) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":1,\"diagnostics\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "id", &d.id);
        out.push(',');
        push_str_field(&mut out, "checker", d.checker);
        out.push(',');
        push_str_field(&mut out, "kind", d.report.kind.label());
        out.push(',');
        push_str_field(&mut out, "severity", d.severity.name());
        out.push(',');
        out.push_str("\"primitive\":");
        if d.report.primitive.is_some() {
            out.push('{');
            push_str_field(&mut out, "name", &d.report.primitive_name);
            out.push(',');
            push_str_field(&mut out, "span", &d.report.primitive_span.to_string());
            out.push('}');
        } else {
            out.push_str("null");
        }
        out.push_str(",\"ops\":[");
        for (j, op) in d.report.ops.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('{');
            push_str_field(&mut out, "what", &op.what);
            out.push(',');
            push_str_field(&mut out, "func", &op.func_name);
            out.push(',');
            push_str_field(&mut out, "span", &op.span.to_string());
            out.push('}');
        }
        out.push_str("],\"witness\":[");
        for (j, w) in d.report.witness_order.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(w, &mut out);
            out.push('"');
        }
        out.push_str("],");
        push_str_field(&mut out, "notes", &d.report.notes);
        if let Some(p) = &d.report.provenance {
            out.push_str(",\"provenance\":{");
            push_str_field(&mut out, "channel", &p.channel);
            let num = |key: &str, v: u64, out: &mut String| {
                out.push_str(",\"");
                out.push_str(key);
                out.push_str("\":");
                out.push_str(&v.to_string());
            };
            num("pset_size", p.pset_size as u64, &mut out);
            num("paths_enumerated", p.paths_enumerated, &mut out);
            num("branches_pruned", p.branches_pruned, &mut out);
            num("combos_tried", p.combos_tried as u64, &mut out);
            num("groups_checked", p.groups_checked, &mut out);
            out.push(',');
            push_str_field(&mut out, "solver_verdict", p.solver_verdict);
            num("solver_steps", p.solver_steps, &mut out);
            num("solver_decisions", p.solver_decisions, &mut out);
            num("solver_conflicts", p.solver_conflicts, &mut out);
            if p.degradation_rung > 0 {
                num("degradation_rung", u64::from(p.degradation_rung), &mut out);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push(']');
    if !incidents.is_empty() {
        out.push_str(",\"incidents\":[");
        for (i, inc) in incidents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_str_field(&mut out, "kind", inc.kind.label());
            out.push(',');
            push_str_field(&mut out, "name", &inc.name);
            out.push(',');
            push_str_field(&mut out, "message", &inc.message);
            out.push_str(",\"rung\":");
            out.push_str(&inc.rung.to_string());
            if !inc.flight.is_empty() {
                out.push_str(",\"flight\":[");
                for (j, line) in inc.flight.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(line, &mut out);
                    out.push('"');
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push(']');
    }
    if let Some(stats) = stats {
        out.push_str(",\"stats\":");
        out.push_str(&render_stats_json(stats));
    }
    out.push('}');
    out
}

/// Renders a [`Stats`] snapshot as one JSON object
/// (`{"counters":{…},"stage_ms":{…},"hist":{…}}`) — the same shape the
/// `"stats"` key of [`render_json`] carries; the `batch` subcommand embeds
/// it in its merged report.
pub fn render_stats_json(stats: &Stats) -> String {
    let mut out = String::new();
    out.push_str("{\"counters\":{");
    for (i, (c, v)) in stats.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(c.name());
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push_str("},\"stage_ms\":{");
    for (i, (s, d)) in stats.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(s.name());
        out.push_str("\":");
        out.push_str(&format!("{:.3}", d.as_secs_f64() * 1000.0));
    }
    out.push_str("},\"hist\":{");
    for (i, (m, h)) in stats.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(m.name());
        out.push_str("\":{\"count\":");
        out.push_str(&h.count.to_string());
        out.push_str(",\"max\":");
        out.push_str(&h.max.to_string());
        for p in [50u32, 90, 99] {
            out.push_str(&format!(",\"p{p}\":{}", h.percentile(p)));
        }
        out.push('}');
    }
    out.push_str("}}");
    out
}

/// Renders diagnostics as the human-readable `--explain` text: each
/// finding's normal display followed by its provenance (how the detector
/// arrived at it), when available.
pub fn render_explain(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&format!("{} ", d.id));
        out.push_str(&d.report.to_string());
        match &d.report.provenance {
            Some(p) => out.push_str(&p.render()),
            None => out.push_str(&format!(
                "  why: reported by the `{}` checker (flow analysis; no solver query)\n",
                d.checker
            )),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::OpRef;
    use golite::Span;
    use golite_ir::{BlockId, FuncId, Loc};

    fn mk_report() -> BugReport {
        BugReport {
            kind: BugKind::BmocChannel,
            primitive: Some(Loc {
                func: FuncId(0),
                block: BlockId(0),
                idx: 0,
            }),
            primitive_span: Span::new(0, 5, 3, 5),
            primitive_name: "outDone".into(),
            ops: vec![OpRef {
                loc: Loc {
                    func: FuncId(1),
                    block: BlockId(0),
                    idx: 2,
                },
                span: Span::new(10, 12, 7, 5),
                what: "send on outDone".into(),
                func_name: "Exec$closure0".into(),
            }],
            witness_order: vec!["make".into(), "send".into()],
            notes: "scope root: Exec".into(),
            provenance: None,
        }
    }

    #[test]
    fn ids_are_stable_and_wording_insensitive() {
        let a = Diagnostic::new("bmoc", mk_report());
        let mut reworded = mk_report();
        reworded.notes = "completely different".into();
        reworded.witness_order.clear();
        let b = Diagnostic::new("bmoc", reworded);
        assert_eq!(a.id, b.id, "notes/witness must not move the ID");
        assert!(
            a.id.starts_with("GC-") && a.id.len() == 3 + 8,
            "got {}",
            a.id
        );
    }

    #[test]
    fn ids_distinguish_kinds_and_locations() {
        let a = Diagnostic::new("bmoc", mk_report());
        let mut other_kind = mk_report();
        other_kind.kind = BugKind::DoubleLock;
        let mut other_loc = mk_report();
        other_loc.ops[0].loc = Loc {
            func: FuncId(2),
            block: BlockId(0),
            idx: 0,
        };
        assert_ne!(a.id, Diagnostic::new("double-lock", other_kind).id);
        assert_ne!(a.id, Diagnostic::new("bmoc", other_loc).id);
    }

    #[test]
    fn severity_mapping() {
        assert_eq!(Severity::of(BugKind::BmocChannel), Severity::Error);
        assert_eq!(Severity::of(BugKind::SendOnClosedChannel), Severity::Error);
        assert_eq!(Severity::of(BugKind::StructFieldRace), Severity::Warning);
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut r = mk_report();
        r.notes = "quote \" backslash \\ newline \n".into();
        let d = Diagnostic::new("bmoc", r);
        let json = render_json(&[d], None);
        assert!(json.starts_with("{\"version\":1,\"diagnostics\":["));
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"checker\":\"bmoc\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(!json.contains("\"stats\""));
    }

    #[test]
    fn json_carries_provenance_only_when_present() {
        let plain = render_json(&[Diagnostic::new("bmoc", mk_report())], None);
        assert!(!plain.contains("provenance"));

        let mut r = mk_report();
        r.provenance = Some(crate::report::Provenance {
            channel: "outDone".into(),
            pset_size: 1,
            paths_enumerated: 4,
            branches_pruned: 0,
            combos_tried: 2,
            groups_checked: 3,
            solver_verdict: "blocking",
            solver_steps: 55,
            solver_decisions: 6,
            solver_conflicts: 1,
            degradation_rung: 0,
        });
        let with = render_json(&[Diagnostic::new("bmoc", r)], None);
        assert!(with.contains("\"provenance\":{\"channel\":\"outDone\""));
        assert!(with.contains("\"pset_size\":1"));
        assert!(with.contains("\"solver_verdict\":\"blocking\""));
        assert!(with.contains("\"solver_steps\":55"));
        assert!(
            !with.contains("degradation_rung"),
            "rung 0 must not change the schema"
        );
        crate::trace::validate_json(&with).expect("well-formed");
    }

    #[test]
    fn json_carries_incidents_and_rung_only_when_present() {
        let clean = render_json_with(&[], None, &[]);
        assert!(!clean.contains("incidents"));

        let mut r = mk_report();
        r.provenance = Some(crate::report::Provenance {
            channel: "outDone".into(),
            solver_verdict: "blocking",
            degradation_rung: 2,
            ..Default::default()
        });
        let incident = crate::resilience::Incident {
            kind: crate::resilience::IncidentKind::Checker,
            name: "panic-test".into(),
            message: "boom \"quoted\"".into(),
            rung: 0,
            flight: Vec::new(),
        };
        let json = render_json_with(
            &[Diagnostic::new("bmoc", r)],
            None,
            std::slice::from_ref(&incident),
        );
        assert!(json.contains("\"degradation_rung\":2"));
        assert!(json.contains(
            "\"incidents\":[{\"kind\":\"checker\",\"name\":\"panic-test\",\
             \"message\":\"boom \\\"quoted\\\"\",\"rung\":0}]"
        ));
        crate::trace::validate_json(&json).expect("well-formed");
    }

    #[test]
    fn json_incidents_carry_flight_dump_only_when_present() {
        let incident = crate::resilience::Incident {
            kind: crate::resilience::IncidentKind::Quarantined,
            name: "job-1".into(),
            message: "gave up".into(),
            rung: 0,
            flight: vec!["attempt 1: failed: \"boom\"".into()],
        };
        let json = render_json_with(&[], None, std::slice::from_ref(&incident));
        assert!(json.contains("\"rung\":0,\"flight\":[\"attempt 1: failed: \\\"boom\\\"\"]"));
        crate::trace::validate_json(&json).expect("well-formed");
    }

    #[test]
    fn explain_renders_provenance_or_fallback() {
        let mut r = mk_report();
        r.provenance = Some(crate::report::Provenance {
            channel: "outDone".into(),
            pset_size: 1,
            solver_verdict: "blocking",
            ..Default::default()
        });
        let text = render_explain(&[
            Diagnostic::new("bmoc", r),
            Diagnostic::new("double-lock", {
                let mut d = mk_report();
                d.kind = BugKind::DoubleLock;
                d
            }),
        ]);
        assert!(text.contains("why: channel `outDone`"));
        assert!(text.contains("why: reported by the `double-lock` checker"));
    }

    #[test]
    fn json_includes_stats_when_asked() {
        let t = crate::telemetry::Telemetry::new();
        t.add(crate::telemetry::Counter::SolverQueries, 3);
        let json = render_json(&[], Some(&t.snapshot()));
        assert!(json.contains("\"stats\""));
        assert!(json.contains("\"solver_queries\":3"));
        assert!(json.contains("\"stage_ms\""));
        assert!(json.contains("\"hist\""));
        assert!(json.contains("\"solver_query_ns\":{\"count\":0"));
        crate::trace::validate_json(&json).expect("well-formed");
    }
}
