//! # gcatch — the BMOC detector of the GCatch/GFix reproduction
//!
//! GCatch (ASPLOS '21) statically detects **blocking misuse-of-channel
//! (BMOC)** bugs in Go software. This crate reimplements it over the GoLite
//! toolchain:
//!
//! * [`primitives`] — discovers channels/mutexes by creation site and
//!   resolves every synchronization operation through points-to analysis
//!   (Algorithm 1, lines 2–5);
//! * [`disentangle`] — computes each channel's analysis scope (call-graph
//!   LCA) and its `Pset` of circularly dependent primitives (§3.2);
//! * [`paths`] — enumerates inter-procedural execution paths per goroutine
//!   with bounded loop unrolling and infeasible-branch pruning (§3.3);
//! * [`constraints`] — encodes `ΦR ∧ ΦB` over order variables, `P(s,r)`
//!   match booleans, and channel-buffer counters, discharging them with the
//!   [`minismt`] DPLL(T) solver (§3.4, Z3 in the original);
//! * [`detector`] — the per-channel driver with suspicious-group
//!   enumeration, plus the whole-program ablation mode (§5.2);
//! * [`traditional`] — the five classic checkers: double lock, missing
//!   unlock, conflicting lock order, struct-field lockset races, and
//!   `testing.Fatal` on child goroutines (§3.5).
//!
//! # Examples
//!
//! Detect the Figure 1 Docker bug:
//!
//! ```
//! let module = golite_ir::lower_source(r#"
//! func Exec(ctx context.Context) error {
//!     outDone := make(chan error)
//!     go func() {
//!         outDone <- nil
//!     }()
//!     select {
//!     case err := <-outDone:
//!         return err
//!     case <-ctx.Done():
//!         return ctx.Err()
//!     }
//! }
//!
//! func main() {
//!     ctx, cancel := context.WithCancel(context.Background())
//!     defer cancel()
//!     Exec(ctx)
//! }
//! "#).unwrap();
//! let gcatch = gcatch::GCatch::new(&module);
//! let bugs = gcatch.detect_all(&gcatch::DetectorConfig::default());
//! assert!(bugs.iter().any(|b| b.primitive_name == "outDone"));
//! ```

#![warn(missing_docs)]

pub mod alias_ext;
pub mod constraints;
pub mod detector;
pub mod disentangle;
pub mod paths;
pub mod primitives;
pub mod report;
pub mod traditional;

pub use detector::{Detector, DetectorConfig};
pub use report::{BugKind, BugReport, OpRef};

/// The complete GCatch system: BMOC detector plus the five traditional
/// checkers behind one entry point.
pub struct GCatch<'m> {
    module: &'m golite_ir::Module,
    detector: Detector<'m>,
}

impl<'m> GCatch<'m> {
    /// Builds the whole-module analyses once.
    pub fn new(module: &'m golite_ir::Module) -> GCatch<'m> {
        GCatch { module, detector: Detector::new(module) }
    }

    /// Runs the BMOC detector only.
    pub fn detect_bmoc(&self, config: &DetectorConfig) -> Vec<BugReport> {
        self.detector.detect_bmoc(config)
    }

    /// Runs the five traditional checkers only.
    pub fn detect_traditional(&self) -> Vec<BugReport> {
        traditional::detect_traditional(self.module, &self.detector.analysis, &self.detector.prims)
    }

    /// Runs every detector (Figure 2's full GCatch box).
    pub fn detect_all(&self, config: &DetectorConfig) -> Vec<BugReport> {
        let mut out = self.detect_bmoc(config);
        out.extend(self.detect_traditional());
        out
    }

    /// The underlying per-module detector (exposes analyses for GFix).
    pub fn detector(&self) -> &Detector<'m> {
        &self.detector
    }
}
