//! # gcatch — the BMOC detector of the GCatch/GFix reproduction
//!
//! GCatch (ASPLOS '21) statically detects **blocking misuse-of-channel
//! (BMOC)** bugs in Go software. This crate reimplements it over the GoLite
//! toolchain:
//!
//! * [`primitives`] — discovers channels/mutexes by creation site and
//!   resolves every synchronization operation through points-to analysis
//!   (Algorithm 1, lines 2–5);
//! * [`disentangle`] — computes each channel's analysis scope (call-graph
//!   LCA) and its `Pset` of circularly dependent primitives (§3.2);
//! * [`paths`] — enumerates inter-procedural execution paths per goroutine
//!   with bounded loop unrolling and infeasible-branch pruning (§3.3);
//! * [`constraints`] — encodes `ΦR ∧ ΦB` over order variables, `P(s,r)`
//!   match booleans, and channel-buffer counters, discharging them with the
//!   [`minismt`] DPLL(T) solver (§3.4, Z3 in the original);
//! * [`session`] — the [`AnalysisSession`]: every whole-module analysis
//!   built once and shared immutably by all checkers;
//! * [`detector`] — the per-channel BMOC driver with suspicious-group
//!   enumeration, sharded across worker threads, plus the whole-program
//!   ablation mode (§5.2);
//! * [`traditional`] — the five classic checkers: double lock, missing
//!   unlock, conflicting lock order, struct-field lockset races, and
//!   `testing.Fatal` on child goroutines (§3.5);
//! * [`checkers`] — the [`Checker`] trait and [`Registry`] unifying every
//!   detector behind stable names with `--only`/`--skip` selection;
//! * [`diagnostics`] — structured [`Diagnostic`]s with stable IDs,
//!   severities, and dependency-free JSON rendering;
//! * [`resilience`] — cooperative [`Budget`]s (wall-clock deadline +
//!   solver-step pool), panic containment, the degradation ladder, and
//!   structured [`Incident`] reporting for contained failures;
//! * [`telemetry`] — counters, per-stage timings, and percentile
//!   histograms recorded throughout the pipeline;
//! * [`trace`] — hierarchical span tracing (Chrome trace-event export,
//!   per-worker lanes) and bug provenance plumbing;
//! * [`metrics`] — the named `gcatch_*` metrics registry over telemetry
//!   snapshots with Prometheus text-exposition rendering (`--metrics-out`);
//! * [`events`] — the correlated structured event bus (`--events-out`
//!   JSONL) and the per-job [`FlightRecorder`] attached to quarantine
//!   incidents;
//! * [`progress`] — live batch progress snapshots (`batch --progress`);
//! * [`sweep`] — the multi-process sweep coordinator: lease-based on-disk
//!   work queue, heartbeat supervision, dead-worker re-lease, and the
//!   byte-deterministic journal merge (`gcatch sweep`);
//! * [`serve`] — the crash-only analysis daemon (`gcatch serve`):
//!   JSON-lines request protocol, bounded admission with deterministic
//!   load shedding, per-request deadlines, and a persistent warm response
//!   cache that self-heals after `kill -9`;
//! * [`signals`] — SIGINT/SIGTERM as a pollable graceful-drain flag
//!   shared by the daemon and the sweep coordinator;
//! * [`worker`] — the sweep worker loop (`gcatch worker`): claim, execute,
//!   journal, mark done, release.
//!
//! # Examples
//!
//! Detect the Figure 1 Docker bug:
//!
//! ```
//! let module = golite_ir::lower_source(r#"
//! func Exec(ctx context.Context) error {
//!     outDone := make(chan error)
//!     go func() {
//!         outDone <- nil
//!     }()
//!     select {
//!     case err := <-outDone:
//!         return err
//!     case <-ctx.Done():
//!         return ctx.Err()
//!     }
//! }
//!
//! func main() {
//!     ctx, cancel := context.WithCancel(context.Background())
//!     defer cancel()
//!     Exec(ctx)
//! }
//! "#).unwrap();
//! let gcatch = gcatch::GCatch::new(&module);
//! let bugs = gcatch.detect_all(&gcatch::DetectorConfig::default());
//! assert!(bugs.iter().any(|b| b.primitive_name == "outDone"));
//! ```

#![warn(missing_docs)]

pub mod alias_ext;
pub mod batch;
pub mod checkers;
pub mod constraints;
pub mod detector;
pub mod diagnostics;
pub mod disentangle;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod paths;
pub mod primitives;
pub mod progress;
pub mod report;
pub mod resilience;
pub mod serve;
pub mod session;
pub mod signals;
pub mod sweep;
pub mod telemetry;
pub mod trace;
pub mod traditional;
pub mod warm;
pub mod worker;

pub use batch::{
    BackoffPolicy, BatchConfig, BatchEngine, BatchJob, BatchOutcome, HedgePolicy, JobCtx,
    JobRecord, JobStatus, Journal, JournalCodec,
};
pub use checkers::{Checker, Registry, RunOutput, Selection};
pub use constraints::{EncodingCache, SolverStrategy};
pub use detector::{Detector, DetectorConfig};
pub use diagnostics::{
    render_explain, render_json, render_json_with, render_stats_json, Diagnostic, Severity,
};
pub use events::{
    derive_run_id, obs_zero_time, Event, EventBus, EventKind, FlightRecorder, ObsScope,
};
pub use faults::FaultPlan;
pub use golite_ir::{AliasMode, AliasStats};
pub use metrics::{render_prometheus, validate_exposition, ExpositionSummary};
pub use progress::ProgressSnapshot;
pub use report::{BugKind, BugReport, OpRef, Provenance};
pub use resilience::{Budget, CancelToken, Incident, IncidentKind};
pub use serve::{
    serve_socket, serve_stdio, Request, ResponseCache, ServeConfig, ServeSummary, WorkKind,
};
pub use session::AnalysisSession;
pub use sweep::{
    merge_journals, read_manifest, write_manifest, Coordinator, DuplicateDecision, MergeOutcome,
    SweepConfig, SweepLayout, SweepOutcome, WORKER_KILL_EXIT,
};
pub use telemetry::{Counter, Metric, Stage, Stats, Telemetry};
pub use trace::{HistSnapshot, Histogram, TraceLevel, TraceSnapshot, Tracer};
pub use warm::{warm_check, WarmOutcome, WarmSessions};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};

/// The complete GCatch system: one [`AnalysisSession`] plus the checker
/// [`Registry`] behind one entry point.
pub struct GCatch<'m> {
    session: AnalysisSession<'m>,
    registry: Registry,
}

impl<'m> GCatch<'m> {
    /// Builds the whole-module analyses once.
    pub fn new(module: &'m golite_ir::Module) -> GCatch<'m> {
        Self::with_trace(module, TraceLevel::Off)
    }

    /// [`GCatch::new`] with span tracing at `level`; retrieve the
    /// recording with [`GCatch::trace_snapshot`] after running checkers.
    pub fn with_trace(module: &'m golite_ir::Module, level: TraceLevel) -> GCatch<'m> {
        Self::with_options(module, level, golite_ir::AliasMode::default())
    }

    /// [`GCatch::with_trace`] with an explicit alias-analysis scheduling
    /// mode (`--alias-mode`): `Demand` (the default) solves points-to
    /// lazily per queried reference component, `Eager` solves the whole
    /// module up front. Reports are byte-identical either way.
    pub fn with_options(
        module: &'m golite_ir::Module,
        level: TraceLevel,
        alias_mode: golite_ir::AliasMode,
    ) -> GCatch<'m> {
        GCatch {
            session: AnalysisSession::with_options(module, level, alias_mode),
            registry: Registry::standard(),
        }
    }

    /// Runs the BMOC detector only.
    pub fn detect_bmoc(&self, config: &DetectorConfig) -> Vec<BugReport> {
        self.session.detect_bmoc(config)
    }

    /// Runs the five traditional checkers only.
    pub fn detect_traditional(&self) -> Vec<BugReport> {
        self.session
            .telemetry()
            .time(telemetry::Stage::Traditional, || {
                traditional::detect_traditional(
                    self.session.module(),
                    &self.session.analysis,
                    &self.session.prims,
                )
            })
    }

    /// Runs every default-enabled checker (Figure 2's full GCatch box).
    pub fn detect_all(&self, config: &DetectorConfig) -> Vec<BugReport> {
        checkers::flatten(self.run(config, &Selection::default()))
    }

    /// Runs the registered checkers under a selection, keeping the reports
    /// grouped by checker.
    pub fn run(&self, config: &DetectorConfig, selection: &Selection) -> Vec<RunOutput> {
        self.registry.run(&self.session, config, selection)
    }

    /// Runs the selected checkers and wraps every report as a
    /// [`Diagnostic`] with a stable ID and severity.
    pub fn diagnostics(&self, config: &DetectorConfig, selection: &Selection) -> Vec<Diagnostic> {
        Diagnostic::from_run(self.run(config, selection))
    }

    /// The underlying analysis session (exposes analyses for GFix).
    pub fn detector(&self) -> &AnalysisSession<'m> {
        &self.session
    }

    /// The analysis session by its proper name.
    pub fn session(&self) -> &AnalysisSession<'m> {
        &self.session
    }

    /// The checker registry backing [`GCatch::run`].
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of every counter and stage timing recorded so far.
    pub fn stats(&self) -> Stats {
        self.session.stats()
    }

    /// Incidents (contained panics, exhausted budgets) recorded so far,
    /// in deterministic order. Empty on a fully clean run.
    pub fn incidents(&self) -> Vec<Incident> {
        self.session.incidents()
    }

    /// Snapshot of every span and point event traced so far (empty unless
    /// built with [`GCatch::with_trace`]).
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.session.trace_snapshot()
    }
}
