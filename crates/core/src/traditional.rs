//! The five traditional checkers (§3.5 of the paper).
//!
//! These reuse ideas that work on classic languages:
//!
//! 1. **missing unlock** — intra-procedural, path-sensitive lock tracking:
//!    a path from a `Lock` to a `return` without `Unlock`/deferred unlock;
//! 2. **double lock** — inter-procedural, path-sensitive: acquiring a mutex
//!    already held (callees holding lock ops are inlined);
//! 3. **conflicting lock order** — a cycle in the held-before graph;
//! 4. **struct-field lockset races** — a field protected by a mutex on most
//!    accesses, accessed somewhere without it;
//! 5. **`testing.Fatal` from a child goroutine** — `Fatal`/`Fatalf`/
//!    `FailNow` must only run on the main test goroutine.

use crate::alias_ext::mutex_sites_of;
use crate::primitives::{PrimId, Primitives};
use crate::report::{BugKind, BugReport, OpRef};
use golite_ir::alias::{AbstractObject, Analysis, CallKind};
use golite_ir::ir::*;
use std::collections::{HashMap, HashSet};

/// The shared product of the path-sensitive lock exploration, consumed by
/// three checkers (double lock, missing unlock, conflicting lock order).
/// Computing it once and letting each checker pick its slice keeps the
/// checkers independently selectable without tripling the exploration cost;
/// the session caches one instance per module.
#[derive(Debug, Default, Clone)]
pub(crate) struct LockSummary {
    pub(crate) double_locks: Vec<BugReport>,
    pub(crate) missing_unlocks: Vec<BugReport>,
    pub(crate) order_conflicts: Vec<BugReport>,
}

/// Runs the lock exploration over every function and formats its findings.
pub(crate) fn lock_summary(
    module: &Module,
    analysis: &Analysis,
    prims: &Primitives,
) -> LockSummary {
    let mut explorer = LockExplorer::new(module, analysis, prims);
    for f in &module.funcs {
        explorer.explore_function(f);
    }
    explorer.summary()
}

/// Checker 4 entry point: struct-field lockset races, deduplicated.
pub(crate) fn lockset_race_reports(
    module: &Module,
    analysis: &Analysis,
    prims: &Primitives,
) -> Vec<BugReport> {
    dedup(lockset_race(module, analysis, prims))
}

/// Checker 5 entry point: `t.Fatal` in a child goroutine, deduplicated.
pub(crate) fn fatal_in_child_reports(module: &Module, analysis: &Analysis) -> Vec<BugReport> {
    dedup(fatal_in_child(module, analysis))
}

/// Runs all five traditional checkers.
///
/// Equivalent to concatenating the individual checkers in their registry
/// order; kept as a single entry point for pre-registry callers.
pub fn detect_traditional(
    module: &Module,
    analysis: &Analysis,
    prims: &Primitives,
) -> Vec<BugReport> {
    let summary = lock_summary(module, analysis, prims);
    let mut out = Vec::new();
    out.extend(summary.double_locks);
    out.extend(summary.missing_unlocks);
    out.extend(summary.order_conflicts);
    out.extend(lockset_race(module, analysis, prims));
    out.extend(fatal_in_child(module, analysis));
    dedup(out)
}

fn dedup(reports: Vec<BugReport>) -> Vec<BugReport> {
    let mut seen = HashSet::new();
    reports
        .into_iter()
        .filter(|r| seen.insert(r.dedup_key()))
        .collect()
}

fn op_ref(module: &Module, loc: Loc, span: golite::Span, what: impl Into<String>) -> OpRef {
    OpRef {
        loc,
        span,
        what: what.into(),
        func_name: module.func(loc.func).name.to_string(),
    }
}

// ----------------------------------------------------------- lock explorer

/// Shared path-sensitive exploration for checkers 1–3: walks every function
/// with an empty lockset, tracking acquisitions (inlining single-target
/// callees that contain lock operations), and records double locks, missing
/// unlocks, and the held-before graph.
struct LockExplorer<'a> {
    module: &'a Module,
    analysis: &'a Analysis<'a>,
    prims: &'a Primitives,
    /// Functions containing (transitively) a lock/unlock operation.
    touchers: HashSet<FuncId>,
    double_locks: Vec<(PrimId, Loc, golite::Span)>,
    missing_unlocks: Vec<(PrimId, Loc, golite::Span)>,
    /// held-before edges: (held, acquired) → witness locs.
    order_edges: HashMap<(PrimId, PrimId), (Loc, golite::Span)>,
    paths_budget: usize,
}

/// Exploration state for one path.
#[derive(Clone, Default)]
struct LockState {
    /// Mutexes currently held: prim → acquisition site.
    held: HashMap<PrimId, (Loc, golite::Span)>,
    /// Mutexes with a pending deferred unlock in the current frame stack.
    deferred: HashSet<PrimId>,
    /// Mutexes acquired within the current root function's exploration.
    acquired_here: HashSet<PrimId>,
}

impl<'a> LockExplorer<'a> {
    fn new(module: &'a Module, analysis: &'a Analysis, prims: &'a Primitives) -> Self {
        let mut direct = HashSet::new();
        for f in module.funcs.iter() {
            for block in &f.blocks {
                if block
                    .instrs
                    .iter()
                    .any(|i| matches!(i, Instr::Lock { .. } | Instr::Unlock { .. }))
                {
                    direct.insert(f.id);
                }
            }
        }
        let mut touchers = HashSet::new();
        for f in &module.funcs {
            if analysis
                .reachable_from(f.id)
                .iter()
                .any(|g| direct.contains(g))
            {
                touchers.insert(f.id);
            }
        }
        LockExplorer {
            module,
            analysis,
            prims,
            touchers,
            double_locks: Vec::new(),
            missing_unlocks: Vec::new(),
            order_edges: HashMap::new(),
            paths_budget: 0,
        }
    }

    fn explore_function(&mut self, f: &Function) {
        if !self.touchers.contains(&f.id) {
            return;
        }
        self.paths_budget = 256;
        let mut visits = HashMap::new();
        self.walk(f, BlockId(0), 0, &mut visits, LockState::default(), 0);
    }

    fn mutex_prims(&self, func: FuncId, op: &Operand) -> Vec<PrimId> {
        mutex_sites_of(self.analysis, func, op)
            .into_iter()
            .filter_map(|site| self.prims.by_site(site).map(|p| p.id))
            .collect()
    }

    fn walk(
        &mut self,
        f: &Function,
        block: BlockId,
        start: usize,
        visits: &mut HashMap<(FuncId, BlockId), u32>,
        mut state: LockState,
        depth: usize,
    ) {
        if self.paths_budget == 0 {
            return;
        }
        let blk = f.block(block);
        for idx in start..blk.instrs.len() {
            let loc = Loc {
                func: f.id,
                block,
                idx: idx as u32,
            };
            let span = blk.spans[idx];
            match &blk.instrs[idx] {
                Instr::Lock { mutex, .. } => {
                    for p in self.mutex_prims(f.id, mutex) {
                        if state.held.contains_key(&p) {
                            self.double_locks.push((p, loc, span));
                        } else {
                            // Held-before edges to every currently held mutex.
                            for &h in state.held.keys() {
                                self.order_edges.entry((h, p)).or_insert((loc, span));
                            }
                            state.held.insert(p, (loc, span));
                            state.acquired_here.insert(p);
                        }
                    }
                }
                Instr::Unlock { mutex, .. } => {
                    for p in self.mutex_prims(f.id, mutex) {
                        state.held.remove(&p);
                    }
                }
                Instr::DeferCall { func: FuncRef::Static(fid), args } => {
                    let name = &self.module.func(*fid).name;
                    if name == "__unlock" || name == "__runlock" {
                        for p in self.mutex_prims(f.id, &args[0]) {
                            state.deferred.insert(p);
                        }
                    }
                }
                Instr::Call { func: FuncRef::Static(target), .. }
                    // Inline callees that touch locks (depth-bounded).
                    if depth < 3 && self.touchers.contains(target) && *target != f.id => {
                        let callee = self.module.func(*target).clone();
                        let mut visits2 = HashMap::new();
                        // Approximation: walk the callee for its lock effects
                        // against the current lockset, then continue assuming
                        // it balanced its own locks (its leaks are reported
                        // when it is explored as a root).
                        self.walk(&callee, BlockId(0), 0, &mut visits2, state.clone(), depth + 1);
                    }
                _ => {}
            }
        }

        match &blk.term {
            Terminator::Return(_) | Terminator::Unreachable => {
                self.paths_budget = self.paths_budget.saturating_sub(1);
                if depth == 0 {
                    for (p, (loc, span)) in &state.held {
                        if state.acquired_here.contains(p) && !state.deferred.contains(p) {
                            self.missing_unlocks.push((*p, *loc, *span));
                        }
                    }
                }
            }
            term => {
                for succ in term.successors() {
                    let key = (f.id, succ);
                    let count = visits.entry(key).or_insert(0);
                    if *count >= 1 {
                        continue; // one loop iteration is enough for locksets
                    }
                    *count += 1;
                    self.walk(f, succ, 0, visits, state.clone(), depth);
                    if let Some(c) = visits.get_mut(&key) {
                        *c -= 1;
                    }
                }
            }
        }
    }

    fn summary(self) -> LockSummary {
        let mut double = Vec::new();
        for (p, loc, span) in &self.double_locks {
            let prim = &self.prims.all[p.0];
            double.push(BugReport {
                kind: BugKind::DoubleLock,
                primitive: Some(prim.site),
                primitive_span: prim.span,
                primitive_name: prim.name.clone(),
                ops: vec![op_ref(
                    self.module,
                    *loc,
                    *span,
                    format!("second lock of {}", prim.name),
                )],
                witness_order: vec![],
                notes: "mutex already held on this path".into(),
                provenance: None,
            });
        }
        let mut missing = Vec::new();
        for (p, loc, span) in &self.missing_unlocks {
            let prim = &self.prims.all[p.0];
            missing.push(BugReport {
                kind: BugKind::MissingUnlock,
                primitive: Some(prim.site),
                primitive_span: prim.span,
                primitive_name: prim.name.clone(),
                ops: vec![op_ref(
                    self.module,
                    *loc,
                    *span,
                    format!("lock of {} with no unlock on some path", prim.name),
                )],
                witness_order: vec![],
                notes: "a return is reachable with the mutex held".into(),
                provenance: None,
            });
        }
        // Conflicting order: cycle (a held before b) and (b held before a).
        // Walk edges sorted by primitive pair so report order never depends
        // on HashMap iteration.
        let mut conflicts = Vec::new();
        let mut reported = HashSet::new();
        let mut edges: Vec<_> = self.order_edges.iter().collect();
        edges.sort_by_key(|((a, b), _)| (a.0, b.0));
        for (&(a, b), &(loc_ab, span_ab)) in edges {
            if a < b {
                if let Some(&(loc_ba, span_ba)) = self.order_edges.get(&(b, a)) {
                    if !reported.insert((a, b)) {
                        continue;
                    }
                    let pa = &self.prims.all[a.0];
                    let pb = &self.prims.all[b.0];
                    conflicts.push(BugReport {
                        kind: BugKind::ConflictingLockOrder,
                        primitive: Some(pa.site),
                        primitive_span: pa.span,
                        primitive_name: format!("{} / {}", pa.name, pb.name),
                        ops: vec![
                            op_ref(
                                self.module,
                                loc_ab,
                                span_ab,
                                format!("{} acquired while {} held", pb.name, pa.name),
                            ),
                            op_ref(
                                self.module,
                                loc_ba,
                                span_ba,
                                format!("{} acquired while {} held", pa.name, pb.name),
                            ),
                        ],
                        witness_order: vec![],
                        notes: "lock acquisition order differs between paths".into(),
                        provenance: None,
                    });
                }
            }
        }
        LockSummary {
            double_locks: dedup(double),
            missing_unlocks: dedup(missing),
            order_conflicts: dedup(conflicts),
        }
    }
}

// ---------------------------------------------------------- lockset races

/// Checker 4: struct-field accesses mostly protected by a mutex, with at
/// least one unprotected access. The lockset is collected intra-procedurally
/// and path-insensitively (meet = union of locks held on any path reaching
/// the block), which reproduces the paper's calling-context false positives:
/// an access protected by a caller-held lock looks unprotected here.
fn lockset_race(module: &Module, analysis: &Analysis, prims: &Primitives) -> Vec<BugReport> {
    // Access record: (struct site, field) → [(loc, span, lockset, is_write)].
    // `Symbol` orders by text, so the deterministic sort below matches the
    // old `(Loc, String)` key exactly.
    type Key = (Loc, golite_ir::Symbol);
    type Access = (Loc, golite::Span, HashSet<PrimId>, bool);
    let mut accesses: HashMap<Key, Vec<Access>> = HashMap::new();

    for f in &module.funcs {
        // Forward may-analysis of held locks per block (intersection over
        // predecessors would be sound; we use intersection to avoid claiming
        // protection that only holds on some path).
        let n = f.blocks.len();
        let mut entry_sets: Vec<Option<HashSet<PrimId>>> = vec![None; n];
        entry_sets[0] = Some(HashSet::new());
        let preds = golite_ir::dom::predecessors(f);
        // Iterate to fixpoint.
        for _ in 0..n + 2 {
            for b in 0..n {
                let Some(start) = entry_sets[b].clone() else {
                    continue;
                };
                let exit = apply_block_locks(module, analysis, prims, f, BlockId(b as u32), &start);
                for succ in f.blocks[b].term.successors() {
                    let s = succ.0 as usize;
                    let merged = match &entry_sets[s] {
                        None => exit.clone(),
                        Some(cur) => cur.intersection(&exit).copied().collect(),
                    };
                    entry_sets[s] = Some(merged);
                }
            }
        }
        let _ = preds;

        // Record accesses with the lockset at their program point.
        for (bid, block) in f.iter_blocks() {
            let Some(mut held) = entry_sets[bid.0 as usize].clone() else {
                continue;
            };
            for (idx, instr) in block.instrs.iter().enumerate() {
                let loc = Loc {
                    func: f.id,
                    block: bid,
                    idx: idx as u32,
                };
                let span = block.spans[idx];
                match instr {
                    Instr::Lock { mutex, .. } => {
                        for site in mutex_sites_of(analysis, f.id, mutex) {
                            if let Some(p) = prims.by_site(site) {
                                held.insert(p.id);
                            }
                        }
                    }
                    Instr::Unlock { mutex, .. } => {
                        for site in mutex_sites_of(analysis, f.id, mutex) {
                            if let Some(p) = prims.by_site(site) {
                                held.remove(&p.id);
                            }
                        }
                    }
                    Instr::FieldLoad { obj, field, .. } | Instr::FieldStore { obj, field, .. } => {
                        let is_write = matches!(instr, Instr::FieldStore { .. });
                        for o in analysis.operand_points_to(f.id, obj) {
                            if let AbstractObject::Struct(site) = o {
                                accesses.entry((site, *field)).or_default().push((
                                    loc,
                                    span,
                                    held.clone(),
                                    is_write,
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Deterministic report order: walk fields by (site, name), not in
    // HashMap order.
    let mut keyed: Vec<(Key, Vec<Access>)> = accesses.into_iter().collect();
    keyed.sort_by_key(|((site, field), _)| (site.func.0, site.block.0, site.idx, *field));

    let mut out = Vec::new();
    for ((_site, field), accs) in keyed {
        if accs.len() < 3 {
            continue; // too few accesses to infer a protection discipline
        }
        // Find a mutex protecting the majority of accesses; ties go to the
        // lowest PrimId so the chosen guard never depends on map order.
        let mut counts: HashMap<PrimId, usize> = HashMap::new();
        for (_, _, held, _) in &accs {
            for &p in held {
                *counts.entry(p).or_insert(0) += 1;
            }
        }
        let Some((&guard, &protected)) = counts
            .iter()
            .max_by_key(|(&p, &c)| (c, std::cmp::Reverse(p.0)))
        else {
            continue;
        };
        let unprotected: Vec<&Access> = accs
            .iter()
            .filter(|(_, _, held, _)| !held.contains(&guard))
            .collect();
        // "Protected for most accesses": strictly more protected than not,
        // and at least one unprotected write-or-read to report.
        if protected > unprotected.len() && !unprotected.is_empty() {
            let guard_prim = &prims.all[guard.0];
            for (loc, span, _, is_write) in unprotected {
                out.push(BugReport {
                    kind: BugKind::StructFieldRace,
                    primitive: Some(guard_prim.site),
                    primitive_span: guard_prim.span,
                    primitive_name: guard_prim.name.clone(),
                    ops: vec![op_ref(
                        module,
                        *loc,
                        *span,
                        format!(
                            "unprotected {} of field `{}` (usually guarded by {})",
                            if *is_write { "write" } else { "read" },
                            field,
                            guard_prim.name
                        ),
                    )],
                    witness_order: vec![],
                    notes: format!("{protected} of {} accesses hold the lock", accs.len()),
                    provenance: None,
                });
            }
        }
    }
    out
}

fn apply_block_locks(
    _module: &Module,
    analysis: &Analysis,
    prims: &Primitives,
    f: &Function,
    b: BlockId,
    start: &HashSet<PrimId>,
) -> HashSet<PrimId> {
    let mut held = start.clone();
    for instr in &f.block(b).instrs {
        match instr {
            Instr::Lock { mutex, .. } => {
                for site in mutex_sites_of(analysis, f.id, mutex) {
                    if let Some(p) = prims.by_site(site) {
                        held.insert(p.id);
                    }
                }
            }
            Instr::Unlock { mutex, .. } => {
                for site in mutex_sites_of(analysis, f.id, mutex) {
                    if let Some(p) = prims.by_site(site) {
                        held.remove(&p.id);
                    }
                }
            }
            _ => {}
        }
    }
    held
}

// ------------------------------------------------------- Fatal in children

/// Checker 5: `t.Fatal` (and friends) called on a goroutine other than the
/// one running the test function.
fn fatal_in_child(module: &Module, analysis: &Analysis) -> Vec<BugReport> {
    // Functions reachable from any `go` target.
    let mut child_funcs: HashSet<FuncId> = HashSet::new();
    for cs in analysis.call_sites() {
        if matches!(cs.kind, CallKind::Go) && !cs.ambiguous {
            for &t in &cs.targets {
                child_funcs.extend(analysis.reachable_from(t).iter().copied());
            }
        }
    }
    let mut out = Vec::new();
    for f in &module.funcs {
        if !child_funcs.contains(&f.id) {
            continue;
        }
        for (bid, block) in f.iter_blocks() {
            for (idx, instr) in block.instrs.iter().enumerate() {
                if matches!(instr, Instr::Fatal) {
                    let loc = Loc {
                        func: f.id,
                        block: bid,
                        idx: idx as u32,
                    };
                    out.push(BugReport {
                        kind: BugKind::FatalInChildGoroutine,
                        primitive: None,
                        primitive_span: block.spans[idx],
                        primitive_name: f.name.to_string(),
                        ops: vec![op_ref(
                            module,
                            loc,
                            block.spans[idx],
                            "t.Fatal called from a child goroutine",
                        )],
                        witness_order: vec![],
                        notes: "Fatal/FailNow only stop the goroutine that calls them; \
                                the test keeps running"
                            .into(),
                        provenance: None,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::collect;
    use golite_ir::{analyze, lower_source};

    fn detect(src: &str) -> Vec<BugReport> {
        let module = lower_source(src).expect("lowering");
        let analysis = analyze(&module);
        let prims = collect(&module, &analysis);
        detect_traditional(&module, &analysis, &prims)
    }

    fn kinds(reports: &[BugReport]) -> Vec<BugKind> {
        reports.iter().map(|r| r.kind).collect()
    }

    #[test]
    fn detects_double_lock() {
        let bugs =
            detect("func main() {\n var mu sync.Mutex\n mu.Lock()\n mu.Lock()\n mu.Unlock()\n}");
        assert!(kinds(&bugs).contains(&BugKind::DoubleLock), "got {bugs:?}");
    }

    #[test]
    fn detects_interprocedural_double_lock() {
        let bugs = detect(
            r#"
func helper(mu *sync.Mutex) {
    mu.Lock()
    mu.Unlock()
}

func main() {
    var mu sync.Mutex
    mu.Lock()
    helper(&mu)
    mu.Unlock()
}
"#,
        );
        assert!(kinds(&bugs).contains(&BugKind::DoubleLock), "got {bugs:?}");
    }

    #[test]
    fn balanced_locking_is_clean() {
        let bugs = detect(
            "func main() {\n var mu sync.Mutex\n mu.Lock()\n mu.Unlock()\n mu.Lock()\n mu.Unlock()\n}",
        );
        assert!(bugs.is_empty(), "got {bugs:?}");
    }

    #[test]
    fn detects_missing_unlock_on_error_path() {
        let bugs = detect(
            r#"
func get(fail bool) int {
    var mu sync.Mutex
    mu.Lock()
    if fail {
        return 0
    }
    mu.Unlock()
    return 1
}
"#,
        );
        assert!(
            kinds(&bugs).contains(&BugKind::MissingUnlock),
            "got {bugs:?}"
        );
    }

    #[test]
    fn deferred_unlock_is_clean() {
        let bugs = detect(
            r#"
func get(fail bool) int {
    var mu sync.Mutex
    mu.Lock()
    defer mu.Unlock()
    if fail {
        return 0
    }
    return 1
}
"#,
        );
        assert!(
            !kinds(&bugs).contains(&BugKind::MissingUnlock),
            "defer covers all paths; got {bugs:?}"
        );
    }

    #[test]
    fn detects_conflicting_lock_order() {
        let bugs = detect(
            r#"
func a(m1 *sync.Mutex, m2 *sync.Mutex) {
    m1.Lock()
    m2.Lock()
    m2.Unlock()
    m1.Unlock()
}

func b(m1 *sync.Mutex, m2 *sync.Mutex) {
    m2.Lock()
    m1.Lock()
    m1.Unlock()
    m2.Unlock()
}

func main() {
    var m1 sync.Mutex
    var m2 sync.Mutex
    go a(&m1, &m2)
    b(&m1, &m2)
}
"#,
        );
        assert!(
            kinds(&bugs).contains(&BugKind::ConflictingLockOrder),
            "got {bugs:?}"
        );
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let bugs = detect(
            r#"
func a(m1 *sync.Mutex, m2 *sync.Mutex) {
    m1.Lock()
    m2.Lock()
    m2.Unlock()
    m1.Unlock()
}

func main() {
    var m1 sync.Mutex
    var m2 sync.Mutex
    a(&m1, &m2)
    a(&m1, &m2)
}
"#,
        );
        assert!(
            !kinds(&bugs).contains(&BugKind::ConflictingLockOrder),
            "got {bugs:?}"
        );
    }

    #[test]
    fn detects_unprotected_field_access() {
        let bugs = detect(
            r#"
type Counter struct {
    mu sync.Mutex
    n int
}

func add(c *Counter) {
    c.mu.Lock()
    c.n = c.n + 1
    c.mu.Unlock()
}

func sneak(c *Counter) {
    c.n = 0
}

func main() {
    c := Counter{n: 0}
    add(&c)
    add(&c)
    go sneak(&c)
}
"#,
        );
        assert!(
            kinds(&bugs).contains(&BugKind::StructFieldRace),
            "got {bugs:?}"
        );
    }

    #[test]
    fn fully_protected_field_is_clean() {
        let bugs = detect(
            r#"
type Counter struct {
    mu sync.Mutex
    n int
}

func add(c *Counter) {
    c.mu.Lock()
    c.n = c.n + 1
    c.mu.Unlock()
}

func main() {
    c := Counter{n: 0}
    add(&c)
    add(&c)
    add(&c)
}
"#,
        );
        assert!(
            !kinds(&bugs).contains(&BugKind::StructFieldRace),
            "got {bugs:?}"
        );
    }

    #[test]
    fn detects_fatal_in_child_goroutine() {
        let bugs = detect(
            r#"
func TestX(t *testing.T) {
    go func() {
        t.Fatalf("inside child")
    }()
}
"#,
        );
        assert!(
            kinds(&bugs).contains(&BugKind::FatalInChildGoroutine),
            "got {bugs:?}"
        );
    }

    #[test]
    fn fatal_on_main_test_goroutine_is_clean() {
        let bugs = detect("func TestX(t *testing.T) {\n t.Fatalf(\"fine here\")\n}");
        assert!(
            !kinds(&bugs).contains(&BugKind::FatalInChildGoroutine),
            "got {bugs:?}"
        );
    }
}
