//! The per-module analysis session.
//!
//! An [`AnalysisSession`] owns every whole-module analysis the checkers
//! consume — the points-to / call-graph [`Analysis`], the discovered
//! [`Primitives`], and the lazily built disentangling artifacts (the
//! channel [`DependencyGraph`] and per-primitive [`Scope`]s). Each is
//! computed **once** and then shared immutably: the session is `Sync`, so
//! the parallel per-channel BMOC workers, the traditional checkers, and
//! GFix all borrow the same analyses instead of re-deriving them.
//!
//! The session also carries the [`Telemetry`] sink; every stage and every
//! solver query records into it, and [`AnalysisSession::stats`] snapshots
//! the totals for `--stats` output.
//!
//! The old entry point survives as an alias — `Detector` *is* an
//! `AnalysisSession` — so pre-registry callers (`Detector::new(&module)`,
//! `detector.analysis`, `detector.detect_bmoc(&config)`) compile
//! unchanged.

use crate::disentangle::{build_dependency_graph, compute_scope, DependencyGraph, Scope};
use crate::primitives::{collect, Primitives};
use crate::resilience::{Budget, Incident};
use crate::telemetry::{Stage, Stats, Telemetry};
use crate::trace::{TraceLevel, TraceSnapshot, Tracer};
use crate::traditional::LockSummary;
use golite_ir::alias::{AliasMode, Analysis};
use golite_ir::ir::Module;
use std::sync::{Mutex, OnceLock};

/// Shared per-module analyses plus telemetry, built once per checked module.
pub struct AnalysisSession<'m> {
    pub(crate) module: &'m Module,
    /// Shared points-to / call-graph results. In demand mode the engine
    /// solves lazily behind this shared handle, so every detector shard
    /// transparently reuses each component solve.
    pub analysis: Analysis<'m>,
    /// Discovered primitives and operations.
    pub prims: Primitives,
    /// Channel dependency graph (disentangling §3.2), built on first use.
    dg: OnceLock<DependencyGraph>,
    /// Per-primitive scopes, built on first use.
    scopes: OnceLock<Vec<Scope>>,
    /// Shared lock-exploration results for the three lock checkers.
    lock_summary: OnceLock<LockSummary>,
    pub(crate) telemetry: Telemetry,
    /// Span/event sink; a no-op unless built with
    /// [`AnalysisSession::with_trace`].
    tracer: Tracer,
    /// Contained failures (panics, exhausted budgets) recorded by the
    /// detector and the registry, in deterministic order.
    incidents: Mutex<Vec<Incident>>,
    /// Run-wide analysis budget, anchored at the first detector call so
    /// `--timeout` bounds the whole run rather than each checker.
    budget: OnceLock<Budget>,
    /// Cross-channel verdict cache: structurally identical channel
    /// encodings share solver outcomes across every worker shard.
    encoding_cache: crate::constraints::EncodingCache,
}

/// Compatibility alias: the BMOC detector is the session itself.
pub type Detector<'m> = AnalysisSession<'m>;

impl<'m> AnalysisSession<'m> {
    /// Runs the preparatory whole-module analyses (Algorithm 1, lines 2–7).
    pub fn new(module: &'m Module) -> AnalysisSession<'m> {
        Self::with_trace(module, TraceLevel::Off)
    }

    /// [`AnalysisSession::new`] with span tracing at `level`; retrieve the
    /// recording with [`AnalysisSession::trace_snapshot`].
    pub fn with_trace(module: &'m Module, level: TraceLevel) -> AnalysisSession<'m> {
        Self::with_options(module, level, AliasMode::default())
    }

    /// [`AnalysisSession::with_trace`] with an explicit alias-analysis
    /// scheduling mode (`--alias-mode`). Both modes yield byte-identical
    /// reports; demand mode skips points-to work for functions no checker
    /// ever asks about.
    pub fn with_options(
        module: &'m Module,
        level: TraceLevel,
        alias_mode: AliasMode,
    ) -> AnalysisSession<'m> {
        let telemetry = Telemetry::new();
        let tracer = Tracer::new(level);
        let (analysis, prims) = {
            // The lane borrows the tracer, so it must drop before the
            // tracer moves into the session.
            let mut lane = tracer.lane(0, "main");
            lane.span("analysis", Vec::new(), |_| {
                telemetry.time(Stage::Analysis, || {
                    let analysis = golite_ir::analyze_with_mode(module, alias_mode);
                    let prims = collect(module, &analysis);
                    (analysis, prims)
                })
            })
        };
        AnalysisSession {
            module,
            analysis,
            prims,
            dg: OnceLock::new(),
            scopes: OnceLock::new(),
            lock_summary: OnceLock::new(),
            telemetry,
            tracer,
            incidents: Mutex::new(Vec::new()),
            budget: OnceLock::new(),
            encoding_cache: crate::constraints::EncodingCache::new(),
        }
    }

    /// The session's cross-channel verdict cache.
    pub(crate) fn encoding_cache(&self) -> &crate::constraints::EncodingCache {
        &self.encoding_cache
    }

    /// Seeds the session's cross-channel verdict cache with entries
    /// exported from an earlier session — the serve daemon carries solver
    /// warmth across requests this way. Sound across module versions:
    /// the canonical keys are fully structural (no names or positions),
    /// and a `Blocking` hit still re-derives its witnesses from the
    /// actual combination, so reports stay byte-identical.
    pub fn seed_encodings(&self, entries: &[(Vec<u64>, bool)]) {
        self.encoding_cache.import(entries);
    }

    /// Exports the session's verdict cache for a later session to seed.
    pub fn export_encodings(&self) -> Vec<(Vec<u64>, bool)> {
        self.encoding_cache.export()
    }

    /// The module under analysis.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The channel dependency graph, built on first call and cached.
    pub fn dependency_graph(&self) -> &DependencyGraph {
        self.dg.get_or_init(|| {
            let mut lane = self.tracer.lane(0, "main");
            lane.span(
                "disentangle",
                vec![("what", "dependency_graph".into())],
                |_| {
                    self.telemetry.time(Stage::Disentangle, || {
                        build_dependency_graph(self.module, &self.analysis, &self.prims)
                    })
                },
            )
        })
    }

    /// Per-primitive scopes (indexed by `PrimId.0`), built once and cached.
    pub fn scopes(&self) -> &[Scope] {
        self.scopes.get_or_init(|| {
            let mut lane = self.tracer.lane(0, "main");
            lane.span("disentangle", vec![("what", "scopes".into())], |_| {
                self.telemetry.time(Stage::Disentangle, || {
                    self.prims
                        .all
                        .iter()
                        .map(|p| compute_scope(self.module, &self.analysis, &self.prims, p.id))
                        .collect()
                })
            })
        })
    }

    /// Lock-exploration results shared by the double-lock, missing-unlock,
    /// and lock-order checkers; computed once and cached.
    pub(crate) fn lock_summary(&self) -> &LockSummary {
        self.lock_summary.get_or_init(|| {
            self.telemetry.time(Stage::Traditional, || {
                crate::traditional::lock_summary(self.module, &self.analysis, &self.prims)
            })
        })
    }

    /// The telemetry sink shared by every checker run on this session.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The trace sink shared by every checker run on this session.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Freezes everything traced so far (all lanes must be dropped).
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.tracer.snapshot()
    }

    /// Snapshot of all counters and stage timings recorded so far.
    ///
    /// The alias engine's live tallies are folded into the snapshot here
    /// (rather than `add`ed to the sink) so repeated calls stay idempotent.
    pub fn stats(&self) -> Stats {
        let mut stats = self.telemetry.snapshot();
        let alias = self.analysis.alias_stats();
        for (c, v) in stats.counters.iter_mut() {
            match c {
                crate::telemetry::Counter::AliasQueriesSolved => *v += alias.queries_solved,
                crate::telemetry::Counter::AliasFunctionsSkipped => *v += alias.functions_skipped,
                _ => {}
            }
        }
        stats
    }

    /// Records a contained failure. Callers are responsible for calling
    /// this in deterministic order (channels in module order, checkers
    /// in registry order) so incident output is jobs-independent.
    pub fn record_incident(&self, incident: Incident) {
        self.incidents
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(incident);
    }

    /// The run-wide [`Budget`] derived from `config`, created on first
    /// use so its wall-clock deadline spans every subsequent checker
    /// instead of restarting per call.
    pub(crate) fn run_budget(&self, config: &crate::detector::DetectorConfig) -> &Budget {
        self.budget.get_or_init(|| {
            let budget = Budget::new(config.timeout, config.solver_step_pool);
            match &config.cancel {
                Some(token) => budget.with_cancel(token.clone()),
                None => budget,
            }
        })
    }

    /// All incidents recorded so far, in recording order.
    pub fn incidents(&self) -> Vec<Incident> {
        self.incidents
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session_for(src: &str) -> (Module, ()) {
        (golite_ir::lower_source(src).expect("lowering"), ())
    }

    #[test]
    fn session_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<AnalysisSession<'_>>();
    }

    #[test]
    fn disentangling_artifacts_are_cached() {
        let (module, ()) =
            session_for("func main() {\n ch := make(chan int)\n go func() { ch <- 1 }()\n <-ch\n}");
        let s = AnalysisSession::new(&module);
        let dg1 = s.dependency_graph() as *const _;
        let dg2 = s.dependency_graph() as *const _;
        assert_eq!(dg1, dg2, "dependency graph built once");
        assert_eq!(s.scopes().len(), s.prims.all.len());
    }

    #[test]
    fn analysis_stage_time_is_recorded() {
        let (module, ()) = session_for("func main() {\n ch := make(chan int, 1)\n ch <- 1\n}");
        let s = AnalysisSession::new(&module);
        assert!(s.stats().stage(Stage::Analysis) > std::time::Duration::ZERO);
    }
}
