//! The multi-process sweep coordinator: a lease-based on-disk work queue,
//! worker-fleet supervision, and the byte-deterministic journal merge.
//!
//! `gcatch sweep --workers N` scales the PR 4 batch engine from "one
//! machine's cores" to "a fleet of processes": the coordinator materializes
//! the job list as an on-disk [manifest](write_manifest), spawns N
//! `gcatch worker` child processes, and supervises them through plain
//! files — no sockets, no shared memory, every transition crash-safe:
//!
//! * **Leases** ([`try_claim`]): one file per job under `leases/`, created
//!   with `O_EXCL` (`create_new`) so exactly one worker wins a claim. A
//!   lease carries the owner id, a generation (the job's release count at
//!   claim time), and a deadline; owners renew it via atomic
//!   temp-file-plus-rename ([`renew_lease`]).
//! * **Heartbeats**: each worker bumps a counter file under `heartbeats/`;
//!   the coordinator kills and replaces any worker whose counter stalls
//!   past the staleness deadline — a worker that is alive but silent is
//!   indistinguishable from a hung one, so both are culled.
//! * **Re-lease** ([`Coordinator`]): when a lease deadline passes or a
//!   worker dies (including SIGKILL), the job's lease is removed and its
//!   release counter bumped, making it claimable again. A job released
//!   more than `max_releases` times is quarantined by the coordinator
//!   itself, with the coordinator-side flight-recorder postmortem (the
//!   full lease history) attached to the incident.
//! * **Journals**: every worker appends decided jobs to its own PR 4
//!   fsync-per-line [`Journal`] (fingerprinted over the *full* job set),
//!   so any prefix of any worker's work survives any crash.
//! * **Merge** ([`merge_journals`]): after all jobs carry `done/` markers
//!   the coordinator folds every journal into one record set in manifest
//!   order. Because each decision is a pure function of its module (the
//!   per-job engine runs with the same attempt budget, backoff seed, and
//!   fault plan as single-process `gcatch batch`), the merged report is
//!   **byte-identical** to a faultless single-process run. A job decided
//!   by more than one worker (an expired lease re-leased while the
//!   original owner kept working) keeps exactly one record — `Done`
//!   preferred, then lowest worker name — and surfaces a
//!   [`DuplicateDecision`] incident instead of corrupting the report.
//!
//! Directory-entry durability is part of the protocol: every create,
//! rename, and remove under the sweep directory is followed by an fsync of
//! the containing directory ([`fsync_dir`]), so a metadata-losing crash
//! cannot orphan a decided job or resurrect a released lease.

use crate::batch::{fingerprint, parse_json_string, JobRecord, JobStatus, Journal, JournalCodec};
use crate::diagnostics::escape_json;
use crate::events::{Event, EventBus, EventKind, Field, FlightRecorder};
use crate::progress::ProgressSnapshot;
use crate::resilience::{Incident, IncidentKind};
use crate::telemetry::{Counter, Telemetry};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Child;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Exit code a worker uses when the `sweep.worker` fault site fires and
/// the process self-terminates mid-job (a simulated crash, distinguishable
/// from real panics in CI logs).
pub const WORKER_KILL_EXIT: i32 = 17;

/// Fsyncs a directory so directory-entry mutations (create/rename/remove)
/// inside it become durable. On filesystems where directories cannot be
/// fsynced the error is reported to the caller.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// [`fsync_dir`] on a file's parent directory (no-op for bare filenames,
/// whose parent `""` means the CWD — opened as `.`).
pub fn fsync_parent(path: &Path) -> std::io::Result<()> {
    match path.parent() {
        Some(dir) if dir.as_os_str().is_empty() => fsync_dir(Path::new(".")),
        Some(dir) => fsync_dir(dir),
        None => Ok(()),
    }
}

/// Writes a file atomically: temp file in the same directory, contents +
/// fsync, rename over the target, fsync the directory.
pub fn write_file_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = match (path.parent(), path.file_name()) {
        (Some(dir), Some(name)) => dir.join(format!(
            ".{}.tmp-{}",
            name.to_string_lossy(),
            std::process::id()
        )),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "path has no parent/file name",
            ))
        }
    };
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(contents.as_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    fsync_parent(path)
}

/// Milliseconds since the UNIX epoch (lease deadlines; all sweep
/// processes run on one machine, so one clock serves them all).
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------- layout

/// The on-disk layout of one sweep: fixed subdirectories under a root
/// that coordinator and workers share.
#[derive(Clone, Debug)]
pub struct SweepLayout {
    root: PathBuf,
}

impl SweepLayout {
    /// A layout rooted at `root` (not created yet; see
    /// [`SweepLayout::init`]).
    pub fn new(root: impl Into<PathBuf>) -> SweepLayout {
        SweepLayout { root: root.into() }
    }

    /// The sweep root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The job-list manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest")
    }

    /// Directory of per-job lease files.
    pub fn leases_dir(&self) -> PathBuf {
        self.root.join("leases")
    }

    /// The lease file of one job (by manifest index).
    pub fn lease_path(&self, job: usize) -> PathBuf {
        self.leases_dir().join(format!("{job}.lease"))
    }

    /// Directory of per-worker heartbeat counter files.
    pub fn heartbeats_dir(&self) -> PathBuf {
        self.root.join("heartbeats")
    }

    /// One worker's heartbeat file.
    pub fn heartbeat_path(&self, worker: &str) -> PathBuf {
        self.heartbeats_dir().join(format!("{worker}.hb"))
    }

    /// Directory of per-worker decision journals.
    pub fn journals_dir(&self) -> PathBuf {
        self.root.join("journals")
    }

    /// One worker's journal file.
    pub fn journal_path(&self, worker: &str) -> PathBuf {
        self.journals_dir().join(format!("{worker}.jsonl"))
    }

    /// Directory of per-job done markers.
    pub fn done_dir(&self) -> PathBuf {
        self.root.join("done")
    }

    /// One job's done marker.
    pub fn done_path(&self, job: usize) -> PathBuf {
        self.done_dir().join(job.to_string())
    }

    /// Directory of per-job release counters.
    pub fn releases_dir(&self) -> PathBuf {
        self.root.join("releases")
    }

    /// One job's release-counter file.
    pub fn release_path(&self, job: usize) -> PathBuf {
        self.releases_dir().join(job.to_string())
    }

    /// Directory of per-worker pid files.
    pub fn pids_dir(&self) -> PathBuf {
        self.root.join("pids")
    }

    /// One worker's pid file.
    pub fn pid_path(&self, worker: &str) -> PathBuf {
        self.pids_dir().join(format!("{worker}.pid"))
    }

    /// The shutdown marker: its existence tells workers to drain and exit.
    pub fn shutdown_path(&self) -> PathBuf {
        self.root.join("shutdown")
    }

    /// Creates the whole directory tree and makes it durable.
    pub fn init(&self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.root)?;
        for dir in [
            self.leases_dir(),
            self.heartbeats_dir(),
            self.journals_dir(),
            self.done_dir(),
            self.releases_dir(),
            self.pids_dir(),
        ] {
            std::fs::create_dir_all(&dir)?;
        }
        fsync_dir(&self.root)?;
        fsync_parent(&self.root)
    }
}

// -------------------------------------------------------------- manifest

/// Magic key of the manifest header line.
const MANIFEST_MAGIC: &str = "gcatch_sweep_manifest";
/// Manifest format version.
const MANIFEST_VERSION: u64 = 1;

/// Writes the job list as the sweep manifest (atomically): a fingerprinted
/// header line followed by one JSON string per job id, in submission
/// order. Workers reconstruct the job list — and thus every job's index
/// and journal fingerprint — from this file alone.
pub fn write_manifest(layout: &SweepLayout, ids: &[String]) -> std::io::Result<()> {
    let mut out = format!(
        "{{\"{MANIFEST_MAGIC}\":{MANIFEST_VERSION},\"jobs\":{},\"fingerprint\":\"{}\"}}\n",
        ids.len(),
        fingerprint(ids)
    );
    for id in ids {
        out.push('"');
        escape_json(id, &mut out);
        out.push_str("\"\n");
    }
    write_file_atomic(&layout.manifest_path(), &out)
}

/// Reads and validates the manifest, returning the job ids in submission
/// order.
pub fn read_manifest(layout: &SweepLayout) -> Result<Vec<String>, String> {
    let path = layout.manifest_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if !header.starts_with(&format!("{{\"{MANIFEST_MAGIC}\":")) {
        return Err(format!("{} is not a gcatch sweep manifest", path.display()));
    }
    let mut ids = Vec::new();
    for line in lines {
        let body = line
            .strip_prefix('"')
            .ok_or_else(|| format!("malformed manifest line in {}", path.display()))?;
        let (id, rest) = parse_json_string(body)
            .ok_or_else(|| format!("malformed manifest line in {}", path.display()))?;
        if !rest.is_empty() {
            return Err(format!("trailing garbage in manifest {}", path.display()));
        }
        ids.push(id);
    }
    if !header.contains(&format!("\"fingerprint\":\"{}\"", fingerprint(&ids))) {
        return Err(format!(
            "manifest {} fingerprint does not match its job list",
            path.display()
        ));
    }
    Ok(ids)
}

// ---------------------------------------------------------------- leases

/// The parsed contents of one lease file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lease {
    /// The leased job's manifest index.
    pub job: usize,
    /// The owning worker's id.
    pub worker: String,
    /// The job's release count at claim time. Re-leases bump it, so fault
    /// decisions keyed on the generation decorrelate across re-runs.
    pub generation: u64,
    /// Epoch-milliseconds deadline; the coordinator releases the job once
    /// this passes un-renewed.
    pub deadline_ms: u64,
}

impl Lease {
    fn render(&self) -> String {
        let mut out = format!("{{\"job\":{},\"worker\":\"", self.job);
        escape_json(&self.worker, &mut out);
        out.push_str(&format!(
            "\",\"generation\":{},\"deadline_ms\":{}}}\n",
            self.generation, self.deadline_ms
        ));
        out
    }

    fn parse(text: &str) -> Option<Lease> {
        let rest = text.trim_end().strip_prefix("{\"job\":")?;
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let job: usize = digits.parse().ok()?;
        let rest = rest[digits.len()..].strip_prefix(",\"worker\":\"")?;
        let (worker, rest) = parse_json_string(rest)?;
        let rest = rest.strip_prefix(",\"generation\":")?;
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let generation: u64 = digits.parse().ok()?;
        let rest = rest[digits.len()..].strip_prefix(",\"deadline_ms\":")?;
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let deadline_ms: u64 = digits.parse().ok()?;
        rest[digits.len()..].strip_prefix('}')?;
        Some(Lease {
            job,
            worker,
            generation,
            deadline_ms,
        })
    }
}

/// Attempts to claim a job by creating its lease file with `create_new`
/// (`O_EXCL`) — the filesystem arbitrates, so exactly one claimant wins.
/// Returns `false` when the lease already exists.
pub fn try_claim(
    layout: &SweepLayout,
    job: usize,
    worker: &str,
    generation: u64,
    ttl: Duration,
) -> std::io::Result<bool> {
    let lease = Lease {
        job,
        worker: worker.to_string(),
        generation,
        deadline_ms: now_ms() + ttl.as_millis() as u64,
    };
    let mut file = match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(layout.lease_path(job))
    {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => return Ok(false),
        Err(e) => return Err(e),
    };
    file.write_all(lease.render().as_bytes())?;
    file.sync_all()?;
    drop(file);
    fsync_dir(&layout.leases_dir())?;
    Ok(true)
}

/// Reads a job's current lease, if any (unparseable contents read as
/// `None` — a torn write is treated like no lease and expires naturally).
pub fn read_lease(layout: &SweepLayout, job: usize) -> Option<Lease> {
    let text = std::fs::read_to_string(layout.lease_path(job)).ok()?;
    Lease::parse(&text)
}

/// Pushes a lease's deadline forward, but only while `worker` still owns
/// it at the same generation (an expired-and-re-leased job must not be
/// resurrected by its previous owner). Returns whether the lease was
/// renewed.
pub fn renew_lease(
    layout: &SweepLayout,
    job: usize,
    worker: &str,
    generation: u64,
    ttl: Duration,
) -> std::io::Result<bool> {
    match read_lease(layout, job) {
        Some(cur) if cur.worker == worker && cur.generation == generation => {
            let renewed = Lease {
                deadline_ms: now_ms() + ttl.as_millis() as u64,
                ..cur
            };
            write_file_atomic(&layout.lease_path(job), &renewed.render())?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Removes a job's lease file (idempotent) and makes the removal durable.
pub fn remove_lease(layout: &SweepLayout, job: usize) -> std::io::Result<()> {
    match std::fs::remove_file(layout.lease_path(job)) {
        Ok(()) => fsync_dir(&layout.leases_dir()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// A job's release count: how many times its lease was revoked and the
/// job made claimable again. Doubles as the generation of the next claim.
pub fn release_count(layout: &SweepLayout, job: usize) -> u64 {
    std::fs::read_to_string(layout.release_path(job))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Increments a job's release counter durably and returns the new count.
pub fn bump_release_count(layout: &SweepLayout, job: usize) -> std::io::Result<u64> {
    let next = release_count(layout, job) + 1;
    write_file_atomic(&layout.release_path(job), &format!("{next}\n"))?;
    Ok(next)
}

// --------------------------------------------------------------- markers

/// Durably marks a job decided (idempotent: a concurrent duplicate
/// decision racing to the same marker is fine — the merge deduplicates).
pub fn mark_done(layout: &SweepLayout, job: usize) -> std::io::Result<()> {
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(layout.done_path(job))
    {
        Ok(_) => fsync_dir(&layout.done_dir()),
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(()),
        Err(e) => Err(e),
    }
}

/// Whether a job carries a done marker.
pub fn is_done(layout: &SweepLayout, job: usize) -> bool {
    layout.done_path(job).exists()
}

/// Writes the shutdown marker; workers drain and exit once they see it.
pub fn request_shutdown(layout: &SweepLayout) -> std::io::Result<()> {
    write_file_atomic(&layout.shutdown_path(), "shutdown\n")
}

/// Whether the shutdown marker exists.
pub fn shutdown_requested(layout: &SweepLayout) -> bool {
    layout.shutdown_path().exists()
}

// ----------------------------------------------------------------- merge

/// One job that was decided by more than one worker.
#[derive(Clone, Debug)]
pub struct DuplicateDecision {
    /// The job id.
    pub job: String,
    /// Every worker that journaled a decision, in merge-preference order
    /// (the first one's record was kept).
    pub workers: Vec<String>,
    /// Whether all decisions agreed byte-for-byte (status, attempts,
    /// payload, and incident message all equal). Disagreement means the
    /// decision was not a pure function of the job — worth investigating.
    pub agreed: bool,
}

impl DuplicateDecision {
    /// Renders the collision as a structured [`Incident`].
    pub fn incident(&self) -> Incident {
        Incident {
            kind: IncidentKind::DuplicateDecision,
            name: self.job.clone(),
            message: format!(
                "decided by {} workers ({}); kept {}'s record ({})",
                self.workers.len(),
                self.workers.join(", "),
                self.workers[0],
                if self.agreed {
                    "all decisions agreed"
                } else {
                    "decisions DISAGREED"
                }
            ),
            rung: 0,
            flight: Vec::new(),
        }
    }
}

/// Everything [`merge_journals`] produced.
#[derive(Debug)]
pub struct MergeOutcome {
    /// One record per manifest job, in manifest order.
    pub records: Vec<JobRecord<String>>,
    /// Jobs decided by more than one worker (exactly one record kept).
    pub duplicates: Vec<DuplicateDecision>,
    /// Jobs with no journaled decision anywhere (a supervision bug —
    /// the coordinator only merges once every job carries a done marker).
    pub missing: Vec<String>,
}

/// Rank used to pick the kept record among duplicates: `Done` beats
/// `Quarantined` (a completed decision is never shadowed by a give-up),
/// ties broken by worker name — both orderings are stable across runs.
fn dedup_rank(status: JobStatus) -> u8 {
    match status {
        JobStatus::Done | JobStatus::Resumed => 0,
        JobStatus::Quarantined => 1,
    }
}

/// Folds every worker journal under `journals/` into one record set in
/// manifest order. Journals are read without modification (torn tails are
/// skipped, not healed); each must carry the full job set's fingerprint.
pub fn merge_journals(
    layout: &SweepLayout,
    ids: &[String],
    codec: &JournalCodec<String>,
) -> Result<MergeOutcome, String> {
    let dir = layout.journals_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot list journals in {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();

    let mut by_job: BTreeMap<&str, Vec<(String, JobRecord<String>)>> = BTreeMap::new();
    for path in &paths {
        let worker = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let records = Journal::read_records(path, ids, codec)?;
        for rec in records {
            by_job
                .entry(
                    ids.iter()
                        .find(|id| **id == rec.id)
                        .map(|id| id.as_str())
                        .unwrap_or(""),
                )
                .or_default()
                .push((worker.clone(), rec));
        }
    }

    let mut records = Vec::with_capacity(ids.len());
    let mut duplicates = Vec::new();
    let mut missing = Vec::new();
    for id in ids {
        let Some(mut candidates) = by_job.remove(id.as_str()) else {
            missing.push(id.clone());
            continue;
        };
        // Files were visited in sorted order, so a stable sort by
        // (status rank, worker) is fully deterministic.
        candidates.sort_by(|a, b| {
            (dedup_rank(a.1.status), a.0.as_str()).cmp(&(dedup_rank(b.1.status), b.0.as_str()))
        });
        if candidates.len() > 1 {
            let first = &candidates[0].1;
            let agreed = candidates.iter().all(|(_, rec)| {
                rec.status == first.status
                    && rec.attempts == first.attempts
                    && rec.payload == first.payload
                    && rec.incident.as_ref().map(|i| &i.message)
                        == first.incident.as_ref().map(|i| &i.message)
            });
            duplicates.push(DuplicateDecision {
                job: id.clone(),
                workers: candidates.iter().map(|(w, _)| w.clone()).collect(),
                agreed,
            });
        }
        records.push(candidates.into_iter().next().expect("non-empty").1);
    }
    Ok(MergeOutcome {
        records,
        duplicates,
        missing,
    })
}

// ----------------------------------------------------------- coordinator

/// Sweep coordinator configuration.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Worker processes to keep alive (clamped to at least 1).
    pub workers: usize,
    /// Lease time-to-live; owners renew at a fraction of this, and the
    /// coordinator releases jobs whose lease deadline passes un-renewed.
    pub lease: Duration,
    /// Releases a job may survive before the coordinator quarantines it.
    pub max_releases: u64,
    /// Coordinator supervision tick.
    pub poll: Duration,
    /// Heartbeat staleness: a worker whose counter has not changed for
    /// this long is killed and replaced.
    pub stale_after: Duration,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        let lease = Duration::from_millis(1_000);
        SweepConfig {
            workers: 4,
            lease,
            max_releases: 3,
            poll: Duration::from_millis(15),
            stale_after: lease * 4,
        }
    }
}

/// Everything a finished sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The merged record set (manifest order) plus duplicate incidents.
    pub merge: MergeOutcome,
    /// Worker processes spawned (initial fleet + replacements).
    pub workers_spawned: u64,
    /// Worker processes declared dead.
    pub workers_lost: u64,
    /// Leases whose deadline passed un-renewed.
    pub leases_expired: u64,
    /// Job releases (lease expiry + worker death combined).
    pub jobs_releases: u64,
    /// True when the sweep was wound down early by SIGINT/SIGTERM: the
    /// shutdown marker was written, workers drained after their current
    /// job, every decided job was merged, and the jobs that never got a
    /// decision are listed in `merge.missing` (a later sweep over the same
    /// directory picks them up).
    pub interrupted: bool,
    /// Jobs quarantined by the coordinator after exhausting the re-lease
    /// budget (already included in the merged records).
    pub coordinator_quarantined: u64,
}

/// One supervised worker process.
struct WorkerProc {
    name: String,
    child: Child,
    hb_value: Option<u64>,
    hb_changed: Instant,
}

/// The sweep coordinator. Spawning is delegated to a caller closure so
/// the CLI decides the exact command line; everything else — supervision,
/// re-leasing, quarantining, merging — lives here.
pub struct Coordinator<'t> {
    layout: SweepLayout,
    ids: Vec<String>,
    config: SweepConfig,
    telemetry: &'t Telemetry,
    bus: Option<&'t EventBus>,
    #[allow(clippy::type_complexity)]
    progress: Option<(Box<dyn Fn(&ProgressSnapshot) + 't>, Duration)>,
}

impl<'t> Coordinator<'t> {
    /// A coordinator over an initialized layout and manifest job list.
    pub fn new(
        layout: SweepLayout,
        ids: Vec<String>,
        config: SweepConfig,
        telemetry: &'t Telemetry,
    ) -> Coordinator<'t> {
        Coordinator {
            layout,
            ids,
            config,
            telemetry,
            bus: None,
            progress: None,
        }
    }

    /// Attaches a structured event bus for worker-lifecycle and lease
    /// events.
    pub fn with_events(mut self, bus: &'t EventBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Attaches a live progress callback, invoked at most once per
    /// `every` (plus once at start and end).
    pub fn with_progress(
        mut self,
        callback: impl Fn(&ProgressSnapshot) + 't,
        every: Duration,
    ) -> Self {
        self.progress = Some((Box::new(callback), every));
        self
    }

    fn emit(
        &self,
        kind: EventKind,
        group: u64,
        job: Option<&str>,
        fields: Vec<(&'static str, Field)>,
    ) {
        if let Some(bus) = self.bus {
            bus.emit(Event {
                kind,
                group,
                job: job.map(|j| j.to_string()),
                attempt: None,
                channel: None,
                fields,
            });
        }
    }

    /// Runs the sweep to completion: spawns the fleet via `spawn`,
    /// supervises it until every job carries a done marker, then merges
    /// the journals.
    pub fn run(
        &self,
        mut spawn: impl FnMut(&str) -> std::io::Result<Child>,
    ) -> Result<SweepOutcome, String> {
        let n = self.ids.len();
        let codec = JournalCodec::raw_json();
        let coordinator_journal =
            Journal::create(&self.layout.journal_path("coordinator"), &self.ids)
                .map_err(|e| format!("cannot create coordinator journal: {e}"))?;
        let flights: Vec<FlightRecorder> = (0..n).map(|_| FlightRecorder::new()).collect();
        let mut fleet: Vec<WorkerProc> = Vec::new();
        let mut next_worker = 0usize;
        let mut stats = SweepOutcome {
            merge: MergeOutcome {
                records: Vec::new(),
                duplicates: Vec::new(),
                missing: Vec::new(),
            },
            workers_spawned: 0,
            workers_lost: 0,
            leases_expired: 0,
            jobs_releases: 0,
            interrupted: false,
            coordinator_quarantined: 0,
        };
        // Highest lease generation already announced per job, so each
        // claim is reported once.
        let mut announced: Vec<Option<u64>> = vec![None; n];
        let mut last_progress = Instant::now() - self.config.poll;

        // The full fleet spawns even when it outnumbers the jobs: surplus
        // workers idle-poll, and that idle capacity is exactly what picks
        // up a re-leased job while its original owner is still working.
        let initial = self.config.workers.max(1);
        for _ in 0..initial {
            self.spawn_worker(&mut spawn, &mut fleet, &mut next_worker, &mut stats)?;
        }
        self.emit_progress(n, &stats, &mut last_progress, true);
        crate::signals::install_shutdown_handler();

        loop {
            // Ctrl-C / SIGTERM: stop supervising (no more respawns or
            // re-leases), hand the fleet the shutdown marker below, and
            // merge whatever was decided.
            if crate::signals::shutdown_signaled() {
                stats.interrupted = true;
                break;
            }
            let done = (0..n).filter(|&j| is_done(&self.layout, j)).count();
            self.emit_progress(n, &stats, &mut last_progress, false);
            if done == n {
                break;
            }

            // Reap exited workers. A clean exit means the worker saw all
            // jobs decided (or drained); anything else is a loss.
            let mut lost: Vec<String> = Vec::new();
            fleet.retain_mut(|w| match w.child.try_wait() {
                Ok(Some(status)) if status.success() => false,
                Ok(Some(_)) => {
                    lost.push(w.name.clone());
                    false
                }
                Ok(None) => true,
                Err(_) => {
                    lost.push(w.name.clone());
                    false
                }
            });

            // Cull silent workers: a stalled heartbeat counter past the
            // staleness deadline gets the process killed (it may still be
            // running — SIGKILL it so its leases can be re-issued safely).
            let mut idx = 0;
            while idx < fleet.len() {
                let w = &mut fleet[idx];
                let hb = std::fs::read_to_string(self.layout.heartbeat_path(&w.name))
                    .ok()
                    .and_then(|s| s.trim().parse::<u64>().ok());
                if hb.is_some() && hb != w.hb_value {
                    w.hb_value = hb;
                    w.hb_changed = Instant::now();
                    idx += 1;
                } else if w.hb_changed.elapsed() > self.config.stale_after {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                    let mut w = fleet.remove(idx);
                    let _ = w.child.wait();
                    lost.push(w.name);
                } else {
                    idx += 1;
                }
            }

            for name in lost {
                self.telemetry.add(Counter::WorkersLost, 1);
                stats.workers_lost += 1;
                self.emit(
                    EventKind::WorkerLost,
                    0,
                    None,
                    vec![("worker", Field::Str(name.clone()))],
                );
                // Free every lease the dead worker still held.
                for job in 0..n {
                    if is_done(&self.layout, job) {
                        continue;
                    }
                    if let Some(lease) = read_lease(&self.layout, job) {
                        if lease.worker == name {
                            flights[job].push(format!(
                                "worker {} lost while holding lease (generation {})",
                                name, lease.generation
                            ));
                            self.release_job(
                                job,
                                &flights,
                                &coordinator_journal,
                                &codec,
                                &mut stats,
                            )?;
                        }
                    }
                }
                self.spawn_worker(&mut spawn, &mut fleet, &mut next_worker, &mut stats)?;
            }

            // Lease scan: announce new claims, expire stale deadlines.
            let now = now_ms();
            for job in 0..n {
                if is_done(&self.layout, job) {
                    continue;
                }
                let Some(lease) = read_lease(&self.layout, job) else {
                    continue;
                };
                if announced[job] < Some(lease.generation + 1) {
                    announced[job] = Some(lease.generation + 1);
                    flights[job].push(format!(
                        "leased by {} (generation {})",
                        lease.worker, lease.generation
                    ));
                    self.emit(
                        EventKind::JobLeased,
                        job as u64,
                        Some(&self.ids[job]),
                        vec![
                            ("worker", Field::Str(lease.worker.clone())),
                            ("generation", Field::U64(lease.generation)),
                        ],
                    );
                }
                if lease.deadline_ms < now {
                    self.telemetry.add(Counter::LeasesExpired, 1);
                    stats.leases_expired += 1;
                    flights[job].push(format!(
                        "lease expired (owner {}, generation {})",
                        lease.worker, lease.generation
                    ));
                    self.emit(
                        EventKind::LeaseExpired,
                        job as u64,
                        Some(&self.ids[job]),
                        vec![
                            ("worker", Field::Str(lease.worker.clone())),
                            ("generation", Field::U64(lease.generation)),
                        ],
                    );
                    self.release_job(job, &flights, &coordinator_journal, &codec, &mut stats)?;
                }
            }

            // The fleet must never drain while jobs remain undecided.
            if fleet.is_empty() {
                self.spawn_worker(&mut spawn, &mut fleet, &mut next_worker, &mut stats)?;
            }

            std::thread::sleep(self.config.poll);
        }

        let _ = request_shutdown(&self.layout);
        let grace = Instant::now();
        for w in &mut fleet {
            // Workers exit on their own once every job is done; give them
            // a moment, then insist.
            loop {
                match w.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if grace.elapsed() > Duration::from_secs(5) => {
                        let _ = w.child.kill();
                        let _ = w.child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => break,
                }
            }
        }

        if stats.interrupted {
            // Every worker is reaped by now; their pid files and any lease
            // they still held are stale. Remove both so nothing points at
            // dead processes and a later sweep over this directory starts
            // from a clean queue.
            if let Ok(entries) = std::fs::read_dir(self.layout.pids_dir()) {
                for entry in entries.flatten() {
                    let _ = std::fs::remove_file(entry.path());
                }
                let _ = fsync_dir(&self.layout.pids_dir());
            }
            for job in 0..n {
                if !is_done(&self.layout, job) && read_lease(&self.layout, job).is_some() {
                    let _ = remove_lease(&self.layout, job);
                }
            }
        }

        stats.merge = merge_journals(&self.layout, &self.ids, &codec)?;
        if !stats.merge.missing.is_empty() && !stats.interrupted {
            return Err(format!(
                "sweep finished with undecided jobs: {}",
                stats.merge.missing.join(", ")
            ));
        }
        for dup in &stats.merge.duplicates {
            self.emit(
                EventKind::DuplicateDecision,
                self.ids.iter().position(|id| *id == dup.job).unwrap_or(0) as u64,
                Some(&dup.job),
                vec![
                    ("workers", Field::U64(dup.workers.len() as u64)),
                    ("agreed", Field::Bool(dup.agreed)),
                ],
            );
        }
        self.telemetry.add(Counter::JobsTotal, n as u64);
        let quarantined = stats
            .merge
            .records
            .iter()
            .filter(|r| r.status == JobStatus::Quarantined)
            .count() as u64;
        if quarantined > 0 {
            self.telemetry.add(Counter::JobsQuarantined, quarantined);
        }
        self.emit_progress(n, &stats, &mut last_progress, true);
        Ok(stats)
    }

    fn spawn_worker(
        &self,
        spawn: &mut impl FnMut(&str) -> std::io::Result<Child>,
        fleet: &mut Vec<WorkerProc>,
        next_worker: &mut usize,
        stats: &mut SweepOutcome,
    ) -> Result<(), String> {
        let name = format!("w{}", *next_worker);
        *next_worker += 1;
        let child = spawn(&name).map_err(|e| format!("cannot spawn worker {name}: {e}"))?;
        self.telemetry.add(Counter::WorkersSpawned, 1);
        stats.workers_spawned += 1;
        self.emit(
            EventKind::WorkerSpawned,
            0,
            None,
            vec![("worker", Field::Str(name.clone()))],
        );
        fleet.push(WorkerProc {
            name,
            child,
            hb_value: None,
            hb_changed: Instant::now(),
        });
        Ok(())
    }

    /// Revokes a job's lease and makes it claimable again; a job past the
    /// re-lease budget is quarantined by the coordinator instead, with the
    /// coordinator-side lease history as the postmortem.
    fn release_job(
        &self,
        job: usize,
        flights: &[FlightRecorder],
        coordinator_journal: &Journal,
        codec: &JournalCodec<String>,
        stats: &mut SweepOutcome,
    ) -> Result<(), String> {
        remove_lease(&self.layout, job)
            .map_err(|e| format!("cannot remove lease for job {job}: {e}"))?;
        let count = bump_release_count(&self.layout, job)
            .map_err(|e| format!("cannot bump release count for job {job}: {e}"))?;
        self.telemetry.add(Counter::JobsReleases, 1);
        stats.jobs_releases += 1;
        flights[job].push(format!("released back to the queue (release #{count})"));
        self.emit(
            EventKind::JobReleased,
            job as u64,
            Some(&self.ids[job]),
            vec![("releases", Field::U64(count))],
        );
        if count > self.config.max_releases && !is_done(&self.layout, job) {
            let message = format!(
                "released {count} times (re-lease budget {}); giving up",
                self.config.max_releases
            );
            flights[job].push(format!("quarantined by coordinator: {message}"));
            let rec = JobRecord {
                id: self.ids[job].clone(),
                status: JobStatus::Quarantined,
                attempts: count as u32,
                payload: None,
                incident: Some(Incident {
                    kind: IncidentKind::Quarantined,
                    name: self.ids[job].clone(),
                    message: message.clone(),
                    rung: 0,
                    flight: flights[job].dump(),
                }),
                wall: Duration::ZERO,
            };
            coordinator_journal
                .record(&rec, codec)
                .map_err(|e| format!("cannot journal coordinator quarantine: {e}"))?;
            mark_done(&self.layout, job).map_err(|e| format!("cannot mark job {job} done: {e}"))?;
            stats.coordinator_quarantined += 1;
            self.emit(
                EventKind::JobQuarantined,
                job as u64,
                Some(&self.ids[job]),
                vec![
                    ("releases", Field::U64(count)),
                    ("error", Field::Str(message)),
                ],
            );
        }
        Ok(())
    }

    fn emit_progress(&self, total: usize, stats: &SweepOutcome, last: &mut Instant, force: bool) {
        let Some((callback, every)) = &self.progress else {
            return;
        };
        if !force && last.elapsed() < *every {
            return;
        }
        *last = Instant::now();
        let done = (0..total).filter(|&j| is_done(&self.layout, j)).count();
        callback(&ProgressSnapshot {
            sweep: true,
            total,
            done,
            quarantined: stats.coordinator_quarantined,
            released: stats.jobs_releases,
            workers_lost: stats.workers_lost,
            ..ProgressSnapshot::default()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn scratch(name: &str) -> SweepLayout {
        let root = std::env::temp_dir().join(format!(
            "gcatch-sweep-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        let layout = SweepLayout::new(root);
        layout.init().unwrap();
        layout
    }

    fn cleanup(layout: &SweepLayout) {
        std::fs::remove_dir_all(layout.root()).ok();
    }

    #[test]
    fn manifest_round_trips_with_escaping() {
        let layout = scratch("manifest");
        let ids = vec![
            "examples/a.go".to_string(),
            "weird \"name\"\nwith newline.go".to_string(),
        ];
        write_manifest(&layout, &ids).unwrap();
        assert_eq!(read_manifest(&layout).unwrap(), ids);
        cleanup(&layout);
    }

    #[test]
    fn manifest_rejects_tampered_job_lists() {
        let layout = scratch("manifest-tamper");
        let ids = vec!["a.go".to_string(), "b.go".to_string()];
        write_manifest(&layout, &ids).unwrap();
        // Drop a job line: the fingerprint no longer matches.
        let text = std::fs::read_to_string(layout.manifest_path()).unwrap();
        let truncated: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(layout.manifest_path(), truncated).unwrap();
        let err = read_manifest(&layout).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        cleanup(&layout);
    }

    #[test]
    fn claims_are_mutually_exclusive_until_released() {
        let layout = scratch("claims");
        let ttl = Duration::from_secs(60);
        assert!(try_claim(&layout, 0, "w0", 0, ttl).unwrap());
        assert!(!try_claim(&layout, 0, "w1", 0, ttl).unwrap(), "O_EXCL lost");
        let lease = read_lease(&layout, 0).unwrap();
        assert_eq!(lease.worker, "w0");
        assert_eq!(lease.generation, 0);
        assert!(lease.deadline_ms > now_ms());

        remove_lease(&layout, 0).unwrap();
        let gen = bump_release_count(&layout, 0).unwrap();
        assert_eq!(gen, 1);
        assert!(try_claim(&layout, 0, "w1", gen, ttl).unwrap());
        assert_eq!(read_lease(&layout, 0).unwrap().worker, "w1");
        cleanup(&layout);
    }

    #[test]
    fn renew_only_works_for_the_current_owner_and_generation() {
        let layout = scratch("renew");
        let ttl = Duration::from_millis(100);
        assert!(try_claim(&layout, 3, "w0", 0, ttl).unwrap());
        let before = read_lease(&layout, 3).unwrap().deadline_ms;
        std::thread::sleep(Duration::from_millis(5));
        assert!(renew_lease(&layout, 3, "w0", 0, ttl).unwrap());
        assert!(read_lease(&layout, 3).unwrap().deadline_ms >= before);
        // A stranger, or the owner at a stale generation, cannot renew.
        assert!(!renew_lease(&layout, 3, "w1", 0, ttl).unwrap());
        assert!(!renew_lease(&layout, 3, "w0", 1, ttl).unwrap());
        // After release + re-claim, the old owner cannot resurrect it.
        remove_lease(&layout, 3).unwrap();
        bump_release_count(&layout, 3).unwrap();
        assert!(try_claim(&layout, 3, "w1", 1, ttl).unwrap());
        assert!(!renew_lease(&layout, 3, "w0", 0, ttl).unwrap());
        cleanup(&layout);
    }

    #[test]
    fn done_markers_and_shutdown_are_idempotent() {
        let layout = scratch("markers");
        assert!(!is_done(&layout, 2));
        mark_done(&layout, 2).unwrap();
        mark_done(&layout, 2).unwrap();
        assert!(is_done(&layout, 2));
        assert!(!shutdown_requested(&layout));
        request_shutdown(&layout).unwrap();
        assert!(shutdown_requested(&layout));
        cleanup(&layout);
    }

    fn record(
        id: &str,
        status: JobStatus,
        attempts: u32,
        payload: Option<&str>,
    ) -> JobRecord<String> {
        JobRecord {
            id: id.to_string(),
            status,
            attempts,
            payload: payload.map(|p| p.to_string()),
            incident: (status == JobStatus::Quarantined).then(|| Incident {
                kind: IncidentKind::Quarantined,
                name: id.to_string(),
                message: "gave up".to_string(),
                rung: 0,
                flight: Vec::new(),
            }),
            wall: Duration::ZERO,
        }
    }

    #[test]
    fn merge_dedups_deterministically_and_reports_duplicates() {
        let layout = scratch("merge");
        let ids: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let codec = JournalCodec::raw_json();

        let j0 = Journal::create(&layout.journal_path("w0"), &ids).unwrap();
        j0.record(
            &record("a", JobStatus::Done, 1, Some("{\"m\":\"a\"}")),
            &codec,
        )
        .unwrap();
        j0.record(
            &record("b", JobStatus::Done, 2, Some("{\"m\":\"b\"}")),
            &codec,
        )
        .unwrap();
        let j1 = Journal::create(&layout.journal_path("w1"), &ids).unwrap();
        // Duplicate decision for `b` (identical bytes) and a quarantine
        // for `c` that a later Done from w2 must shadow.
        j1.record(
            &record("b", JobStatus::Done, 2, Some("{\"m\":\"b\"}")),
            &codec,
        )
        .unwrap();
        j1.record(&record("c", JobStatus::Quarantined, 3, None), &codec)
            .unwrap();
        let j2 = Journal::create(&layout.journal_path("w2"), &ids).unwrap();
        j2.record(
            &record("c", JobStatus::Done, 1, Some("{\"m\":\"c\"}")),
            &codec,
        )
        .unwrap();

        let merge = merge_journals(&layout, &ids, &codec).unwrap();
        assert!(merge.missing.is_empty());
        assert_eq!(merge.records.len(), 3);
        assert_eq!(
            merge
                .records
                .iter()
                .map(|r| r.id.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b", "c"],
            "manifest order"
        );
        // `c`: Done beats Quarantined regardless of worker order.
        assert_eq!(merge.records[2].status, JobStatus::Done);
        assert_eq!(merge.records[2].payload.as_deref(), Some("{\"m\":\"c\"}"));
        assert_eq!(merge.duplicates.len(), 2);
        let dup_b = merge.duplicates.iter().find(|d| d.job == "b").unwrap();
        assert!(dup_b.agreed);
        assert_eq!(dup_b.workers, vec!["w0", "w1"]);
        let dup_c = merge.duplicates.iter().find(|d| d.job == "c").unwrap();
        assert!(!dup_c.agreed, "Done vs Quarantined disagree");
        assert_eq!(dup_c.workers[0], "w2", "the kept record's worker leads");
        let incident = dup_c.incident();
        assert_eq!(incident.kind, IncidentKind::DuplicateDecision);
        assert!(incident.message.contains("w2"), "{}", incident.message);
        cleanup(&layout);
    }

    #[test]
    fn merge_reports_missing_jobs() {
        let layout = scratch("merge-missing");
        let ids: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let codec = JournalCodec::raw_json();
        let j0 = Journal::create(&layout.journal_path("w0"), &ids).unwrap();
        j0.record(&record("a", JobStatus::Done, 1, Some("1")), &codec)
            .unwrap();
        let merge = merge_journals(&layout, &ids, &codec).unwrap();
        assert_eq!(merge.missing, vec!["b".to_string()]);
        cleanup(&layout);
    }

    #[test]
    fn atomic_write_and_dir_fsync_work_on_plain_paths() {
        let layout = scratch("atomic");
        let path = layout.root().join("blob");
        write_file_atomic(&path, "hello\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello\n");
        write_file_atomic(&path, "replaced\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "replaced\n");
        fsync_parent(&path).unwrap();
        fsync_dir(layout.root()).unwrap();
        cleanup(&layout);
    }

    #[test]
    fn lease_render_parse_round_trips() {
        let lease = Lease {
            job: 42,
            worker: "w\"7\"".to_string(),
            generation: 3,
            deadline_ms: 1_723_000_000_123,
        };
        assert_eq!(Lease::parse(&lease.render()).unwrap(), lease);
        assert!(Lease::parse("garbage").is_none());
        assert!(Lease::parse("{\"job\":1,\"worker\":\"w0\"").is_none());
    }
}
