//! Budgets, incidents, and the degradation ladder.
//!
//! GCatch only scales because every expensive step is bounded and the
//! analysis *keeps going* when a bound trips (§3.3, §3.5 of the paper).
//! This module supplies the three pieces the bounds hang off:
//!
//! * [`Budget`] — a shared wall-clock deadline plus an optional global
//!   solver-step pool, threaded cooperatively into the path enumerator
//!   and the DPLL loop. The analogue of the paper's Z3 query timeout.
//! * [`Incident`] — the structured record left behind when a unit of
//!   work (a channel's BMOC task, a registered checker, a corpus app)
//!   panics or exhausts its budget. Incidents are reported honestly in
//!   `--stats`, `--json`, `--explain`, and the trace instead of either
//!   aborting the process or silently truncating results.
//! * The degradation ladder ([`ladder_limits`]) — when a channel
//!   exhausts its budget, it is retried with tightened [`Limits`]
//!   (reduced unroll, then a reduced Pset) before the detector gives
//!   up, mirroring §3.3's constraint-blowup strategy.
//!
//! The whole layer is inert unless a budget is active: with no
//! `--timeout`/`--channel-timeout` the detector takes the exact same
//! code paths (and produces byte-identical output) as before.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use crate::paths::Limits;

/// A shared cooperative cancellation flag.
///
/// The batch engine hands one token to every dispatched attempt; when a
/// hedged twin wins the race, the loser's token is cancelled and its
/// [`Budget`] starts reporting [`expired`](Budget::expired), so the
/// loser winds down at the next cooperative check instead of burning a
/// worker to completion. Clones share the flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the token; every budget carrying it expires from now on.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A cooperative analysis budget shared across workers.
///
/// A budget combines an optional wall-clock deadline with an optional
/// global solver-step pool. Both are checked cooperatively: the path
/// enumerator consults [`Budget::expired`] between blocks and the DPLL
/// loop checks its deadline every few hundred steps, so an expired
/// budget degrades the result (to an [`Incident`]) rather than killing
/// the process.
///
/// `Budget::default()` is unbounded and [`inactive`](Budget::is_active);
/// an inactive budget never expires and never rations steps, which is
/// what keeps the default configuration byte-identical to the
/// pre-budget detector.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    pool: Option<Arc<AtomicU64>>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// Build a budget from optional wall-clock and step allowances.
    ///
    /// `timeout` sets a deadline of `now + timeout`; `step_pool` seeds
    /// a global pool that every solver query draws from.
    pub fn new(timeout: Option<Duration>, step_pool: Option<u64>) -> Self {
        Budget {
            deadline: timeout.map(|t| Instant::now() + t),
            pool: step_pool.map(|n| Arc::new(AtomicU64::new(n))),
            cancel: None,
        }
    }

    /// Attaches a [`CancelToken`]: once the token is cancelled this
    /// budget (and every budget [`tightened`](Budget::tightened) from
    /// it) reports [`expired`](Budget::expired).
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Whether any bound (deadline, step pool, or cancel token) is in
    /// force.
    pub fn is_active(&self) -> bool {
        self.deadline.is_some() || self.pool.is_some() || self.cancel.is_some()
    }

    /// Whether the budget has been used up (deadline passed, step pool
    /// drained, or cancel token flipped). An inactive budget never
    /// expires.
    pub fn expired(&self) -> bool {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        if let Some(p) = &self.pool {
            if p.load(Ordering::Relaxed) == 0 {
                return true;
            }
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return true;
            }
        }
        false
    }

    /// The wall-clock deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Reserve up to `want` solver steps from the pool.
    ///
    /// Returns the number of steps actually granted (`want` when no
    /// pool is configured). Unused steps should be handed back with
    /// [`Budget::refund`] once the query's true cost is known.
    pub fn draw(&self, want: u64) -> u64 {
        let Some(p) = &self.pool else { return want };
        let mut cur = p.load(Ordering::Relaxed);
        loop {
            let grant = cur.min(want);
            match p.compare_exchange_weak(cur, cur - grant, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return grant,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return unused steps to the pool.
    pub fn refund(&self, unused: u64) {
        if let Some(p) = &self.pool {
            p.fetch_add(unused, Ordering::Relaxed);
        }
    }

    /// Derive a per-task budget: same shared step pool, deadline
    /// tightened to `min(self.deadline, now + timeout)` when a
    /// per-task `timeout` is given.
    pub fn tightened(&self, timeout: Option<Duration>) -> Budget {
        let local = timeout.map(|t| Instant::now() + t);
        let deadline = match (self.deadline, local) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Budget {
            deadline,
            pool: self.pool.clone(),
            cancel: self.cancel.clone(),
        }
    }
}

/// What kind of work unit an [`Incident`] is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentKind {
    /// A per-channel BMOC analysis task.
    Channel,
    /// A registered checker run through the [`Registry`](crate::Registry).
    Checker,
    /// A corpus application in a batch sweep.
    App,
    /// A batch job that kept failing after its retry budget: it is set
    /// aside (quarantined) so the rest of the batch can finish, never
    /// silently dropped.
    Quarantined,
    /// A sweep job decided by more than one worker (an expired lease was
    /// re-leased while the original owner kept working). The merge keeps
    /// exactly one decision; this incident records the collision.
    DuplicateDecision,
    /// One request handled by the serve daemon: a contained panic, an
    /// expired request deadline, or an executor error. Delivered to the
    /// client as a structured response instead of a dead connection.
    Request,
    /// An observability sink (`--metrics-out`/`--events-out`) could not
    /// be written — full disk, yanked path. The run keeps its results and
    /// reports the sink failure instead of aborting.
    Sink,
}

impl IncidentKind {
    /// Stable lower-case label used in text, JSON, and trace output.
    pub fn label(self) -> &'static str {
        match self {
            IncidentKind::Channel => "channel",
            IncidentKind::Checker => "checker",
            IncidentKind::App => "app",
            IncidentKind::Quarantined => "quarantined",
            IncidentKind::DuplicateDecision => "duplicate-decision",
            IncidentKind::Request => "request",
            IncidentKind::Sink => "sink",
        }
    }
}

/// A structured record of a contained failure.
///
/// Incidents replace both process aborts (a panicking checker or
/// channel task) and silent truncation (a channel that exhausted its
/// [`Budget`] on every rung of the degradation ladder). They are
/// collected in deterministic order — channels in module order,
/// checkers in registry order — so incident output is bit-identical
/// across `--jobs` values.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Incident {
    /// What kind of work unit failed.
    pub kind: IncidentKind,
    /// The unit's name: channel name, checker name, or app name.
    pub name: String,
    /// Human-readable cause: the panic message or the budget bound hit.
    pub message: String,
    /// The degradation-ladder rung reached before giving up
    /// (0 when the ladder was not involved, e.g. a checker panic).
    pub rung: u32,
    /// Flight-recorder dump: the last lifecycle lines recorded for the
    /// failed unit before it was given up on. Populated for `Quarantined`
    /// incidents by the batch engine; empty elsewhere.
    pub flight: Vec<String>,
}

impl Incident {
    /// One-line rendering used by the CLI text and `--explain` output;
    /// when a flight-recorder dump is attached it follows as an indented
    /// block, oldest line first.
    pub fn render(&self) -> String {
        let rung = if self.rung > 0 {
            format!(" (gave up at ladder rung {})", self.rung)
        } else {
            String::new()
        };
        let mut out = format!(
            "incident: {} `{}`: {}{}\n",
            self.kind.label(),
            self.name,
            self.message,
            rung
        );
        if !self.flight.is_empty() {
            out.push_str("  flight recorder:\n");
            for line in &self.flight {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// Number of rungs on the degradation ladder (rung 0 is the configured
/// limits; the last rung is the most aggressively tightened retry).
pub const LADDER_RUNGS: u32 = 3;

/// The tightened [`Limits`] for a degradation-ladder rung.
///
/// * rung 0 — the configured limits, untouched;
/// * rung 1 — reduced unroll: half the paths, one block visit, a
///   shallower call depth (the paper's first response to constraint
///   blowup, §3.3);
/// * rung 2+ — minimal unroll; the detector additionally shrinks the
///   Pset to the channel's own operations at this rung.
pub fn ladder_limits(base: &Limits, rung: u32) -> Limits {
    match rung {
        0 => base.clone(),
        1 => Limits {
            max_block_visits: 1,
            max_paths_per_func: (base.max_paths_per_func / 2).max(8),
            max_events: base.max_events,
            max_depth: base.max_depth.min(4),
        },
        _ => Limits {
            max_block_visits: 1,
            max_paths_per_func: (base.max_paths_per_func / 4).max(4),
            max_events: base.max_events,
            max_depth: 2,
        },
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Run `f`, converting a panic into `Err(message)` instead of
/// unwinding further.
///
/// The default panic hook is wrapped (once, process-wide) so contained
/// panics do not spray backtraces onto stderr; panics outside
/// `catch_isolated` still print normally. The closure is asserted
/// unwind-safe: callers only consume the returned value, and any
/// shared state touched by a panicking unit is discarded along with
/// its partial results.
pub fn catch_isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET_PANICS.with(|q| q.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_inactive_and_never_expires() {
        let b = Budget::default();
        assert!(!b.is_active());
        assert!(!b.expired());
        assert_eq!(b.draw(1000), 1000);
    }

    #[test]
    fn step_pool_is_rationed_and_refundable() {
        let b = Budget::new(None, Some(100));
        assert!(b.is_active());
        assert_eq!(b.draw(60), 60);
        assert_eq!(b.draw(60), 40);
        assert!(b.expired(), "drained pool expires the budget");
        b.refund(25);
        assert!(!b.expired());
        assert_eq!(b.draw(100), 25);
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        let b = Budget::new(Some(Duration::ZERO), None);
        assert!(b.is_active());
        assert!(b.expired());
    }

    #[test]
    fn tightened_keeps_the_earlier_deadline_and_shares_the_pool() {
        let b = Budget::new(Some(Duration::from_secs(3600)), Some(10));
        let t = b.tightened(Some(Duration::ZERO));
        assert!(t.expired(), "per-task deadline must tighten");
        assert!(!b.expired(), "parent deadline unaffected");
        assert_eq!(t.draw(4), 4);
        assert_eq!(b.draw(10), 6, "pool is shared with the parent");
    }

    #[test]
    fn cancel_token_expires_the_budget_and_its_children() {
        let token = CancelToken::new();
        let b = Budget::default().with_cancel(token.clone());
        assert!(b.is_active(), "a cancellable budget is active");
        assert!(!b.expired());
        let child = b.tightened(None);
        token.cancel();
        assert!(b.expired());
        assert!(child.expired(), "children share the token");
        assert!(
            !Budget::default().expired(),
            "a fresh budget without a token is unexpired"
        );
    }

    #[test]
    fn ladder_limits_tighten_monotonically() {
        let base = Limits::default();
        let r1 = ladder_limits(&base, 1);
        let r2 = ladder_limits(&base, 2);
        assert_eq!(ladder_limits(&base, 0), base);
        assert!(r1.max_paths_per_func < base.max_paths_per_func);
        assert!(r1.max_block_visits <= base.max_block_visits);
        assert!(r2.max_paths_per_func <= r1.max_paths_per_func);
        assert!(r2.max_depth <= r1.max_depth);
    }

    #[test]
    fn catch_isolated_returns_the_panic_message() {
        assert_eq!(catch_isolated(|| 7), Ok(7));
        assert_eq!(
            catch_isolated(|| -> i32 { panic!("boom") }),
            Err("boom".to_string())
        );
        let msg = catch_isolated(|| -> i32 { panic!("chan {}", 3) });
        assert_eq!(msg, Err("chan 3".to_string()));
    }

    #[test]
    fn incident_render_mentions_kind_name_message_and_rung() {
        let i = Incident {
            kind: IncidentKind::Channel,
            name: "done".to_string(),
            message: "budget exhausted".to_string(),
            rung: 2,
            flight: Vec::new(),
        };
        let s = i.render();
        assert!(s.contains("channel `done`"), "{s}");
        assert!(s.contains("budget exhausted"), "{s}");
        assert!(s.contains("rung 2"), "{s}");
        assert!(!s.contains("flight recorder"), "{s}");
        let j = Incident {
            kind: IncidentKind::Checker,
            name: "panic-test".to_string(),
            message: "boom".to_string(),
            rung: 0,
            flight: Vec::new(),
        };
        assert!(!j.render().contains("rung"), "{}", j.render());
    }

    #[test]
    fn incident_render_appends_flight_dump() {
        let i = Incident {
            kind: IncidentKind::Quarantined,
            name: "job-3".to_string(),
            message: "gave up".to_string(),
            rung: 0,
            flight: vec![
                "attempt 1: started".to_string(),
                "attempt 1: failed".to_string(),
            ],
        };
        let s = i.render();
        assert!(s.contains("  flight recorder:\n"), "{s}");
        assert!(s.contains("    attempt 1: started\n"), "{s}");
        assert!(s.contains("    attempt 1: failed\n"), "{s}");
    }
}
