//! Discovery of synchronization primitives and their operations
//! (Algorithm 1, lines 2–5 of the paper).
//!
//! GCatch identifies each primitive by its **static creation site** — the
//! `make(chan ..)` or mutex-creating instruction — and uses the points-to
//! analysis to decide which primitive(s) each synchronization operation
//! touches. Operations through deferred helper calls (`defer close(ch)`,
//! `defer mu.Unlock()`) are resolved at the defer site, where the argument's
//! points-to set is precise.

use crate::alias_ext::chan_sites_of;
use golite::Span;
use golite_ir::alias::{AbstractObject, Analysis};
use golite_ir::ir::*;
use std::collections::{HashMap, HashSet};

/// Index of a primitive in [`Primitives::all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrimId(pub usize);

/// What kind of primitive a creation site makes.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimKind {
    /// A channel with a statically known buffer size (`None` when the
    /// capacity expression is not a constant).
    Chan {
        /// Buffer size if statically known.
        buffer: Option<i64>,
    },
    /// A mutex (GCatch models it as a buffer-1 channel, §3.4).
    Mutex {
        /// Whether this is an `sync.RWMutex`.
        rw: bool,
    },
}

/// A synchronization primitive, identified by creation site.
#[derive(Debug, Clone)]
pub struct Primitive {
    /// Stable id.
    pub id: PrimId,
    /// Channel or mutex.
    pub kind: PrimKind,
    /// The creation instruction.
    pub site: Loc,
    /// Source span of the creation site.
    pub span: Span,
    /// Source-level name of the variable first bound to it.
    pub name: String,
}

impl Primitive {
    /// The buffer size GCatch's constraint system uses (`BS`): mutexes are
    /// buffer-1 channels; dynamic capacities are unsupported (`None`).
    pub fn buffer_size(&self) -> Option<i64> {
        match &self.kind {
            PrimKind::Chan { buffer } => *buffer,
            PrimKind::Mutex { .. } => Some(1),
        }
    }

    /// Whether this primitive is a channel.
    pub fn is_chan(&self) -> bool {
        matches!(self.kind, PrimKind::Chan { .. })
    }
}

/// The operation kinds GCatch's constraint system models (§3.4). Mutex
/// lock/unlock are already translated to the channel view: `Lock` behaves
/// as a send on a buffer-1 channel and `Unlock` as a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Channel send (or mutex lock, after translation).
    Send,
    /// Channel receive (or mutex unlock, after translation).
    Recv,
    /// Channel close.
    Close,
}

impl OpKind {
    /// Whether this operation can block its goroutine.
    pub fn can_block(&self) -> bool {
        matches!(self, OpKind::Send | OpKind::Recv)
    }

    /// Whether this operation can unblock a peer (sends satisfy receives,
    /// receives free buffer slots/mutexes, closes wake all receivers).
    pub fn can_unblock(&self) -> bool {
        true
    }
}

/// A static synchronization operation on a known primitive.
#[derive(Debug, Clone)]
pub struct SyncOp {
    /// The primitive operated on.
    pub prim: PrimId,
    /// Send/recv/close in the unified channel view.
    pub kind: OpKind,
    /// Instruction (or select-terminator) location.
    pub loc: Loc,
    /// Source span.
    pub span: Span,
    /// Containing function.
    pub func: FuncId,
    /// For select cases: the case index within the select terminator.
    pub select_case: Option<usize>,
    /// True when this op came from a mutex (for BMOC-C vs BMOC-M).
    pub from_mutex: bool,
}

impl SyncOp {
    /// Human-readable description for reports.
    pub fn describe(&self, prims: &Primitives) -> String {
        let name = &prims.all[self.prim.0].name;
        let verb = match (self.kind, self.from_mutex) {
            (OpKind::Send, false) => "send on",
            (OpKind::Recv, false) => "recv from",
            (OpKind::Close, _) => "close of",
            (OpKind::Send, true) => "lock of",
            (OpKind::Recv, true) => "unlock of",
        };
        match self.select_case {
            Some(i) => format!("select case {i}: {verb} {name}"),
            None => format!("{verb} {name}"),
        }
    }
}

/// All primitives and operations of a module.
#[derive(Debug)]
pub struct Primitives {
    /// Primitives in deterministic (creation-site) order.
    pub all: Vec<Primitive>,
    site_to_prim: HashMap<Loc, PrimId>,
    /// Every statically collected operation.
    pub ops: Vec<SyncOp>,
    ops_by_prim: Vec<Vec<usize>>,
    funcs_with_ops: Vec<HashSet<FuncId>>,
}

impl Primitives {
    /// The primitive created at `site`, if any.
    pub fn by_site(&self, site: Loc) -> Option<&Primitive> {
        self.site_to_prim.get(&site).map(|id| &self.all[id.0])
    }

    /// All operations on primitive `p`.
    pub fn ops_of(&self, p: PrimId) -> impl Iterator<Item = &SyncOp> {
        self.ops_by_prim[p.0].iter().map(move |&i| &self.ops[i])
    }

    /// Functions containing at least one operation on `p`.
    pub fn funcs_with_ops_of(&self, p: PrimId) -> &HashSet<FuncId> {
        &self.funcs_with_ops[p.0]
    }

    /// Channels only (the primitives the BMOC detector iterates, line 8 of
    /// Algorithm 1).
    pub fn channels(&self) -> impl Iterator<Item = &Primitive> {
        self.all.iter().filter(|p| p.is_chan())
    }

    /// Resolves the primitive ids an operand may denote.
    pub fn prims_of_operand(&self, analysis: &Analysis, func: FuncId, op: &Operand) -> Vec<PrimId> {
        let mut out = Vec::new();
        for obj in analysis.operand_points_to(func, op) {
            let site = match obj {
                AbstractObject::Chan(loc) | AbstractObject::Mutex(loc) => loc,
                _ => continue,
            };
            if let Some(&id) = self.site_to_prim.get(&site) {
                out.push(id);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Scans the module for primitives and operations.
pub fn collect(module: &Module, analysis: &Analysis) -> Primitives {
    let mut all = Vec::new();
    let mut site_to_prim = HashMap::new();

    // Pass 1: creation sites.
    for f in &module.funcs {
        for (bid, block) in f.iter_blocks() {
            for (idx, instr) in block.instrs.iter().enumerate() {
                let loc = Loc {
                    func: f.id,
                    block: bid,
                    idx: idx as u32,
                };
                let span = block.spans[idx];
                let (kind, name) = match instr {
                    Instr::MakeChan { dst, cap, .. } => (
                        PrimKind::Chan {
                            buffer: cap.as_int(),
                        },
                        f.var_name(*dst).to_string(),
                    ),
                    Instr::MakeMutex { dst, rw } => {
                        (PrimKind::Mutex { rw: *rw }, f.var_name(*dst).to_string())
                    }
                    _ => continue,
                };
                let id = PrimId(all.len());
                all.push(Primitive {
                    id,
                    kind,
                    site: loc,
                    span,
                    name,
                });
                site_to_prim.insert(loc, id);
            }
        }
    }

    // Pass 2: operations.
    let mut ops: Vec<SyncOp> = Vec::new();
    let resolve = |func: FuncId, op: &Operand| -> Vec<(PrimId, bool)> {
        chan_sites_of(analysis, func, op)
            .into_iter()
            .filter_map(|(site, is_mutex)| site_to_prim.get(&site).map(|&id| (id, is_mutex)))
            .collect()
    };
    for f in &module.funcs {
        for (bid, block) in f.iter_blocks() {
            for (idx, instr) in block.instrs.iter().enumerate() {
                let loc = Loc {
                    func: f.id,
                    block: bid,
                    idx: idx as u32,
                };
                let span = block.spans[idx];
                let mut push = |kind: OpKind, operand: &Operand| {
                    for (prim, from_mutex) in resolve(f.id, operand) {
                        ops.push(SyncOp {
                            prim,
                            kind,
                            loc,
                            span,
                            func: f.id,
                            select_case: None,
                            from_mutex,
                        });
                    }
                };
                match instr {
                    Instr::Send { chan, .. } => push(OpKind::Send, chan),
                    Instr::Recv { chan, .. } => push(OpKind::Recv, chan),
                    Instr::Close { chan } => push(OpKind::Close, chan),
                    // Mutexes become buffer-1 channels (§3.4).
                    Instr::Lock { mutex, .. } => push(OpKind::Send, mutex),
                    Instr::Unlock { mutex, .. } => push(OpKind::Recv, mutex),
                    _ => {}
                }
            }
            if let Terminator::Select { cases, .. } = &block.term {
                let loc = Loc {
                    func: f.id,
                    block: bid,
                    idx: block.instrs.len() as u32,
                };
                for (ci, case) in cases.iter().enumerate() {
                    let kind = match case.op {
                        SelectOp::Send { .. } => OpKind::Send,
                        SelectOp::Recv { .. } => OpKind::Recv,
                    };
                    for (prim, from_mutex) in resolve(f.id, case.op.chan()) {
                        ops.push(SyncOp {
                            prim,
                            kind,
                            loc,
                            span: block.term_span,
                            func: f.id,
                            select_case: Some(ci),
                            from_mutex,
                        });
                    }
                }
            }
        }
    }

    let mut ops_by_prim = vec![Vec::new(); all.len()];
    let mut funcs_with_ops = vec![HashSet::new(); all.len()];
    for (i, op) in ops.iter().enumerate() {
        ops_by_prim[op.prim.0].push(i);
        funcs_with_ops[op.prim.0].insert(op.func);
    }

    Primitives {
        all,
        site_to_prim,
        ops,
        ops_by_prim,
        funcs_with_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use golite_ir::{analyze, lower_source};

    fn collect_src(src: &str) -> (Module, Primitives) {
        let m = lower_source(src).expect("lowering");
        let a = analyze(&m);
        let p = collect(&m, &a);
        (m, p)
    }

    #[test]
    fn finds_channel_creation_and_ops() {
        let (_, p) = collect_src(
            "func main() {\n ch := make(chan int, 2)\n go func() {\n  ch <- 1\n }()\n <-ch\n close(ch)\n}",
        );
        assert_eq!(p.all.len(), 1);
        let prim = &p.all[0];
        assert_eq!(prim.name, "ch");
        assert_eq!(prim.buffer_size(), Some(2));
        let kinds: Vec<OpKind> = p.ops_of(prim.id).map(|o| o.kind).collect();
        assert!(kinds.contains(&OpKind::Send));
        assert!(kinds.contains(&OpKind::Recv));
        assert!(kinds.contains(&OpKind::Close));
    }

    #[test]
    fn mutex_ops_become_channel_view() {
        let (_, p) = collect_src("func main() {\n var mu sync.Mutex\n mu.Lock()\n mu.Unlock()\n}");
        assert_eq!(p.all.len(), 1);
        let prim = &p.all[0];
        assert_eq!(prim.buffer_size(), Some(1), "mutex = buffer-1 channel");
        let ops: Vec<&SyncOp> = p.ops_of(prim.id).collect();
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().any(|o| o.kind == OpKind::Send && o.from_mutex));
        assert!(ops.iter().any(|o| o.kind == OpKind::Recv && o.from_mutex));
    }

    #[test]
    fn select_cases_recorded_with_index() {
        let (_, p) = collect_src(
            "func main() {\n a := make(chan int)\n b := make(chan int)\n select {\n case <-a:\n case b <- 1:\n }\n}",
        );
        assert_eq!(p.all.len(), 2);
        let select_ops: Vec<&SyncOp> = p.ops.iter().filter(|o| o.select_case.is_some()).collect();
        assert_eq!(select_ops.len(), 2);
        assert_eq!(select_ops[0].select_case, Some(0));
        assert_eq!(select_ops[1].select_case, Some(1));
    }

    #[test]
    fn unbuffered_channel_has_zero_buffer() {
        let (_, p) = collect_src("func main() {\n ch := make(chan struct{})\n close(ch)\n}");
        assert_eq!(p.all[0].buffer_size(), Some(0));
    }

    #[test]
    fn dynamic_capacity_is_unknown() {
        let (_, p) = collect_src("func f(n int) {\n ch := make(chan int, n)\n close(ch)\n}");
        assert_eq!(p.all[0].buffer_size(), None);
    }

    #[test]
    fn funcs_with_ops_spans_closures() {
        let (m, p) = collect_src(
            "func main() {\n ch := make(chan int)\n go func() {\n  ch <- 1\n }()\n <-ch\n}",
        );
        let prim = &p.all[0];
        let funcs = p.funcs_with_ops_of(prim.id);
        assert_eq!(funcs.len(), 2, "main and the closure");
        let closure = m.funcs.iter().find(|f| f.is_closure).unwrap();
        assert!(funcs.contains(&closure.id));
    }
}
