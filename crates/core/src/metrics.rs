//! The named metrics registry — Prometheus text exposition over
//! [`Telemetry`](crate::telemetry::Telemetry).
//!
//! Every counter, stage timer, and histogram in a [`Stats`] snapshot is
//! published under a stable `gcatch_*` name:
//!
//! * counters → `gcatch_<name>_total` (TYPE `counter`), e.g.
//!   `gcatch_solver_queries_total`;
//! * stage timers → one `gcatch_stage_seconds` gauge family with a
//!   `stage="<name>"` label;
//! * histograms → a summary family (`quantile="0.5|0.9|0.99"` samples plus
//!   `_sum`/`_count`) and a companion `_max` gauge. Nanosecond metrics drop
//!   their `_ns` suffix and export seconds (`job_wall_ns` →
//!   `gcatch_job_wall_seconds`); count-valued metrics keep their name
//!   (`gcatch_paths_per_channel`).
//!
//! Snapshots carry no Prometheus timestamps, so a rendering is a pure
//! function of the [`Stats`] value; with `zero_time` set every
//! time-derived value renders as 0 and the output is byte-stable across
//! machines (the golden-file mode — sample counts survive, so goldens
//! still pin how many samples each histogram saw).
//!
//! [`validate_exposition`] is the minimal in-repo parser CI uses to check
//! `--metrics-out` artifacts: HELP/TYPE comment syntax, metric-name and
//! label well-formedness, float-parseable sample values, and that every
//! sample belongs to a declared family.

use crate::telemetry::{Counter, Metric, Stats};
use std::time::Duration;

/// The Prometheus family name of one counter. A counter whose own name
/// already ends in `_total` keeps a single suffix
/// (`pset_prims_total` → `gcatch_pset_prims_total`, not `…_total_total`).
pub fn counter_family(c: Counter) -> String {
    let name = c.name();
    match name.strip_suffix("_total") {
        Some(base) => format!("gcatch_{base}_total"),
        None => format!("gcatch_{name}_total"),
    }
}

/// The Prometheus family name of one histogram metric. Nanosecond metrics
/// export as seconds (`_ns` → `_seconds`); count metrics keep their name.
pub fn metric_family(m: Metric) -> String {
    match m.name().strip_suffix("_ns") {
        Some(base) => format!("gcatch_{base}_seconds"),
        None => format!("gcatch_{}", m.name()),
    }
}

/// One-line HELP text for a counter family.
pub fn counter_help(c: Counter) -> &'static str {
    match c {
        Counter::ChannelsAnalyzed => "Channels examined by the BMOC driver.",
        Counter::PsetsComputed => "Psets computed (one per disentangled channel).",
        Counter::PsetPrimsTotal => "Total primitives across all computed Psets.",
        Counter::PathsEnumerated => "Execution paths enumerated.",
        Counter::BranchesPruned => "Branches pruned as infeasible during path enumeration.",
        Counter::CombosBuilt => "Path combinations built.",
        Counter::GroupsChecked => "Suspicious groups submitted to the solver.",
        Counter::SolverQueries => "Solver queries issued.",
        Counter::SolverSteps => "Total solver propagation/decision steps.",
        Counter::SolverDecisions => "Total solver decisions.",
        Counter::SolverConflicts => "Total solver conflicts.",
        Counter::SolverEncodingsReused => {
            "Queries answered by reusing an already-built combination encoding."
        }
        Counter::LearnedClausesKept => {
            "Learned clauses retained from earlier queries of the same combination."
        }
        Counter::ReportsEmitted => "Bug reports emitted (before cross-checker dedup).",
        Counter::DuplicatesDropped => "Reports dropped by cross-checker deduplication.",
        Counter::IncompleteChannels => {
            "Channels whose analysis gave up after exhausting the degradation ladder."
        }
        Counter::JobsTotal => "Jobs submitted to the batch engine (restored + executed).",
        Counter::JobsRetried => "Batch job attempts re-dispatched after a contained failure.",
        Counter::JobsHedged => "Batch jobs that got a hedge twin after straggling past the p99.",
        Counter::JobsQuarantined => "Batch jobs set aside after exhausting their retry budget.",
        Counter::JobsResumed => "Batch jobs restored from a checkpoint journal instead of re-run.",
        Counter::AliasQueriesSolved => "Points-to component solves performed by the alias engine.",
        Counter::AliasFunctionsSkipped => {
            "Functions whose points-to constraints were never solved (demand mode)."
        }
        Counter::ChannelEncodingsShared => {
            "Channel verdicts answered from a structurally identical channel's cache."
        }
        Counter::JobsReleases => {
            "Sweep jobs released back to the queue after lease expiry or worker death."
        }
        Counter::LeasesExpired => "Sweep leases whose deadline passed before renewal.",
        Counter::WorkersSpawned => "Worker processes spawned by the sweep coordinator.",
        Counter::WorkersLost => "Worker processes the sweep coordinator declared dead.",
        Counter::RequestsTotal => "Requests received by the serve daemon.",
        Counter::RequestsShed => "Requests shed by serve admission control (queue full).",
        Counter::RequestsFailed => "Requests answered with an incident response.",
        Counter::CacheHits => "Requests answered from the serve response cache.",
        Counter::CacheEvictions => "Serve cache entries evicted past capacity.",
        Counter::SessionsReused => "Check requests answered with help from a warm session.",
        Counter::ChannelsReanalyzed => "Channels re-analyzed on a warm check (diff-reachable).",
        Counter::ChannelsReplayed => "Channel verdicts replayed from a warm session.",
        Counter::SessionEvictions => "Warm sessions evicted (LRU, fault, or incomparable shape).",
    }
}

/// One-line HELP text for a histogram family.
pub fn metric_help(m: Metric) -> &'static str {
    match m {
        Metric::ChannelDetectNs => "Per-channel BMOC detection latency in seconds.",
        Metric::SolverQueryNs => "Per-query solver time in seconds.",
        Metric::PathsPerChannel => "Paths enumerated per channel.",
        Metric::CombosPerChannel => "Path combinations built per channel.",
        Metric::JobWallNs => "Per-job wall-clock time in the batch engine, in seconds.",
        Metric::ModuleWallNs => "End-to-end wall-clock per checked module, in seconds.",
    }
}

/// Exact nanoseconds → seconds with nine decimals (no float rounding).
fn fmt_seconds(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

fn duration_seconds(d: Duration, zero_time: bool) -> String {
    if zero_time {
        "0.000000000".to_string()
    } else {
        fmt_seconds(d.as_nanos() as u64)
    }
}

/// Renders a [`Stats`] snapshot in Prometheus text-exposition format.
///
/// With `zero_time` (the `GCATCH_OBS_ZERO_TIME` golden mode) every
/// time-derived value — stage seconds and the quantiles/sum/max of
/// nanosecond histograms — renders as exactly 0; counters and sample
/// counts are kept, so the output is deterministic yet still meaningful.
pub fn render_prometheus(stats: &Stats, zero_time: bool) -> String {
    let mut out = String::new();

    for (c, v) in &stats.counters {
        let family = counter_family(*c);
        out.push_str(&format!("# HELP {family} {}\n", counter_help(*c)));
        out.push_str(&format!("# TYPE {family} counter\n"));
        out.push_str(&format!("{family} {v}\n"));
    }

    out.push_str(
        "# HELP gcatch_stage_seconds Wall-clock time attributed to each pipeline stage.\n",
    );
    out.push_str("# TYPE gcatch_stage_seconds gauge\n");
    for (s, d) in &stats.stages {
        out.push_str(&format!(
            "gcatch_stage_seconds{{stage=\"{}\"}} {}\n",
            s.name(),
            duration_seconds(*d, zero_time)
        ));
    }

    for (m, h) in &stats.hists {
        let family = metric_family(*m);
        let value = |v: u64| {
            if m.is_time() {
                if zero_time {
                    "0.000000000".to_string()
                } else {
                    fmt_seconds(v)
                }
            } else {
                v.to_string()
            }
        };
        out.push_str(&format!("# HELP {family} {}\n", metric_help(*m)));
        out.push_str(&format!("# TYPE {family} summary\n"));
        for (q, p) in [("0.5", 50), ("0.9", 90), ("0.99", 99)] {
            out.push_str(&format!(
                "{family}{{quantile=\"{q}\"}} {}\n",
                value(h.percentile(p))
            ));
        }
        out.push_str(&format!("{family}_sum {}\n", value(h.sum)));
        out.push_str(&format!("{family}_count {}\n", h.count));
        out.push_str(&format!("# HELP {family}_max Largest recorded sample.\n"));
        out.push_str(&format!("# TYPE {family}_max gauge\n"));
        out.push_str(&format!("{family}_max {}\n", value(h.max)));
    }

    out
}

/// Summary returned by [`validate_exposition`].
#[derive(Debug, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Number of `# TYPE` family declarations.
    pub families: usize,
    /// Number of sample lines.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The family a sample line belongs to: summaries append `_sum`/`_count`
/// and this exporter adds a `_max` companion gauge (declared separately).
fn sample_family<'n>(name: &'n str, declared: &[(String, String)]) -> Option<&'n str> {
    if declared.iter().any(|(n, _)| n == name) {
        return Some(name);
    }
    for suffix in ["_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if declared.iter().any(|(n, t)| n == base && t == "summary") {
                return Some(base);
            }
        }
    }
    None
}

fn validate_labels(labels: &str, line: usize) -> Result<(), String> {
    let mut rest = labels;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line}: label without `=`"))?;
        let name = &rest[..eq];
        if !valid_metric_name(name) {
            return Err(format!("line {line}: bad label name `{name}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line}: label value must be quoted"))?;
        // Scan the quoted value, honoring \" \\ \n escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| format!("line {line}: unterminated label value"))?;
        rest = &rest[end + 1..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None if rest.is_empty() => {}
            None => return Err(format!("line {line}: expected `,` or `}}` after label")),
        }
    }
    Ok(())
}

/// Minimal Prometheus text-exposition validator (the CI `obs-smoke`
/// parser): checks comment syntax, metric-name and label well-formedness,
/// float-parseable values, and that every sample belongs to a family
/// declared by a preceding `# TYPE` line.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    let mut declared: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {line}: bad metric name `{name}` in TYPE"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {line}: bad metric type `{kind}`"));
                }
                if declared.iter().any(|(n, _)| n == name) {
                    return Err(format!("line {line}: duplicate TYPE for `{name}`"));
                }
                declared.push((name.to_string(), kind.to_string()));
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {line}: bad metric name `{name}` in HELP"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match trimmed.find(['{', ' ']) {
            Some(i) if trimmed.as_bytes()[i] == b'{' => {
                let close = trimmed[i..]
                    .find('}')
                    .map(|j| i + j)
                    .ok_or_else(|| format!("line {line}: unterminated label set"))?;
                validate_labels(&trimmed[i + 1..close], line)?;
                (&trimmed[..i], trimmed[close + 1..].trim_start())
            }
            Some(i) => (&trimmed[..i], trimmed[i + 1..].trim_start()),
            None => return Err(format!("line {line}: sample without a value")),
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {line}: bad metric name `{name_part}`"));
        }
        if sample_family(name_part, &declared).is_none() {
            return Err(format!(
                "line {line}: sample `{name_part}` has no preceding TYPE declaration"
            ));
        }
        let value = value_part.split(' ').next().unwrap_or("");
        if value.parse::<f64>().is_err() {
            return Err(format!("line {line}: unparseable value `{value}`"));
        }
        samples += 1;
    }
    Ok(ExpositionSummary {
        families: declared.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Stage;
    use crate::telemetry::Telemetry;

    fn sample_stats() -> Stats {
        let t = Telemetry::new();
        t.add(Counter::SolverQueries, 41);
        t.record(Stage::Constraints, Duration::from_millis(12));
        t.observe(Metric::SolverQueryNs, 2_500_000);
        t.observe(Metric::PathsPerChannel, 9);
        t.snapshot()
    }

    #[test]
    fn rendering_is_valid_and_covers_every_family() {
        let text = render_prometheus(&sample_stats(), false);
        let summary = validate_exposition(&text).expect("self-rendered exposition validates");
        // One family per counter, one stage gauge, and a summary + max
        // gauge per histogram metric.
        let expected = Counter::all().len() + 1 + 2 * Metric::all().len();
        assert_eq!(summary.families, expected);
        for c in Counter::all() {
            assert!(text.contains(&counter_family(c)), "missing {}", c.name());
        }
        for s in Stage::all() {
            assert!(text.contains(&format!("stage=\"{}\"", s.name())));
        }
        for m in Metric::all() {
            assert!(text.contains(&metric_family(m)), "missing {}", m.name());
        }
        assert!(text.contains("gcatch_solver_queries_total 41\n"));
        assert!(text.contains("gcatch_solver_query_seconds_count 1\n"));
        // Nanosecond metrics export seconds.
        assert!(text.contains("gcatch_job_wall_seconds"));
        assert!(!text.contains("_ns_"));
    }

    #[test]
    fn zero_time_zeroes_time_values_but_keeps_counts() {
        let text = render_prometheus(&sample_stats(), true);
        assert!(text.contains("gcatch_stage_seconds{stage=\"constraints\"} 0.000000000\n"));
        assert!(text.contains("gcatch_solver_query_seconds_sum 0.000000000\n"));
        assert!(text.contains("gcatch_solver_query_seconds_count 1\n"));
        assert!(text.contains("gcatch_solver_queries_total 41\n"));
        // Count-valued summaries are untouched.
        assert!(text.contains("gcatch_paths_per_channel_sum 9\n"));
        // Byte-stable: rendering twice is identical.
        assert_eq!(text, render_prometheus(&sample_stats(), true));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(
            validate_exposition("gcatch_x 1\n").is_err(),
            "undeclared family"
        );
        assert!(
            validate_exposition("# TYPE gcatch_x counter\ngcatch_x nope\n").is_err(),
            "bad value"
        );
        assert!(
            validate_exposition("# TYPE 9bad counter\n").is_err(),
            "bad name"
        );
        assert!(
            validate_exposition("# TYPE gcatch_x flavor\n").is_err(),
            "bad type"
        );
        assert!(
            validate_exposition("# TYPE gcatch_x counter\ngcatch_x{l=\"v} 1\n").is_err(),
            "unterminated label"
        );
        assert!(
            validate_exposition("# TYPE gcatch_x counter\n# TYPE gcatch_x counter\n").is_err(),
            "duplicate TYPE"
        );
        let ok = "# HELP gcatch_x h\n# TYPE gcatch_x summary\n\
                  gcatch_x{quantile=\"0.5\"} 1.5\ngcatch_x_sum 3\ngcatch_x_count 2\n";
        assert_eq!(
            validate_exposition(ok).unwrap(),
            ExpositionSummary {
                families: 1,
                samples: 3
            }
        );
    }

    #[test]
    fn seconds_format_is_exact() {
        assert_eq!(fmt_seconds(0), "0.000000000");
        assert_eq!(fmt_seconds(1), "0.000000001");
        assert_eq!(fmt_seconds(2_500_000_000), "2.500000000");
    }
}
