//! The sweep worker: claims jobs from the on-disk lease queue, executes
//! them, and journals every decision to its own crash-safe journal.
//!
//! A worker is deliberately dumb: it scans the manifest's jobs in order,
//! [claims](crate::sweep::try_claim) the first un-done, un-leased one it
//! finds, runs it through a caller-supplied executor (the CLI wires in a
//! single-job batch engine configured identically to `gcatch batch`, which
//! journals the decided record itself), marks the job done, releases the
//! lease, and moves on. All supervision — heartbeat staleness, lease
//! expiry, re-leasing, quarantining — lives in the
//! [coordinator](crate::sweep::Coordinator); a worker that dies at any
//! point simply stops renewing, and its jobs flow back into the queue.
//!
//! A background thread keeps the worker visible while a job runs: every
//! quarter-lease it bumps the worker's heartbeat counter and pushes the
//! current lease's deadline forward. The `sweep.heartbeat` fault site
//! suppresses the former (a live-but-silent worker, culled by the
//! coordinator); `sweep.lease` suppresses the latter for one claim (the
//! lease expires mid-job and the job is re-leased while this worker keeps
//! working — the duplicate-decision path). The `sweep.worker` site makes
//! the process exit with [`WORKER_KILL_EXIT`] right after a claim, the
//! cheapest faithful stand-in for a mid-job crash.

use crate::faults::{
    should_inject, with_scope, FaultPlan, SITE_SWEEP_HEARTBEAT, SITE_SWEEP_LEASE, SITE_SWEEP_WORKER,
};
use crate::sweep::{
    fsync_parent, is_done, read_lease, release_count, remove_lease, renew_lease,
    shutdown_requested, try_claim, write_file_atomic, SweepLayout, WORKER_KILL_EXIT,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Worker-process configuration.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This worker's id (unique within the sweep; used in lease, journal,
    /// heartbeat, and pid file names).
    pub id: String,
    /// Lease time-to-live granted on claim and restored on each renewal.
    pub lease: Duration,
    /// Idle rescan interval when nothing is claimable.
    pub poll: Duration,
    /// Fault plan for the `sweep.*` sites (`None` disarms them).
    pub plan: Option<Arc<FaultPlan>>,
}

/// What a cleanly-exited worker did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Jobs this worker claimed, executed, and marked done.
    pub executed: usize,
}

/// The lease the background thread is currently responsible for renewing.
struct CurrentLease {
    job: usize,
    generation: u64,
    /// `sweep.lease` fired for this claim: stop renewing and let the
    /// coordinator expire it mid-job.
    renew_suppressed: bool,
}

/// Runs the worker loop to completion: claim → execute → mark done →
/// release, until every manifest job is decided or the coordinator
/// requests shutdown. `exec(index, id)` must journal the job's decided
/// record durably before returning `Ok` — "done" here means "the decision
/// is on disk", nothing weaker.
pub fn run_worker(
    layout: &SweepLayout,
    ids: &[String],
    config: &WorkerConfig,
    mut exec: impl FnMut(usize, &str) -> Result<(), String>,
) -> Result<WorkerSummary, String> {
    let pid_path = layout.pid_path(&config.id);
    write_file_atomic(&pid_path, &format!("{}\n", std::process::id()))
        .map_err(|e| format!("cannot write pid file {}: {e}", pid_path.display()))?;

    // Sticky per-worker heartbeat suppression: decided once so a suppressed
    // worker stays silent for its whole life (a flaky heartbeat would evade
    // the staleness detector).
    let hb_suppressed = match &config.plan {
        Some(plan) => with_scope(Arc::clone(plan), &config.id, 1, || {
            should_inject(SITE_SWEEP_HEARTBEAT, "hb")
        }),
        None => false,
    };

    let current: Arc<Mutex<Option<CurrentLease>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let layout = layout.clone();
        let id = config.id.clone();
        let lease_ttl = config.lease;
        let current = Arc::clone(&current);
        let stop = Arc::clone(&stop);
        let interval = (config.lease / 4).max(Duration::from_millis(5));
        std::thread::spawn(move || {
            let mut count: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                if !hb_suppressed {
                    count += 1;
                    let _ = write_file_atomic(&layout.heartbeat_path(&id), &format!("{count}\n"));
                }
                if let Some(cur) = current.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
                    if !cur.renew_suppressed {
                        let _ = renew_lease(&layout, cur.job, &id, cur.generation, lease_ttl);
                    }
                }
                std::thread::sleep(interval);
            }
        })
    };

    let result = (|| -> Result<WorkerSummary, String> {
        let mut summary = WorkerSummary::default();
        loop {
            let mut all_done = true;
            let mut claimed_any = false;
            for (job, id) in ids.iter().enumerate() {
                if shutdown_requested(layout) {
                    return Ok(summary);
                }
                if is_done(layout, job) {
                    continue;
                }
                all_done = false;
                let generation = release_count(layout, job);
                let claimed = try_claim(layout, job, &config.id, generation, config.lease)
                    .map_err(|e| format!("cannot claim job {job}: {e}"))?;
                if !claimed {
                    continue;
                }
                claimed_any = true;

                // Fault probes for this claim, keyed on the generation so a
                // re-leased job rolls fresh dice each time around.
                let attempt = generation as u32 + 1;
                let (kill, renew_suppressed) = match &config.plan {
                    Some(plan) => with_scope(Arc::clone(plan), id, attempt, || {
                        (
                            should_inject(SITE_SWEEP_WORKER, "kill"),
                            should_inject(SITE_SWEEP_LEASE, "renew"),
                        )
                    }),
                    None => (false, false),
                };
                if kill {
                    // A simulated crash: the lease stays held and un-renewed;
                    // the coordinator reaps the dead process and re-leases.
                    std::process::exit(WORKER_KILL_EXIT);
                }

                *current.lock().unwrap_or_else(|e| e.into_inner()) = Some(CurrentLease {
                    job,
                    generation,
                    renew_suppressed,
                });
                let outcome = exec(job, id);
                *current.lock().unwrap_or_else(|e| e.into_inner()) = None;
                outcome?;

                crate::sweep::mark_done(layout, job)
                    .map_err(|e| format!("cannot mark job {job} done: {e}"))?;
                // Release only if we still own this exact claim: an
                // expired-and-re-leased job's new lease belongs to someone
                // else and must survive us.
                if read_lease(layout, job)
                    .is_some_and(|l| l.worker == config.id && l.generation == generation)
                {
                    remove_lease(layout, job)
                        .map_err(|e| format!("cannot release job {job}: {e}"))?;
                }
                summary.executed += 1;
            }
            if all_done || shutdown_requested(layout) {
                return Ok(summary);
            }
            if !claimed_any {
                std::thread::sleep(config.poll);
            }
        }
    })();

    stop.store(true, Ordering::Relaxed);
    let _ = beat.join();
    let _ = std::fs::remove_file(&pid_path);
    let _ = fsync_parent(&pid_path);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{JobRecord, JobStatus, Journal, JournalCodec};
    use crate::sweep::merge_journals;
    use std::time::Duration;

    fn scratch(name: &str) -> SweepLayout {
        let root = std::env::temp_dir().join(format!(
            "gcatch-worker-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        let layout = SweepLayout::new(root);
        layout.init().unwrap();
        layout
    }

    #[test]
    fn two_workers_decide_every_job_exactly_once() {
        let layout = scratch("pair");
        let ids: Vec<String> = (0..12).map(|i| format!("job-{i}")).collect();
        let codec = JournalCodec::raw_json();

        let mut handles = Vec::new();
        for w in 0..2 {
            let layout = layout.clone();
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                let id = format!("w{w}");
                let journal = Journal::create(&layout.journal_path(&id), &ids).unwrap();
                let codec = JournalCodec::raw_json();
                let config = WorkerConfig {
                    id,
                    lease: Duration::from_secs(30),
                    poll: Duration::from_millis(2),
                    plan: None,
                };
                run_worker(&layout, &ids, &config, |_, job| {
                    journal
                        .record(
                            &JobRecord {
                                id: job.to_string(),
                                status: JobStatus::Done,
                                attempts: 1,
                                payload: Some(format!("{{\"job\":\"{job}\"}}")),
                                incident: None,
                                wall: Duration::ZERO,
                            },
                            &codec,
                        )
                        .map_err(|e| e.to_string())
                })
                .unwrap()
            }));
        }
        let executed: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap().executed)
            .sum();
        assert_eq!(executed, ids.len(), "every job executed exactly once");

        let merge = merge_journals(&layout, &ids, &codec).unwrap();
        assert!(merge.missing.is_empty());
        assert!(merge.duplicates.is_empty(), "{:?}", merge.duplicates);
        assert_eq!(merge.records.len(), ids.len());
        for (rec, id) in merge.records.iter().zip(&ids) {
            assert_eq!(&rec.id, id);
            assert_eq!(rec.status, JobStatus::Done);
        }
        // Leases are all released and heartbeats were written.
        for job in 0..ids.len() {
            assert!(read_lease(&layout, job).is_none());
            assert!(is_done(&layout, job));
        }
        assert!(layout.heartbeat_path("w0").exists());
        std::fs::remove_dir_all(layout.root()).ok();
    }

    #[test]
    fn worker_exits_on_shutdown_marker() {
        let layout = scratch("shutdown");
        let ids = vec!["only.go".to_string()];
        crate::sweep::request_shutdown(&layout).unwrap();
        let config = WorkerConfig {
            id: "w0".to_string(),
            lease: Duration::from_secs(5),
            poll: Duration::from_millis(2),
            plan: None,
        };
        let summary = run_worker(&layout, &ids, &config, |_, _| {
            panic!("must not execute after shutdown")
        })
        .unwrap();
        assert_eq!(summary.executed, 0);
        std::fs::remove_dir_all(layout.root()).ok();
    }
}
